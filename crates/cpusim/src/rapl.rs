//! A RAPL-like package energy counter.
//!
//! The paper measures energy with Intel's Running Average Power Limit
//! (RAPL) counter (§6.1). [`RaplCounter`] mimics the useful part of
//! that interface: a monotone energy accumulator read at interval
//! boundaries, with the difference giving the interval's energy.

use crate::topology::Processor;
use simcore::SimTime;

/// A monotone package-energy counter with interval reads.
///
/// # Examples
///
/// ```
/// use cpusim::{Processor, DvfsScope, ProcessorProfile, RaplCounter};
/// use simcore::SimTime;
///
/// let mut proc = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
/// let mut rapl = RaplCounter::new();
/// rapl.begin(&mut proc, SimTime::ZERO);
/// let joules = rapl.read_interval(&mut proc, SimTime::from_secs(1));
/// assert!(joules > 0.0); // idle power is still power
/// ```
#[derive(Debug, Clone, Default)]
pub struct RaplCounter {
    last_reading_j: f64,
    total_read_j: f64,
    clamp_events: u64,
}

impl RaplCounter {
    /// Creates a counter; call [`begin`](RaplCounter::begin) to anchor
    /// the first interval.
    pub fn new() -> Self {
        RaplCounter::default()
    }

    /// Anchors the counter at `now` (discards energy before it).
    pub fn begin(&mut self, processor: &mut Processor, now: SimTime) {
        self.last_reading_j = processor.package_energy_joules(now);
    }

    /// Energy consumed since the previous `begin`/`read_interval`
    /// call, in joules.
    ///
    /// A negative delta means the underlying power integral went
    /// backwards — a model non-monotonicity bug. The read still
    /// clamps to zero (as hardware RAPL wraps do), but the event is
    /// counted in [`clamp_events`](Self::clamp_events) and fails the
    /// conservation audit instead of being silently hidden.
    pub fn read_interval(&mut self, processor: &mut Processor, now: SimTime) -> f64 {
        let current = processor.package_energy_joules(now);
        let delta = current - self.last_reading_j;
        let delta = if delta < 0.0 {
            self.clamp_events += 1;
            0.0
        } else {
            delta
        };
        self.last_reading_j = current;
        self.total_read_j += delta;
        delta
    }

    /// Sum of all interval reads so far.
    pub fn total_joules(&self) -> f64 {
        self.total_read_j
    }

    /// Interval reads that observed a negative delta and clamped it
    /// (audited to be 0: the power integral must be monotone).
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ProcessorProfile;
    use crate::topology::DvfsScope;

    #[test]
    fn interval_reads_are_deltas() {
        let mut p = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
        let mut rapl = RaplCounter::new();
        rapl.begin(&mut p, SimTime::ZERO);
        let a = rapl.read_interval(&mut p, SimTime::from_secs(1));
        let b = rapl.read_interval(&mut p, SimTime::from_secs(2));
        assert!(a > 0.0);
        // Same workload (idle) → roughly the same energy per second.
        assert!((a - b).abs() < 1e-6 * a.max(1.0), "a={a} b={b}");
        assert!((rapl.total_joules() - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn begin_discards_prior_energy() {
        let mut p = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
        let mut rapl = RaplCounter::new();
        // Let 10 s of idle pass before anchoring.
        rapl.begin(&mut p, SimTime::from_secs(10));
        let e = rapl.read_interval(&mut p, SimTime::from_secs(11));
        // Only ~1 s of energy, not 11 s.
        let mut p2 = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
        let one_sec = p2.package_energy_joules(SimTime::from_secs(1));
        assert!(
            (e - one_sec).abs() < 0.05 * one_sec,
            "e={e} one_sec={one_sec}"
        );
    }

    #[test]
    fn monotone_reads_never_clamp_and_regressions_are_counted() {
        let mut p = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
        let mut rapl = RaplCounter::new();
        rapl.begin(&mut p, SimTime::ZERO);
        rapl.read_interval(&mut p, SimTime::from_secs(1));
        rapl.read_interval(&mut p, SimTime::from_secs(2));
        assert_eq!(rapl.clamp_events(), 0, "monotone integral never clamps");
        // Reading at an *earlier* time regresses the uncore integral
        // (a pure function of `now`), so the delta clamps — and the
        // clamp is counted instead of silently hidden.
        let d = rapl.read_interval(&mut p, SimTime::from_secs(1));
        assert_eq!(d, 0.0);
        assert_eq!(rapl.clamp_events(), 1);
        // A regressing reading forced by re-anchoring the baseline
        // above the current integral is counted the same way.
        rapl.read_interval(&mut p, SimTime::from_secs(2));
        rapl.last_reading_j += 1.0;
        let d = rapl.read_interval(&mut p, SimTime::from_secs(2));
        assert_eq!(d, 0.0);
        assert_eq!(rapl.clamp_events(), 2);
    }

    #[test]
    fn busy_core_raises_package_energy() {
        let mut idle = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
        let mut busy = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
        let profile = busy.profile().clone();
        busy.core_mut(crate::CoreId(0))
            .set_busy(true, SimTime::ZERO, &profile);
        let t = SimTime::from_secs(1);
        assert!(busy.package_energy_joules(t) > idle.package_energy_joules(t));
    }
}
