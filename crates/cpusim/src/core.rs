//! A single core: activity state, P-state, C-state, and the
//! bookkeeping every governor needs — utilization sampling, CC0
//! residency, energy integration, and trace logs for the paper's
//! timeline figures.

use crate::cstate::CState;
use crate::dvfs::{CompletionResult, CoreDvfs, TransitionOutcome};
use crate::power::CoreActivity;
use crate::profiles::ProcessorProfile;
use crate::pstate::PState;
use simcore::{
    BusyRole, CoreEnergyMeter, EnergyBreakdown, EventLog, MeterClass, RngStream, SimDuration,
    SimTime,
};

/// Index of a core within its processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A utilization sample over one governor sampling window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Fraction of the window the core spent executing (ondemand's
    /// utilization input).
    pub busy_frac: f64,
    /// Fraction of the window the core resided in CC0, busy or idle
    /// (intel_pstate's utilization input).
    pub c0_frac: f64,
    /// Window length.
    pub window: SimDuration,
}

/// The cost of waking a sleeping core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeCost {
    /// Time before the core can start executing (Table 2).
    pub latency: SimDuration,
    /// Extra work time from re-filling flushed private caches
    /// (CC6 only, §5.2); the caller adds this to post-wake work.
    pub cache_refill: SimDuration,
}

/// One simulated core.
///
/// The core is a passive state machine: the server glue drives it
/// (`set_busy`, `enter_sleep`, `wake`, DVFS requests) and schedules
/// the events its methods imply.
///
/// # Examples
///
/// ```
/// use cpusim::{Core, CoreId, ProcessorProfile};
/// use simcore::{SimTime, SimDuration};
///
/// let profile = ProcessorProfile::xeon_gold_6134();
/// let mut core = Core::new(CoreId(0), &profile);
/// core.set_busy(true, SimTime::ZERO, &profile);
/// core.set_busy(false, SimTime::from_millis(6), &profile);
/// let sample = core.take_sample(SimTime::from_millis(10), &profile);
/// assert!((sample.busy_frac - 0.6).abs() < 1e-9);
/// assert!(core.energy_joules(SimTime::from_millis(10), &profile) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Core {
    id: CoreId,
    dvfs: CoreDvfs,
    /// The P-state currently in effect (mirrors the DVFS domain; in
    /// chip-wide mode it is set externally by the processor).
    pstate: PState,
    cstate: CState,
    /// When the current sleep state was entered (cache-refill scaling).
    sleep_started: Option<SimTime>,
    busy: bool,
    // --- energy integration ---
    energy_j: f64,
    last_account: SimTime,
    /// Fixed-point (microjoule) energy attribution meter. Keeps its
    /// own cursor so observability-only accounting points never
    /// perturb the `f64` integral; zero-sized without `obs`.
    obs_energy: CoreEnergyMeter,
    /// Residency per (activity, P-state) — the independent side of
    /// the energy conservation audit (`audit` feature only).
    #[cfg(feature = "audit")]
    residency: Vec<(CoreActivity, PState, SimDuration)>,
    // --- sampling window ---
    window_start: SimTime,
    busy_in_window: SimDuration,
    c0_in_window: SimDuration,
    // --- lifetime counters & traces ---
    total_busy: SimDuration,
    c6_entries: u64,
    pstate_log: EventLog<PState>,
    cstate_log: EventLog<CState>,
}

impl Core {
    /// Creates an idle core at the slowest P-state in CC0 (the state
    /// Linux boots governors into before their first decision).
    pub fn new(id: CoreId, profile: &ProcessorProfile) -> Self {
        let initial = profile.pstates.slowest();
        Core {
            id,
            dvfs: CoreDvfs::new(initial),
            pstate: initial,
            cstate: CState::C0,
            sleep_started: None,
            busy: false,
            energy_j: 0.0,
            last_account: SimTime::ZERO,
            obs_energy: CoreEnergyMeter::new(),
            #[cfg(feature = "audit")]
            residency: Vec::new(),
            window_start: SimTime::ZERO,
            busy_in_window: SimDuration::ZERO,
            c0_in_window: SimDuration::ZERO,
            total_busy: SimDuration::ZERO,
            c6_entries: 0,
            pstate_log: EventLog::new(),
            cstate_log: EventLog::new(),
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The P-state currently in effect.
    pub fn pstate(&self) -> PState {
        self.pstate
    }

    /// The C-state the core currently occupies.
    pub fn cstate(&self) -> CState {
        self.cstate
    }

    /// True if the core is executing.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Current clock frequency in Hz.
    pub fn frequency_hz(&self, profile: &ProcessorProfile) -> u64 {
        profile.pstates.frequency(self.pstate)
    }

    /// Instantaneous power draw at the current operating point and
    /// activity, in watts. Read-only: telemetry sampling uses this
    /// without touching the energy integral or the sampling window,
    /// so observing a core cannot perturb its energy accounting.
    pub fn current_power_w(&self, profile: &ProcessorProfile) -> f64 {
        profile
            .power
            .core_power(profile.pstates.point(self.pstate), self.activity())
    }

    /// Wall time to execute `cycles` at the current frequency.
    pub fn cycles_to_duration(&self, cycles: u64, profile: &ProcessorProfile) -> SimDuration {
        let f = self.frequency_hz(profile);
        SimDuration::from_nanos(((cycles as u128 * 1_000_000_000) / f as u128) as u64)
    }

    /// Cycles completed in `elapsed` wall time at the current
    /// frequency (used to rescale in-flight work on a V/F change).
    pub fn duration_to_cycles(&self, elapsed: SimDuration, profile: &ProcessorProfile) -> u64 {
        let f = self.frequency_hz(profile);
        ((elapsed.as_nanos() as u128 * f as u128) / 1_000_000_000) as u64
    }

    fn activity(&self) -> CoreActivity {
        if self.busy {
            CoreActivity::Busy
        } else {
            CoreActivity::idle_in(self.cstate)
        }
    }

    /// The attribution meter's activity class for the current state.
    fn meter_class(&self, profile: &ProcessorProfile) -> MeterClass {
        match self.activity() {
            CoreActivity::Busy => MeterClass::Busy {
                index: self.pstate.index() as usize,
                len: profile.pstates.len(),
            },
            CoreActivity::IdleC0 => MeterClass::IdleC0,
            CoreActivity::SleepC1 => MeterClass::SleepC1,
            CoreActivity::SleepC6 => MeterClass::SleepC6,
        }
    }

    /// Advances only the fixed-point attribution meter to `now`,
    /// leaving the `f64` integral untouched — observability hooks
    /// (role changes, mode-boundary snapshots) use this so golden
    /// energy fixtures cannot drift. No-op without the `obs` feature.
    pub fn obs_account(&mut self, now: SimTime, profile: &ProcessorProfile) {
        let power = profile
            .power
            .core_power(profile.pstates.point(self.pstate), self.activity());
        self.obs_energy
            .advance(now, power, self.meter_class(profile));
    }

    /// Integrates energy and residency up to `now`. Idempotent; called
    /// internally before every state change.
    pub fn account(&mut self, now: SimTime, profile: &ProcessorProfile) {
        let dt = now.saturating_since(self.last_account);
        if dt.is_zero() {
            self.last_account = now.max(self.last_account);
            return;
        }
        let activity = self.activity();
        let power = profile
            .power
            .core_power(profile.pstates.point(self.pstate), activity);
        self.energy_j += power * dt.as_secs_f64();
        self.obs_energy
            .advance(now, power, self.meter_class(profile));
        #[cfg(feature = "audit")]
        {
            match self
                .residency
                .iter_mut()
                .find(|(a, p, _)| *a == activity && *p == self.pstate)
            {
                Some((_, _, total)) => *total += dt,
                None => self.residency.push((activity, self.pstate, dt)),
            }
        }
        if self.busy {
            self.busy_in_window += dt;
            self.total_busy += dt;
        }
        if activity.is_c0() {
            self.c0_in_window += dt;
        }
        self.last_account = now;
    }

    /// Marks the core busy or idle-in-CC0.
    ///
    /// # Panics
    ///
    /// Panics if marking busy while the core is asleep — callers must
    /// [`wake`](Core::wake) first.
    pub fn set_busy(&mut self, busy: bool, now: SimTime, profile: &ProcessorProfile) {
        assert!(
            !(busy && self.cstate.is_sleep()),
            "cannot execute while asleep; wake the core first"
        );
        if busy == self.busy {
            return;
        }
        self.account(now, profile);
        self.busy = busy;
    }

    /// Puts the idle core into `state`.
    ///
    /// # Panics
    ///
    /// Panics if the core is busy.
    pub fn enter_sleep(&mut self, state: CState, now: SimTime, profile: &ProcessorProfile) {
        assert!(!self.busy, "cannot sleep while busy");
        if state == self.cstate {
            return;
        }
        self.account(now, profile);
        // Deepening an existing sleep keeps the original entry time.
        if self.sleep_started.is_none() {
            self.sleep_started = Some(now);
        }
        self.cstate = state;
        if state == CState::C6 {
            self.c6_entries += 1;
        }
        self.cstate_log.push(now, state);
    }

    /// Wakes a sleeping core, returning the wake cost. A core already
    /// in CC0 wakes for free. After this call the core is in CC0
    /// (idle); the caller applies `latency` before running work and
    /// spreads `cache_refill` over post-wake execution.
    pub fn wake(
        &mut self,
        now: SimTime,
        profile: &ProcessorProfile,
        rng: &mut RngStream,
    ) -> WakeCost {
        if self.cstate == CState::C0 {
            return WakeCost {
                latency: SimDuration::ZERO,
                cache_refill: SimDuration::ZERO,
            };
        }
        self.account(now, profile);
        let latency = profile.cstate_latencies.sample_wake(self.cstate, rng);
        let cache_refill = if self.cstate == CState::C6 {
            // The flush always happens, but after a short nap the
            // working set is still warm in the (unflushed) LLC, so the
            // refill is far cheaper than the cold-DRAM worst case the
            // paper measures (§5.2 notes its numbers are worst-case).
            let residency = self
                .sleep_started
                .map(|t| now.saturating_since(t))
                .unwrap_or(SimDuration::ZERO);
            let cold_frac = 0.2 + 0.8 * (residency.as_secs_f64() / 0.01).min(1.0);
            profile.cc6_cache_refill.mul_f64(cold_frac)
        } else {
            SimDuration::ZERO
        };
        self.cstate = CState::C0;
        self.sleep_started = None;
        self.cstate_log.push(now, CState::C0);
        // CC0 idle burn until the exit latency elapses is
        // wake-transition energy, not steady-state idle.
        self.obs_energy.note_wake(now + latency);
        WakeCost {
            latency,
            cache_refill,
        }
    }

    /// Sets the busy-attribution role (application vs interrupt-side
    /// work) for execution from `now` on, advancing the attribution
    /// meter to the boundary first. No-op without the `obs` feature.
    pub fn set_busy_role(&mut self, role: BusyRole, now: SimTime, profile: &ProcessorProfile) {
        self.obs_account(now, profile);
        self.obs_energy.set_role(role);
    }

    /// Requests a P-state change on this core's own DVFS domain
    /// (per-core DVFS mode).
    pub fn request_pstate(
        &mut self,
        target: PState,
        now: SimTime,
        profile: &ProcessorProfile,
        rng: &mut RngStream,
    ) -> TransitionOutcome {
        self.dvfs.request(target, now, profile, rng)
    }

    /// Completes an in-flight DVFS transition. Accounts energy at the
    /// old operating point first, then switches frequency.
    pub fn complete_pstate(
        &mut self,
        token: u64,
        now: SimTime,
        profile: &ProcessorProfile,
        rng: &mut RngStream,
    ) -> CompletionResult {
        let result = self.dvfs.complete(token, now, profile, rng);
        match result {
            CompletionResult::Settled { new_state }
            | CompletionResult::FollowUp { new_state, .. } => {
                self.apply_pstate(new_state, now, profile);
            }
            CompletionResult::Stale => {}
        }
        result
    }

    /// Applies an externally decided P-state (chip-wide DVFS domain).
    pub fn apply_pstate(&mut self, p: PState, now: SimTime, profile: &ProcessorProfile) {
        if p == self.pstate {
            return;
        }
        self.account(now, profile);
        self.pstate = p;
        self.pstate_log.push(now, p);
    }

    /// Sets extra latency added to transitions started on this core's
    /// own DVFS domain (fault injection / slow-regulator modelling).
    pub fn set_transition_padding(&mut self, padding: SimDuration) {
        self.dvfs.set_transition_padding(padding);
    }

    /// The state this core's DVFS domain is heading towards.
    pub fn dvfs_target(&self) -> PState {
        self.dvfs.target()
    }

    /// True if this core's own DVFS domain has a transition in flight.
    pub fn is_transitioning(&self) -> bool {
        self.dvfs.is_transitioning()
    }

    /// Number of DVFS transitions started on this core's domain.
    pub fn transitions_started(&self) -> u64 {
        self.dvfs.transitions_started()
    }

    /// Ends the current sampling window and returns utilization and
    /// CC0 residency over it.
    pub fn take_sample(&mut self, now: SimTime, profile: &ProcessorProfile) -> UtilSample {
        self.account(now, profile);
        let window = now.saturating_since(self.window_start);
        let sample = if window.is_zero() {
            UtilSample {
                busy_frac: 0.0,
                c0_frac: 0.0,
                window,
            }
        } else {
            UtilSample {
                busy_frac: self.busy_in_window.as_secs_f64() / window.as_secs_f64(),
                c0_frac: self.c0_in_window.as_secs_f64() / window.as_secs_f64(),
                window,
            }
        };
        self.window_start = now;
        self.busy_in_window = SimDuration::ZERO;
        self.c0_in_window = SimDuration::ZERO;
        sample
    }

    /// Total energy consumed through `now` in joules.
    pub fn energy_joules(&mut self, now: SimTime, profile: &ProcessorProfile) -> f64 {
        self.account(now, profile);
        self.energy_j
    }

    /// Total microjoules measured by the fixed-point attribution
    /// meter through `now` (0 without the `obs` feature).
    pub fn energy_uj(&mut self, now: SimTime, profile: &ProcessorProfile) -> u64 {
        self.obs_account(now, profile);
        self.obs_energy.measured_uj()
    }

    /// The attribution meter's component decomposition through `now`
    /// (empty without the `obs` feature). Sums to
    /// [`energy_uj`](Self::energy_uj) exactly — the per-core energy
    /// conservation identity.
    pub fn energy_breakdown(
        &mut self,
        now: SimTime,
        profile: &ProcessorProfile,
    ) -> EnergyBreakdown {
        self.obs_account(now, profile);
        self.obs_energy.breakdown()
    }

    /// Recomputes this core's energy from the residency ledger —
    /// Σ power(activity, P-state) × residency — independently of the
    /// incremental integral [`energy_joules`](Self::energy_joules)
    /// maintains. The two must agree to ~1e-6 relative error; the
    /// conservation audit compares them. Returns `None` without the
    /// `audit` feature.
    pub fn audited_energy_joules(
        &mut self,
        now: SimTime,
        profile: &ProcessorProfile,
    ) -> Option<f64> {
        #[cfg(feature = "audit")]
        {
            self.account(now, profile);
            Some(
                self.residency
                    .iter()
                    .map(|&(activity, pstate, dur)| {
                        profile
                            .power
                            .core_power(profile.pstates.point(pstate), activity)
                            * dur.as_secs_f64()
                    })
                    .sum(),
            )
        }
        #[cfg(not(feature = "audit"))]
        {
            let _ = (now, profile);
            None
        }
    }

    /// Lifetime busy time.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Number of CC6 entries (Fig 7 marks).
    pub fn c6_entries(&self) -> u64 {
        self.c6_entries
    }

    /// Trace of P-state changes `(time, new state)`.
    pub fn pstate_log(&self) -> &EventLog<PState> {
        &self.pstate_log
    }

    /// Trace of C-state changes `(time, new state)`.
    pub fn cstate_log(&self) -> &EventLog<CState> {
        &self.cstate_log
    }

    /// Replays this core's P- and C-state logs into `buf` as
    /// residency spans: each logged change opens a span named after
    /// the new state, closed by the next change (or `end`).
    pub fn trace_into(&self, end: SimTime, buf: &mut simcore::TraceBuffer) {
        use simcore::TraceCategory;
        if !buf.is_recording() {
            return;
        }
        let core = self.id.0 as u32;
        let pstates = self.pstate_log.entries();
        for (i, &(t, p)) in pstates.iter().enumerate() {
            let until = pstates.get(i + 1).map(|&(t2, _)| t2).unwrap_or(end);
            buf.begin(t, TraceCategory::PState, core, p.label(), p.index() as i64);
            buf.end(
                until,
                TraceCategory::PState,
                core,
                p.label(),
                p.index() as i64,
            );
        }
        let cstates = self.cstate_log.entries();
        for (i, &(t, c)) in cstates.iter().enumerate() {
            let until = cstates.get(i + 1).map(|&(t2, _)| t2).unwrap_or(end);
            buf.begin(t, TraceCategory::CState, core, c.label(), c.depth() as i64);
            buf.end(
                until,
                TraceCategory::CState,
                core,
                c.label(),
                c.depth() as i64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::TransitionOutcome;

    fn setup() -> (ProcessorProfile, Core, RngStream) {
        let p = ProcessorProfile::xeon_gold_6134();
        let c = Core::new(CoreId(0), &p);
        (p, c, RngStream::from_seed(9))
    }

    #[test]
    fn starts_idle_at_slowest() {
        let (p, c, _) = setup();
        assert_eq!(c.pstate(), p.pstates.slowest());
        assert_eq!(c.cstate(), CState::C0);
        assert!(!c.is_busy());
    }

    #[test]
    fn utilization_sampling() {
        let (p, mut c, _) = setup();
        c.set_busy(true, SimTime::from_millis(2), &p);
        c.set_busy(false, SimTime::from_millis(7), &p);
        let s = c.take_sample(SimTime::from_millis(10), &p);
        assert!((s.busy_frac - 0.5).abs() < 1e-9, "busy {}", s.busy_frac);
        assert!((s.c0_frac - 1.0).abs() < 1e-9, "c0 {}", s.c0_frac);
        // Window resets.
        let s2 = c.take_sample(SimTime::from_millis(20), &p);
        assert_eq!(s2.busy_frac, 0.0);
    }

    #[test]
    fn c0_residency_differs_from_busy_when_sleeping() {
        let (p, mut c, _) = setup();
        c.enter_sleep(CState::C6, SimTime::ZERO, &p);
        let s = c.take_sample(SimTime::from_millis(10), &p);
        assert_eq!(s.busy_frac, 0.0);
        assert_eq!(s.c0_frac, 0.0);
    }

    #[test]
    fn energy_increases_with_busy_time_and_frequency() {
        let (p, mut idle_core, _) = setup();
        let (_, mut busy_core, mut rng) = setup();
        busy_core.set_busy(true, SimTime::ZERO, &p);
        let t = SimTime::from_millis(100);
        let e_idle = idle_core.energy_joules(t, &p);
        let e_busy = busy_core.energy_joules(t, &p);
        assert!(e_busy > e_idle, "busy {e_busy} idle {e_idle}");

        // At P0 the same busy time costs more energy.
        let (_, mut fast_core, _) = setup();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = fast_core.request_pstate(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        fast_core.complete_pstate(token, completes_at, &p, &mut rng);
        let e_start = fast_core.energy_joules(completes_at, &p);
        fast_core.set_busy(true, completes_at, &p);
        let window = SimDuration::from_millis(100);
        let e_fast = fast_core.energy_joules(completes_at + window, &p) - e_start;
        let e_slow = {
            let (_, mut c2, _) = setup();
            c2.set_busy(true, SimTime::ZERO, &p);
            c2.energy_joules(SimTime::ZERO + window, &p)
        };
        assert!(e_fast > e_slow, "fast {e_fast} slow {e_slow}");
    }

    #[test]
    fn sleep_saves_energy() {
        let (p, mut c0_core, _) = setup();
        let (_, mut c6_core, _) = setup();
        c6_core.enter_sleep(CState::C6, SimTime::ZERO, &p);
        let t = SimTime::from_secs(1);
        assert!(c6_core.energy_joules(t, &p) < c0_core.energy_joules(t, &p));
        assert_eq!(c6_core.c6_entries(), 1);
    }

    #[test]
    fn wake_cost_from_c6_includes_cache_refill() {
        let (p, mut c, mut rng) = setup();
        c.enter_sleep(CState::C6, SimTime::ZERO, &p);
        // A long sleep pays the full cold-cache refill.
        let cost = c.wake(SimTime::from_millis(20), &p, &mut rng);
        assert!(cost.latency > SimDuration::from_micros(10));
        assert_eq!(cost.cache_refill, p.cc6_cache_refill);
        assert_eq!(c.cstate(), CState::C0);
    }

    #[test]
    fn short_c6_nap_pays_reduced_refill() {
        let (p, mut c, mut rng) = setup();
        c.enter_sleep(CState::C6, SimTime::ZERO, &p);
        let cost = c.wake(SimTime::from_micros(50), &p, &mut rng);
        assert!(
            cost.cache_refill < p.cc6_cache_refill / 2,
            "warm-LLC refill {} should be far below the cold worst case {}",
            cost.cache_refill,
            p.cc6_cache_refill
        );
        assert!(cost.cache_refill > SimDuration::ZERO);
    }

    #[test]
    fn wake_from_c1_has_no_cache_penalty() {
        let (p, mut c, mut rng) = setup();
        c.enter_sleep(CState::C1, SimTime::ZERO, &p);
        let cost = c.wake(SimTime::from_millis(1), &p, &mut rng);
        assert!(cost.latency < SimDuration::from_micros(5));
        assert_eq!(cost.cache_refill, SimDuration::ZERO);
    }

    #[test]
    fn wake_when_awake_is_free() {
        let (p, mut c, mut rng) = setup();
        let cost = c.wake(SimTime::from_millis(1), &p, &mut rng);
        assert_eq!(cost.latency, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "wake the core first")]
    fn busy_while_asleep_panics() {
        let (p, mut c, _) = setup();
        c.enter_sleep(CState::C6, SimTime::ZERO, &p);
        c.set_busy(true, SimTime::from_millis(1), &p);
    }

    #[test]
    fn cycle_math_roundtrip() {
        let (p, c, _) = setup();
        let cycles = 1_200_000; // 1 ms at 1.2 GHz (slowest)
        let d = c.cycles_to_duration(cycles, &p);
        assert_eq!(d, SimDuration::from_millis(1));
        assert_eq!(c.duration_to_cycles(d, &p), cycles);
    }

    #[test]
    fn attribution_meter_conserves_and_tracks_f64() {
        use simcore::EnergyComponent;
        let (p, mut c, mut rng) = setup();
        // IRQ-role busy, app-role busy, C6 sleep, wake, busy again —
        // every component class gets some residency.
        c.set_busy_role(BusyRole::Irq, SimTime::ZERO, &p);
        c.set_busy(true, SimTime::ZERO, &p);
        c.set_busy(false, SimTime::from_millis(2), &p);
        c.set_busy_role(BusyRole::App, SimTime::from_millis(2), &p);
        c.enter_sleep(CState::C6, SimTime::from_millis(3), &p);
        c.wake(SimTime::from_millis(5), &p, &mut rng);
        c.set_busy(true, SimTime::from_millis(6), &p);
        let t = SimTime::from_millis(10);
        let uj = c.energy_uj(t, &p);
        let b = c.energy_breakdown(t, &p);
        if !CoreEnergyMeter::ENABLED {
            assert_eq!(uj, 0);
            return;
        }
        assert_eq!(uj, b.total_uj(), "per-core conservation identity");
        assert!(b.get_uj(EnergyComponent::Irq) > 0, "irq-role busy burn");
        assert!(b.get_uj(EnergyComponent::BusyPmin) > 0, "app busy at Pmin");
        assert!(b.get_uj(EnergyComponent::SleepC6) > 0, "C6 residency");
        assert!(
            b.get_uj(EnergyComponent::WakeC0) > 0,
            "wake-transition burn"
        );
        assert!(b.get_uj(EnergyComponent::IdleC0) > 0, "plain idle burn");
        // The integer meter tracks the f64 integral to within
        // per-segment rounding (well under 1 µJ per segment here).
        let f64_uj = c.energy_joules(t, &p) * 1e6;
        assert!(
            (uj as f64 - f64_uj).abs() < 16.0,
            "meter {uj} µJ vs f64 {f64_uj} µJ"
        );
    }

    #[test]
    fn obs_account_never_touches_the_f64_integral() {
        let (p, mut c, _) = setup();
        c.set_busy(true, SimTime::ZERO, &p);
        let e_before = c.energy_j;
        // Observability-only advancement points must leave the f64
        // path bit-identical (golden fixtures pin its bit pattern).
        c.obs_account(SimTime::from_millis(4), &p);
        c.set_busy_role(BusyRole::Irq, SimTime::from_millis(5), &p);
        assert_eq!(c.energy_j.to_bits(), e_before.to_bits());
        let e = c.energy_joules(SimTime::from_millis(10), &p);
        let mut reference = {
            let (_, mut c2, _) = setup();
            c2.set_busy(true, SimTime::ZERO, &p);
            c2
        };
        let e_ref = reference.energy_joules(SimTime::from_millis(10), &p);
        assert_eq!(e.to_bits(), e_ref.to_bits(), "f64 integral must not drift");
    }

    #[test]
    fn pstate_log_records_changes() {
        let (p, mut c, mut rng) = setup();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = c.request_pstate(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        c.complete_pstate(token, completes_at, &p, &mut rng);
        assert_eq!(c.pstate_log().len(), 1);
        assert_eq!(c.pstate_log().entries()[0].1, PState::P0);
        assert_eq!(c.pstate(), PState::P0);
    }
}
