//! C-states (sleep states) and wake-up latencies.
//!
//! The paper (§2.2, §5.2, Table 2) uses three core C-states:
//!
//! * **CC0** — active: executing, or idling with clocks running
//!   (what you get with the `disable` sleep policy);
//! * **CC1** — halted/clock-gated, sub-µs wake-up;
//! * **CC6** — power-gated with private caches flushed, ~27 µs
//!   wake-up plus a cache-refill penalty after waking.

use simcore::{RngStream, SimDuration};
use std::fmt;

/// A core sleep state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CState {
    /// Active: the core executes instructions or spins in the idle
    /// loop with clocks running ("polling idle").
    C0,
    /// Clock-gated halt.
    C1,
    /// Deep sleep: core power-gated, private caches flushed.
    C6,
}

impl CState {
    /// True for any sleeping state (C1 or C6).
    pub fn is_sleep(self) -> bool {
        self != CState::C0
    }

    /// The deeper of two states.
    pub fn deeper(self, other: CState) -> CState {
        self.max(other)
    }

    /// Static display label, for trace events that carry
    /// `&'static str` names.
    pub const fn label(self) -> &'static str {
        match self {
            CState::C0 => "CC0",
            CState::C1 => "CC1",
            CState::C6 => "CC6",
        }
    }

    /// Numeric depth (trace event argument).
    pub const fn depth(self) -> u8 {
        match self {
            CState::C0 => 0,
            CState::C1 => 1,
            CState::C6 => 6,
        }
    }
}

impl fmt::Display for CState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CState::C0 => write!(f, "CC0"),
            CState::C1 => write!(f, "CC1"),
            CState::C6 => write!(f, "CC6"),
        }
    }
}

/// Wake-up latency parameters (Table 2): mean and stdev of the
/// CC1→CC0 and CC6→CC0 transitions, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CStateLatencies {
    /// Mean CC1→CC0 wake-up (µs).
    pub c1_wake_mean_us: f64,
    /// Stdev of CC1→CC0 wake-up (µs).
    pub c1_wake_stdev_us: f64,
    /// Mean CC6→CC0 wake-up (µs).
    pub c6_wake_mean_us: f64,
    /// Stdev of CC6→CC0 wake-up (µs).
    pub c6_wake_stdev_us: f64,
}

impl CStateLatencies {
    /// Mean wake-up latency from `state` (zero from C0).
    pub fn mean_wake(&self, state: CState) -> SimDuration {
        match state {
            CState::C0 => SimDuration::ZERO,
            CState::C1 => SimDuration::from_micros_f64(self.c1_wake_mean_us),
            CState::C6 => SimDuration::from_micros_f64(self.c6_wake_mean_us),
        }
    }

    /// Samples a wake-up latency from `state` (Gaussian around the
    /// Table 2 mean, floored at zero).
    pub fn sample_wake(&self, state: CState, rng: &mut RngStream) -> SimDuration {
        let (mean, stdev) = match state {
            CState::C0 => return SimDuration::ZERO,
            CState::C1 => (self.c1_wake_mean_us, self.c1_wake_stdev_us),
            CState::C6 => (self.c6_wake_mean_us, self.c6_wake_stdev_us),
        };
        SimDuration::from_micros_f64(rng.normal(mean, stdev).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold() -> CStateLatencies {
        CStateLatencies {
            c1_wake_mean_us: 0.56,
            c1_wake_stdev_us: 0.50,
            c6_wake_mean_us: 27.43,
            c6_wake_stdev_us: 4.05,
        }
    }

    #[test]
    fn ordering_and_depth() {
        assert!(CState::C6 > CState::C1);
        assert!(CState::C1 > CState::C0);
        assert_eq!(CState::C1.deeper(CState::C6), CState::C6);
        assert!(!CState::C0.is_sleep());
        assert!(CState::C6.is_sleep());
    }

    #[test]
    fn wake_from_c0_is_free() {
        let l = gold();
        let mut rng = RngStream::from_seed(1);
        assert_eq!(l.sample_wake(CState::C0, &mut rng), SimDuration::ZERO);
        assert_eq!(l.mean_wake(CState::C0), SimDuration::ZERO);
    }

    #[test]
    fn c6_wake_statistics_match_table2() {
        let l = gold();
        let mut rng = RngStream::from_seed(2);
        let mut stats = simcore::RunningStats::new();
        for _ in 0..10_000 {
            stats.push(l.sample_wake(CState::C6, &mut rng).as_micros_f64());
        }
        assert!((stats.mean() - 27.43).abs() < 0.3, "mean {}", stats.mean());
        assert!((stats.sample_stdev() - 4.05).abs() < 0.3);
    }

    #[test]
    fn c1_wake_is_submicrosecond_scale() {
        let l = gold();
        let mut rng = RngStream::from_seed(3);
        let mut stats = simcore::RunningStats::new();
        for _ in 0..10_000 {
            stats.push(l.sample_wake(CState::C1, &mut rng).as_micros_f64());
        }
        // Floored Gaussian shifts the mean slightly above 0.56.
        assert!(stats.mean() < 1.0, "mean {}", stats.mean());
        assert!(l.mean_wake(CState::C1) < l.mean_wake(CState::C6));
    }

    #[test]
    fn display_names() {
        assert_eq!(CState::C6.to_string(), "CC6");
        assert_eq!(CState::C0.to_string(), "CC0");
    }
}
