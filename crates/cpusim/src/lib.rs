//! # cpusim — processor model
//!
//! Models the hardware side of the NMAP paper (MICRO'21):
//!
//! * **P-states** ([`pstate`]): discrete voltage/frequency operating
//!   points, P0 = fastest, as exposed by `cpufreq`/`intel_pstate`.
//! * **DVFS engine** ([`dvfs`]): per-core frequency transitions with
//!   the ACPI-specified base latency *and* the much longer
//!   *re-transition latency* the paper measures in Table 1 when
//!   transitions are requested back-to-back.
//! * **C-states** ([`cstate`]): CC0/CC1/CC6 with Table 2 wake-up
//!   latencies and the CC6 private-cache flush penalty (§5.2).
//! * **Power & energy** ([`power`], [`rapl`]): an analytic per-core
//!   power model integrated over state residency, exposed through a
//!   RAPL-like monotone package energy counter.
//! * **Processor profiles** ([`profiles`]): the four CPUs the paper
//!   characterizes — i7-6700, i7-7700, Xeon E5-2620v4, Xeon Gold 6134.
//! * **Cores and packages** ([`core`], [`topology`]): execution-state
//!   and residency bookkeeping, per-core or chip-wide DVFS domains.
//!
//! # Examples
//!
//! ```
//! use cpusim::profiles::ProcessorProfile;
//! use cpusim::pstate::PState;
//!
//! let gold = ProcessorProfile::xeon_gold_6134();
//! assert_eq!(gold.pstates.len(), 16);
//! assert_eq!(gold.pstates.frequency(PState::P0), 3_200_000_000);
//! assert_eq!(gold.pstates.frequency(gold.pstates.slowest()), 1_200_000_000);
//! ```

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod core;
pub mod cstate;
pub mod dvfs;
pub mod power;
pub mod profiles;
pub mod pstate;
pub mod rapl;
pub mod topology;

pub use crate::core::{Core, CoreId};
pub use crate::cstate::CState;
pub use crate::dvfs::{CoreDvfs, TransitionOutcome};
pub use crate::profiles::ProcessorProfile;
pub use crate::pstate::{PState, PStateTable};
pub use crate::rapl::RaplCounter;
pub use crate::topology::{DvfsScope, Processor};
