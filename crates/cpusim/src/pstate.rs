//! P-states (performance states): discrete voltage/frequency pairs.
//!
//! Following ACPI and the paper's terminology, **P0 is the highest**
//! V/F state and larger indices are slower. The Xeon Gold 6134
//! testbed exposes 16 P-states from 3.2 GHz (P0) down to 1.2 GHz
//! (P15).

use std::fmt;

/// A P-state index. `PState(0)` (= [`PState::P0`]) is the fastest.
///
/// # Examples
///
/// ```
/// use cpusim::pstate::PState;
/// assert!(PState::P0.is_faster_than(PState::new(3)));
/// assert_eq!(PState::new(3).index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PState(u8);

impl PState {
    /// The maximum-performance state.
    pub const P0: PState = PState(0);

    /// Creates a P-state with the given index (0 = fastest).
    pub const fn new(index: u8) -> Self {
        PState(index)
    }

    /// The index (0 = fastest).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// True if `self` has a higher frequency than `other`.
    /// (Lower index = faster.)
    pub const fn is_faster_than(self, other: PState) -> bool {
        self.0 < other.0
    }

    /// The next-faster state (saturating at P0).
    pub fn faster(self) -> PState {
        PState(self.0.saturating_sub(1))
    }

    /// The next-slower state, clamped to `slowest`.
    pub fn slower(self, slowest: PState) -> PState {
        PState((self.0 + 1).min(slowest.0))
    }

    /// Static display label (`"P0"`…), for trace events that carry
    /// `&'static str` names.
    pub const fn label(self) -> &'static str {
        const LABELS: [&str; 32] = [
            "P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11", "P12", "P13",
            "P14", "P15", "P16", "P17", "P18", "P19", "P20", "P21", "P22", "P23", "P24", "P25",
            "P26", "P27", "P28", "P29", "P30", "P31",
        ];
        if (self.0 as usize) < LABELS.len() {
            LABELS[self.0 as usize]
        } else {
            "P?"
        }
    }
}

impl fmt::Display for PState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One operating point: frequency and supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core clock in Hz.
    pub frequency_hz: u64,
    /// Supply voltage in volts (used by the power model).
    pub voltage_v: f64,
}

/// The table of operating points for a processor, ordered from P0
/// (fastest) to P(n-1) (slowest).
///
/// # Examples
///
/// ```
/// use cpusim::pstate::{PState, PStateTable};
/// let t = PStateTable::linear(16, 3_200_000_000, 1_200_000_000, 1.05, 0.70);
/// assert_eq!(t.len(), 16);
/// assert_eq!(t.frequency(PState::P0), 3_200_000_000);
/// assert!(t.voltage(PState::P0) > t.voltage(t.slowest()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PStateTable {
    points: Vec<OperatingPoint>,
}

impl PStateTable {
    /// Builds a table from explicit operating points (P0 first).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, exceeds 256 entries, or
    /// frequencies are not strictly decreasing.
    pub fn new(points: Vec<OperatingPoint>) -> Self {
        assert!(!points.is_empty(), "P-state table must not be empty");
        assert!(points.len() <= 256, "more than 256 P-states");
        for w in points.windows(2) {
            assert!(
                w[0].frequency_hz > w[1].frequency_hz,
                "P-state frequencies must strictly decrease from P0"
            );
        }
        PStateTable { points }
    }

    /// Builds `n` evenly spaced states from `f_max` down to `f_min`,
    /// with voltage interpolated linearly from `v_max` to `v_min`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `f_max <= f_min`.
    pub fn linear(n: usize, f_max: u64, f_min: u64, v_max: f64, v_min: f64) -> Self {
        assert!(n >= 2, "need at least two states");
        assert!(f_max > f_min, "f_max must exceed f_min");
        let points = (0..n)
            .map(|i| {
                let frac = i as f64 / (n - 1) as f64;
                OperatingPoint {
                    frequency_hz: (f_max as f64 - frac * (f_max - f_min) as f64).round() as u64,
                    voltage_v: v_max - frac * (v_max - v_min),
                }
            })
            .collect();
        PStateTable::new(points)
    }

    /// Number of P-states.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (the constructor rejects empty tables); provided
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The slowest (deepest) P-state.
    pub fn slowest(&self) -> PState {
        PState((self.points.len() - 1) as u8)
    }

    /// The fastest frequency in the table (P0's, in Hz). The latency
    /// attribution profiler prices ideal service time at this
    /// frequency so any DVFS slowdown surfaces as P-state stall.
    pub fn fastest_frequency(&self) -> u64 {
        self.points[0].frequency_hz
    }

    /// True if `p` is within this table.
    pub fn contains(&self, p: PState) -> bool {
        (p.index() as usize) < self.points.len()
    }

    /// Clamps an arbitrary index into the table's range.
    pub fn clamp(&self, p: PState) -> PState {
        PState(p.index().min(self.slowest().index()))
    }

    /// Frequency of `p` in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn frequency(&self, p: PState) -> u64 {
        self.points[p.index() as usize].frequency_hz
    }

    /// Voltage of `p` in volts.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn voltage(&self, p: PState) -> f64 {
        self.points[p.index() as usize].voltage_v
    }

    /// The operating point of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn point(&self, p: PState) -> OperatingPoint {
        self.points[p.index() as usize]
    }

    /// The lowest-index (fastest) state whose frequency is ≤
    /// `target_hz`, or the slowest state if all are faster. This is
    /// the `ondemand` governor's frequency→P-state mapping.
    pub fn state_for_max_frequency(&self, target_hz: u64) -> PState {
        for (i, pt) in self.points.iter().enumerate() {
            if pt.frequency_hz <= target_hz {
                return PState(i as u8);
            }
        }
        self.slowest()
    }

    /// Normalized distance between two states in `[0, 1]`
    /// (0 = same state, 1 = P0 ↔ slowest). Used by the re-transition
    /// latency interpolation.
    pub fn distance_fraction(&self, a: PState, b: PState) -> f64 {
        if self.points.len() <= 1 {
            return 0.0;
        }
        (a.index().abs_diff(b.index())) as f64 / (self.points.len() - 1) as f64
    }

    /// Iterates over `(PState, OperatingPoint)` pairs from P0 down.
    pub fn iter(&self) -> impl Iterator<Item = (PState, OperatingPoint)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, &pt)| (PState(i as u8), pt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::linear(16, 3_200_000_000, 1_200_000_000, 1.05, 0.70)
    }

    #[test]
    fn ordering_semantics() {
        assert!(PState::P0.is_faster_than(PState::new(1)));
        assert!(!PState::new(1).is_faster_than(PState::new(1)));
        assert_eq!(PState::P0.faster(), PState::P0);
        assert_eq!(PState::new(2).faster(), PState::new(1));
        let slowest = PState::new(15);
        assert_eq!(slowest.slower(slowest), slowest);
        assert_eq!(PState::new(3).slower(slowest), PState::new(4));
    }

    #[test]
    fn linear_table_endpoints() {
        let t = table();
        assert_eq!(t.frequency(PState::P0), 3_200_000_000);
        assert_eq!(t.frequency(t.slowest()), 1_200_000_000);
        assert!((t.voltage(PState::P0) - 1.05).abs() < 1e-12);
        assert!((t.voltage(t.slowest()) - 0.70).abs() < 1e-12);
    }

    #[test]
    fn frequencies_strictly_decrease() {
        let t = table();
        let freqs: Vec<u64> = t.iter().map(|(_, pt)| pt.frequency_hz).collect();
        for w in freqs.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn non_monotone_table_rejected() {
        PStateTable::new(vec![
            OperatingPoint {
                frequency_hz: 1_000,
                voltage_v: 1.0,
            },
            OperatingPoint {
                frequency_hz: 2_000,
                voltage_v: 1.0,
            },
        ]);
    }

    #[test]
    fn state_for_max_frequency() {
        let t = table();
        // Exactly P0's frequency → P0.
        assert_eq!(t.state_for_max_frequency(3_200_000_000), PState::P0);
        // Above everything → P0.
        assert_eq!(t.state_for_max_frequency(u64::MAX), PState::P0);
        // Below everything → slowest.
        assert_eq!(t.state_for_max_frequency(1), t.slowest());
        // Mid value → fastest state not exceeding it.
        let p = t.state_for_max_frequency(2_000_000_000);
        assert!(t.frequency(p) <= 2_000_000_000);
        if p.index() > 0 {
            assert!(t.frequency(p.faster()) > 2_000_000_000);
        }
    }

    #[test]
    fn distance_fraction_bounds() {
        let t = table();
        assert_eq!(t.distance_fraction(PState::P0, PState::P0), 0.0);
        assert!((t.distance_fraction(PState::P0, t.slowest()) - 1.0).abs() < 1e-12);
        let d = t.distance_fraction(PState::P0, PState::new(1));
        assert!((d - 1.0 / 15.0).abs() < 1e-12);
        // Symmetric.
        assert_eq!(
            t.distance_fraction(PState::new(3), PState::new(7)),
            t.distance_fraction(PState::new(7), PState::new(3))
        );
    }

    #[test]
    fn clamp_and_contains() {
        let t = table();
        assert!(t.contains(PState::new(15)));
        assert!(!t.contains(PState::new(16)));
        assert_eq!(t.clamp(PState::new(200)), t.slowest());
        assert_eq!(t.clamp(PState::new(3)), PState::new(3));
    }
}
