//! Processor profiles: the four CPUs characterized in the paper.
//!
//! Each profile carries the P-state table, the DVFS latency model
//! (ACPI base latency + the measured *re-transition* latencies from
//! Table 1), the C-state wake-up latencies from Table 2, the CC6
//! cache-flush penalty from §5.2, and the analytic power-model
//! coefficients used for energy accounting.
//!
//! Calibration notes (see DESIGN.md §5): Table 1/2 values are encoded
//! directly from the paper; power coefficients are chosen so the
//! Gold 6134 package lands near its 130 W TDP with all cores at P0
//! and reproduces the paper's menu/disable/c6only energy ordering.

use crate::cstate::CStateLatencies;
use crate::dvfs::RetransitionModel;
use crate::power::PowerModel;
use crate::pstate::PStateTable;
use simcore::SimDuration;

/// A complete description of one processor model.
#[derive(Debug, Clone)]
pub struct ProcessorProfile {
    /// Marketing name, e.g. `"Intel Xeon Gold 6134"`.
    pub name: &'static str,
    /// Number of physical cores (hyper-threading disabled, as in the
    /// paper's testbed).
    pub cores: usize,
    /// Voltage/frequency operating points, P0 first.
    pub pstates: PStateTable,
    /// ACPI-advertised V/F transition latency (10 µs on all four
    /// CPUs, per the DSDT/SSDT tables cited in §5.1).
    pub base_transition: SimDuration,
    /// Re-transition latency model fitted to Table 1.
    pub retransition: RetransitionModel,
    /// How long after a completed transition a new request still pays
    /// the re-transition cost (the "immediately" in §5.1).
    pub settle_window: SimDuration,
    /// C-state wake-up latencies (Table 2).
    pub cstate_latencies: CStateLatencies,
    /// Worst-case time to re-fill the private caches after a CC6 wake
    /// (§5.2: 7 µs on E5-2620v4 with 256 KB L2, 26.4 µs on Gold 6134
    /// with 1 MB L2).
    pub cc6_cache_refill: SimDuration,
    /// Analytic power model coefficients.
    pub power: PowerModel,
}

impl ProcessorProfile {
    /// The paper's evaluation testbed: 8-core Xeon Gold 6134 with
    /// per-core DVFS and 16 P-states from 1.2 GHz (P15) to 3.2 GHz
    /// (P0) (§6.1).
    pub fn xeon_gold_6134() -> Self {
        ProcessorProfile {
            name: "Intel Xeon Gold 6134",
            cores: 8,
            pstates: PStateTable::linear(16, 3_200_000_000, 1_200_000_000, 1.05, 0.70),
            base_transition: SimDuration::from_micros(10),
            // Table 1: ~526 µs flat, stdev ~6-7 µs, mild distance term.
            retransition: RetransitionModel::server(525.0, 2.0, 526.0, 1.5, 6.0),
            settle_window: SimDuration::from_micros(500),
            cstate_latencies: CStateLatencies {
                c1_wake_mean_us: 0.56,
                c1_wake_stdev_us: 0.50,
                c6_wake_mean_us: 27.43,
                c6_wake_stdev_us: 4.05,
            },
            cc6_cache_refill: SimDuration::from_nanos(26_400),
            power: PowerModel::server_8core(),
        }
    }

    /// Xeon E5-2620v4 (Broadwell server, 256 KB L2): ~517 µs
    /// re-transition, 7 µs CC6 cache refill.
    pub fn xeon_e5_2620v4() -> Self {
        ProcessorProfile {
            name: "Intel Xeon E5-2620v4",
            cores: 8,
            pstates: PStateTable::linear(15, 3_000_000_000, 1_200_000_000, 1.00, 0.70),
            base_transition: SimDuration::from_micros(10),
            retransition: RetransitionModel::server(516.0, 1.5, 517.0, 3.5, 4.5),
            settle_window: SimDuration::from_micros(500),
            cstate_latencies: CStateLatencies {
                c1_wake_mean_us: 0.50,
                c1_wake_stdev_us: 0.50,
                c6_wake_mean_us: 27.25,
                c6_wake_stdev_us: 4.77,
            },
            cc6_cache_refill: SimDuration::from_nanos(7_000),
            power: PowerModel::server_8core(),
        }
    }

    /// Desktop i7-6700 (Skylake): direction-dependent re-transition
    /// of a few tens of µs (Table 1, rows 1-6).
    pub fn i7_6700() -> Self {
        ProcessorProfile {
            name: "Intel i7-6700",
            cores: 4,
            pstates: PStateTable::linear(16, 3_400_000_000, 800_000_000, 1.10, 0.65),
            base_transition: SimDuration::from_micros(10),
            // Table 1: down 21.0→27.2 µs, up 34.6→45.1 µs over distance.
            retransition: RetransitionModel::desktop(20.6, 6.6, 33.9, 11.2, 3.5),
            settle_window: SimDuration::from_micros(30),
            cstate_latencies: CStateLatencies {
                c1_wake_mean_us: 0.35,
                c1_wake_stdev_us: 0.48,
                c6_wake_mean_us: 27.70,
                c6_wake_stdev_us: 3.00,
            },
            cc6_cache_refill: SimDuration::from_nanos(10_000),
            power: PowerModel::desktop_4core(),
        }
    }

    /// Desktop i7-7700 (Kaby Lake).
    pub fn i7_7700() -> Self {
        ProcessorProfile {
            name: "Intel i7-7700",
            cores: 4,
            pstates: PStateTable::linear(16, 3_600_000_000, 800_000_000, 1.10, 0.65),
            base_transition: SimDuration::from_micros(10),
            // Table 1: down 21.7→25.9 µs, up 31.3→50.7 µs over distance.
            retransition: RetransitionModel::desktop(21.4, 4.5, 30.0, 20.7, 3.0),
            settle_window: SimDuration::from_micros(30),
            cstate_latencies: CStateLatencies {
                c1_wake_mean_us: 0.40,
                c1_wake_stdev_us: 0.49,
                c6_wake_mean_us: 27.56,
                c6_wake_stdev_us: 4.15,
            },
            cc6_cache_refill: SimDuration::from_nanos(10_000),
            power: PowerModel::desktop_4core(),
        }
    }

    /// All four characterized processors, in the order Table 1 lists
    /// them.
    pub fn all_characterized() -> Vec<Self> {
        vec![
            Self::i7_6700(),
            Self::i7_7700(),
            Self::xeon_e5_2620v4(),
            Self::xeon_gold_6134(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::PState;

    #[test]
    fn gold_6134_matches_paper_testbed() {
        let p = ProcessorProfile::xeon_gold_6134();
        assert_eq!(p.cores, 8);
        assert_eq!(p.pstates.len(), 16);
        assert_eq!(p.pstates.frequency(PState::P0), 3_200_000_000);
        assert_eq!(p.pstates.frequency(p.pstates.slowest()), 1_200_000_000);
        assert_eq!(p.base_transition, SimDuration::from_micros(10));
    }

    #[test]
    fn all_profiles_have_valid_tables() {
        for p in ProcessorProfile::all_characterized() {
            assert!(p.pstates.len() >= 2, "{}", p.name);
            assert!(p.cores >= 4, "{}", p.name);
            assert!(!p.settle_window.is_zero(), "{}", p.name);
            assert!(p.cstate_latencies.c6_wake_mean_us > p.cstate_latencies.c1_wake_mean_us);
        }
    }

    #[test]
    fn server_retransition_dwarfs_base() {
        let p = ProcessorProfile::xeon_gold_6134();
        let mean = p.retransition.mean_micros(
            true,
            p.pstates.distance_fraction(PState::P0, p.pstates.slowest()),
        );
        assert!(
            mean > 500.0,
            "server re-transition should be ~520 µs, got {mean}"
        );
        assert!(mean > 50.0 * p.base_transition.as_micros_f64() * 0.9);
    }

    #[test]
    fn desktop_up_costs_more_than_down() {
        let p = ProcessorProfile::i7_6700();
        let up = p.retransition.mean_micros(true, 1.0);
        let down = p.retransition.mean_micros(false, 1.0);
        assert!(up > down, "raising V/F must cost more ({up} vs {down})");
    }
}
