//! The DVFS hardware engine: V/F transitions with realistic latency.
//!
//! §5.1 of the paper shows that although ACPI advertises a 10 µs
//! transition latency, *back-to-back* transitions ("update the ctrl
//! register repetitively") take far longer — the **re-transition
//! latency** of Table 1: 2–5× longer on desktop parts and ~50×
//! (≈520 µs) on the Xeon servers. This model reproduces both regimes:
//!
//! * a request arriving while the core is **quiescent** (no transition
//!   in flight and past the settle window) completes after the ACPI
//!   base latency;
//! * a request arriving **during** a transition is queued (latest
//!   wins) and, when started, pays the re-transition latency;
//! * a request arriving within the **settle window** after a completed
//!   transition also pays the re-transition latency.
//!
//! The engine is a pure state machine: it computes *when* a transition
//! completes and the caller (the server glue) schedules the completion
//! event and calls [`CoreDvfs::complete`] at that time.

use crate::profiles::ProcessorProfile;
use crate::pstate::PState;
use simcore::{RngStream, SimDuration, SimTime};

/// Re-transition latency model fitted to Table 1.
///
/// The latency depends on the transition *direction* (raising V/F
/// costs more than lowering on desktop parts) and the normalized
/// *distance* between the states (Pmin→Pmax costs more than P1→P0):
/// `mean_µs = base + span · distance_fraction`, with Gaussian noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetransitionModel {
    down_base_us: f64,
    down_span_us: f64,
    up_base_us: f64,
    up_span_us: f64,
    stdev_us: f64,
}

impl RetransitionModel {
    /// Desktop-style model (tens of µs, strong direction asymmetry).
    pub fn desktop(
        down_base_us: f64,
        down_span_us: f64,
        up_base_us: f64,
        up_span_us: f64,
        stdev_us: f64,
    ) -> Self {
        RetransitionModel {
            down_base_us,
            down_span_us,
            up_base_us,
            up_span_us,
            stdev_us,
        }
    }

    /// Server-style model (~520 µs, nearly flat across transitions).
    pub fn server(
        down_base_us: f64,
        down_span_us: f64,
        up_base_us: f64,
        up_span_us: f64,
        stdev_us: f64,
    ) -> Self {
        // Same shape, different constants; a separate constructor
        // keeps call sites self-describing.
        Self::desktop(down_base_us, down_span_us, up_base_us, up_span_us, stdev_us)
    }

    /// Mean re-transition latency in µs for a transition in the given
    /// direction (`up` = raising V/F) across `distance_fraction` of
    /// the P-state range.
    pub fn mean_micros(&self, up: bool, distance_fraction: f64) -> f64 {
        let frac = distance_fraction.clamp(0.0, 1.0);
        if up {
            self.up_base_us + self.up_span_us * frac
        } else {
            self.down_base_us + self.down_span_us * frac
        }
    }

    /// Samples a re-transition latency (mean + Gaussian noise, floored
    /// at 1 µs so noise can never produce a non-physical latency).
    pub fn sample(&self, rng: &mut RngStream, up: bool, distance_fraction: f64) -> SimDuration {
        let us = rng.normal(self.mean_micros(up, distance_fraction), self.stdev_us);
        SimDuration::from_micros_f64(us.max(1.0))
    }
}

/// Result of a [`CoreDvfs::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionOutcome {
    /// The core is already at the requested state and quiescent.
    AlreadyThere,
    /// A transition started; the caller must invoke
    /// [`CoreDvfs::complete`] with this token at `completes_at`.
    Started { completes_at: SimTime, token: u64 },
    /// A transition is in flight; the request was queued and will
    /// start when the in-flight transition completes (the follow-up is
    /// returned by [`CoreDvfs::complete`]).
    Queued,
}

/// Result of [`CoreDvfs::complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionResult {
    /// The token was stale (a newer transition superseded it); ignore.
    Stale,
    /// The transition finished and the new state is now in effect.
    Settled { new_state: PState },
    /// The transition finished and a queued request immediately
    /// started a follow-up transition (paying re-transition latency).
    FollowUp {
        new_state: PState,
        completes_at: SimTime,
        token: u64,
    },
}

/// Per-DVFS-domain transition state machine.
///
/// # Examples
///
/// ```
/// use cpusim::dvfs::{CoreDvfs, TransitionOutcome, CompletionResult};
/// use cpusim::profiles::ProcessorProfile;
/// use cpusim::pstate::PState;
/// use simcore::{RngStream, SimTime};
///
/// let profile = ProcessorProfile::xeon_gold_6134();
/// let mut rng = RngStream::from_seed(1);
/// let mut dvfs = CoreDvfs::new(profile.pstates.slowest());
/// let outcome = dvfs.request(PState::P0, SimTime::ZERO, &profile, &mut rng);
/// let TransitionOutcome::Started { completes_at, token } = outcome else { panic!() };
/// // First-ever transition pays only the ACPI base latency (10 µs).
/// assert_eq!(completes_at, SimTime::from_micros(10));
/// let done = dvfs.complete(token, completes_at, &profile, &mut rng);
/// assert_eq!(done, CompletionResult::Settled { new_state: PState::P0 });
/// assert_eq!(dvfs.current(), PState::P0);
/// ```
#[derive(Debug, Clone)]
pub struct CoreDvfs {
    current: PState,
    in_flight: Option<InFlight>,
    queued: Option<PState>,
    last_complete: Option<SimTime>,
    next_token: u64,
    transitions_started: u64,
    transition_padding: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    target: PState,
    completes_at: SimTime,
    token: u64,
}

impl CoreDvfs {
    /// Creates a quiescent domain at `initial`.
    pub fn new(initial: PState) -> Self {
        CoreDvfs {
            current: initial,
            in_flight: None,
            queued: None,
            last_complete: None,
            next_token: 0,
            transitions_started: 0,
            transition_padding: SimDuration::ZERO,
        }
    }

    /// Extra latency added to every transition started while set —
    /// models a slow voltage regulator or injected DVFS-latency fault.
    /// Applied when a transition *begins*, so an in-flight transition
    /// keeps its original completion time.
    pub fn set_transition_padding(&mut self, padding: SimDuration) {
        self.transition_padding = padding;
    }

    /// The currently configured transition padding.
    pub fn transition_padding(&self) -> SimDuration {
        self.transition_padding
    }

    /// The V/F state currently in effect (the old state remains in
    /// effect while a transition is in flight).
    pub fn current(&self) -> PState {
        self.current
    }

    /// The state the domain is heading towards: queued target if any,
    /// else in-flight target, else current.
    pub fn target(&self) -> PState {
        self.queued
            .or(self.in_flight.map(|f| f.target))
            .unwrap_or(self.current)
    }

    /// True if a transition is in flight.
    pub fn is_transitioning(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Total transitions started (for ablation reporting).
    pub fn transitions_started(&self) -> u64 {
        self.transitions_started
    }

    /// Requests a change to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in the profile's P-state table.
    pub fn request(
        &mut self,
        target: PState,
        now: SimTime,
        profile: &ProcessorProfile,
        rng: &mut RngStream,
    ) -> TransitionOutcome {
        assert!(
            profile.pstates.contains(target),
            "target P-state out of range"
        );
        if let Some(inflight) = self.in_flight {
            if inflight.target == target {
                // Already heading there; drop any stale queued request
                // so we don't bounce back after completion.
                self.queued = None;
                return TransitionOutcome::Queued;
            }
            self.queued = Some(target);
            return TransitionOutcome::Queued;
        }
        if target == self.current {
            self.queued = None;
            return TransitionOutcome::AlreadyThere;
        }
        let latency = self.start_latency(target, now, profile, rng);
        self.begin(target, now, latency)
    }

    /// Latency for a transition starting now from `self.current`.
    fn start_latency(
        &self,
        target: PState,
        now: SimTime,
        profile: &ProcessorProfile,
        rng: &mut RngStream,
    ) -> SimDuration {
        let within_settle = match self.last_complete {
            Some(t) => now.saturating_since(t) < profile.settle_window,
            None => false,
        };
        if within_settle {
            let up = target.is_faster_than(self.current);
            let frac = profile.pstates.distance_fraction(self.current, target);
            profile.retransition.sample(rng, up, frac)
        } else {
            profile.base_transition
        }
    }

    fn begin(&mut self, target: PState, now: SimTime, latency: SimDuration) -> TransitionOutcome {
        let token = self.next_token;
        self.next_token += 1;
        self.transitions_started += 1;
        let completes_at = now + latency + self.transition_padding;
        self.in_flight = Some(InFlight {
            target,
            completes_at,
            token,
        });
        TransitionOutcome::Started {
            completes_at,
            token,
        }
    }

    /// Completes the in-flight transition identified by `token`.
    /// Call exactly when the `completes_at` returned at start time is
    /// reached. Returns a follow-up transition if a request was queued
    /// meanwhile — the follow-up pays the re-transition latency.
    pub fn complete(
        &mut self,
        token: u64,
        now: SimTime,
        profile: &ProcessorProfile,
        rng: &mut RngStream,
    ) -> CompletionResult {
        let Some(inflight) = self.in_flight else {
            return CompletionResult::Stale;
        };
        if inflight.token != token {
            return CompletionResult::Stale;
        }
        debug_assert_eq!(
            now, inflight.completes_at,
            "completion fired at the wrong time"
        );
        self.current = inflight.target;
        self.in_flight = None;
        self.last_complete = Some(now);
        let new_state = self.current;
        match self.queued.take() {
            Some(q) if q != new_state => {
                // Back-to-back: always the re-transition latency.
                let up = q.is_faster_than(new_state);
                let frac = profile.pstates.distance_fraction(new_state, q);
                let latency = profile.retransition.sample(rng, up, frac);
                let TransitionOutcome::Started {
                    completes_at,
                    token,
                } = self.begin(q, now, latency)
                else {
                    unreachable!("begin always starts");
                };
                CompletionResult::FollowUp {
                    new_state,
                    completes_at,
                    token,
                }
            }
            _ => CompletionResult::Settled { new_state },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ProcessorProfile;

    fn setup() -> (ProcessorProfile, CoreDvfs, RngStream) {
        let p = ProcessorProfile::xeon_gold_6134();
        let d = CoreDvfs::new(p.pstates.slowest());
        (p, d, RngStream::from_seed(42))
    }

    #[test]
    fn quiescent_transition_uses_base_latency() {
        let (p, mut d, mut rng) = setup();
        let out = d.request(PState::P0, SimTime::from_millis(10), &p, &mut rng);
        match out {
            TransitionOutcome::Started { completes_at, .. } => {
                assert_eq!(completes_at, SimTime::from_millis(10) + p.base_transition);
            }
            other => panic!("expected Started, got {other:?}"),
        }
    }

    #[test]
    fn state_changes_only_at_completion() {
        let (p, mut d, mut rng) = setup();
        let slowest = p.pstates.slowest();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = d.request(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        assert_eq!(d.current(), slowest, "old state holds during transition");
        assert!(d.is_transitioning());
        d.complete(token, completes_at, &p, &mut rng);
        assert_eq!(d.current(), PState::P0);
        assert!(!d.is_transitioning());
    }

    #[test]
    fn request_within_settle_window_pays_retransition() {
        let (p, mut d, mut rng) = setup();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = d.request(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        d.complete(token, completes_at, &p, &mut rng);
        // Immediately request a change back: must take ~520 µs, not 10 µs.
        let TransitionOutcome::Started {
            completes_at: c2, ..
        } = d.request(p.pstates.slowest(), completes_at, &p, &mut rng)
        else {
            panic!()
        };
        let latency = c2 - completes_at;
        assert!(
            latency > SimDuration::from_micros(400),
            "expected server re-transition latency, got {latency}"
        );
    }

    #[test]
    fn request_after_settle_window_uses_base_latency() {
        let (p, mut d, mut rng) = setup();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = d.request(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        d.complete(token, completes_at, &p, &mut rng);
        let later = completes_at + p.settle_window + SimDuration::from_micros(1);
        let TransitionOutcome::Started {
            completes_at: c2, ..
        } = d.request(p.pstates.slowest(), later, &p, &mut rng)
        else {
            panic!()
        };
        assert_eq!(c2 - later, p.base_transition);
    }

    #[test]
    fn queued_request_becomes_followup() {
        let (p, mut d, mut rng) = setup();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = d.request(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        // Mid-flight request to a different state queues.
        let mid = SimTime::from_micros(5);
        assert_eq!(
            d.request(PState::new(8), mid, &p, &mut rng),
            TransitionOutcome::Queued
        );
        assert_eq!(d.target(), PState::new(8));
        match d.complete(token, completes_at, &p, &mut rng) {
            CompletionResult::FollowUp {
                new_state,
                completes_at: c2,
                ..
            } => {
                assert_eq!(new_state, PState::P0);
                let latency = c2 - completes_at;
                assert!(
                    latency > SimDuration::from_micros(400),
                    "follow-up is a re-transition"
                );
            }
            other => panic!("expected FollowUp, got {other:?}"),
        }
        assert!(d.is_transitioning());
    }

    #[test]
    fn request_matching_inflight_target_drops_queue() {
        let (p, mut d, mut rng) = setup();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = d.request(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        d.request(PState::new(5), SimTime::from_micros(2), &p, &mut rng);
        // Re-request the in-flight target: the queued P5 must be dropped.
        d.request(PState::P0, SimTime::from_micros(4), &p, &mut rng);
        assert_eq!(d.target(), PState::P0);
        assert_eq!(
            d.complete(token, completes_at, &p, &mut rng),
            CompletionResult::Settled {
                new_state: PState::P0
            }
        );
    }

    #[test]
    fn stale_token_ignored() {
        let (p, mut d, mut rng) = setup();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = d.request(PState::P0, SimTime::ZERO, &p, &mut rng)
        else {
            panic!()
        };
        d.complete(token, completes_at, &p, &mut rng);
        assert_eq!(
            d.complete(token, completes_at, &p, &mut rng),
            CompletionResult::Stale
        );
    }

    #[test]
    fn noop_request_when_already_there() {
        let (p, mut d, mut rng) = setup();
        let s = d.current();
        assert_eq!(
            d.request(s, SimTime::ZERO, &p, &mut rng),
            TransitionOutcome::AlreadyThere
        );
        assert_eq!(d.transitions_started(), 0);
    }

    #[test]
    fn retransition_model_direction_and_distance() {
        let m = RetransitionModel::desktop(20.0, 6.0, 34.0, 11.0, 2.0);
        assert!(m.mean_micros(true, 1.0) > m.mean_micros(true, 0.1));
        assert!(m.mean_micros(true, 0.5) > m.mean_micros(false, 0.5));
        // Clamping.
        assert_eq!(m.mean_micros(false, -3.0), 20.0);
        assert_eq!(m.mean_micros(false, 7.0), 26.0);
    }

    #[test]
    fn retransition_sample_statistics() {
        let m = RetransitionModel::server(525.0, 2.0, 526.0, 1.5, 6.0);
        let mut rng = RngStream::from_seed(7);
        let mut stats = simcore::RunningStats::new();
        for _ in 0..10_000 {
            stats.push(m.sample(&mut rng, true, 1.0).as_micros_f64());
        }
        assert!((stats.mean() - 527.5).abs() < 0.5, "mean {}", stats.mean());
        assert!(
            (stats.sample_stdev() - 6.0).abs() < 0.5,
            "stdev {}",
            stats.sample_stdev()
        );
    }
}
