//! Processor topology: a set of cores sharing one package, with
//! per-core or chip-wide DVFS.
//!
//! The paper's testbed supports **per-core DVFS** (each core's
//! governor sets its own V/F). NCAP, by contrast, operates
//! **chip-wide**: §2.2 — "the V/F state of processors supporting
//! chip/cluster DVFS is set to the highest V/F state among the V/F
//! states determined by the governor deployed on each core." Both
//! scopes are modelled here; the chip-wide path is also used for the
//! per-core-vs-chip-wide ablation.

use crate::core::{Core, CoreId};
use crate::dvfs::{CompletionResult, CoreDvfs, TransitionOutcome};
use crate::profiles::ProcessorProfile;
use crate::pstate::PState;
use simcore::{RngStream, SimTime};

/// Which cores share a DVFS domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DvfsScope {
    /// Every core has its own V/F domain (the paper's testbed).
    PerCore,
    /// All cores share one domain set to the fastest request
    /// (NCAP's environment).
    ChipWide,
}

/// A processor package: profile + cores + DVFS domain wiring.
///
/// # Examples
///
/// ```
/// use cpusim::{Processor, DvfsScope, ProcessorProfile};
/// let p = Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore);
/// assert_eq!(p.cores().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    profile: ProcessorProfile,
    cores: Vec<Core>,
    scope: DvfsScope,
    /// Per-core desired states (chip-wide mode aggregates these).
    chip_requests: Vec<PState>,
    /// The shared domain used in chip-wide mode.
    chip_domain: CoreDvfs,
}

impl Processor {
    /// Creates a processor with `profile.cores` cores.
    pub fn new(profile: ProcessorProfile, scope: DvfsScope) -> Self {
        let cores = (0..profile.cores)
            .map(|i| Core::new(CoreId(i), &profile))
            .collect();
        let slowest = profile.pstates.slowest();
        Processor {
            chip_requests: vec![slowest; profile.cores],
            chip_domain: CoreDvfs::new(slowest),
            profile,
            cores,
            scope,
        }
    }

    /// The processor profile.
    pub fn profile(&self) -> &ProcessorProfile {
        &self.profile
    }

    /// The DVFS scope.
    pub fn scope(&self) -> DvfsScope {
        self.scope
    }

    /// All cores.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// A core by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.0]
    }

    /// Mutable access to a core.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_mut(&mut self, id: CoreId) -> &mut Core {
        &mut self.cores[id.0]
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Requests a P-state for `core`. In per-core mode this drives the
    /// core's own domain; in chip-wide mode the domain target is the
    /// fastest state requested by any core.
    pub fn request_pstate(
        &mut self,
        core: CoreId,
        target: PState,
        now: SimTime,
        rng: &mut RngStream,
    ) -> TransitionOutcome {
        let target = self.profile.pstates.clamp(target);
        match self.scope {
            DvfsScope::PerCore => {
                self.cores[core.0].request_pstate(target, now, &self.profile, rng)
            }
            DvfsScope::ChipWide => {
                self.chip_requests[core.0] = target;
                let fastest = self
                    .chip_requests
                    .iter()
                    .copied()
                    .min_by_key(|p| p.index())
                    .expect("at least one core");
                self.chip_domain.request(fastest, now, &self.profile, rng)
            }
        }
    }

    /// Completes a transition started by
    /// [`request_pstate`](Self::request_pstate). `core` identifies the domain in
    /// per-core mode and is ignored in chip-wide mode.
    pub fn complete_pstate(
        &mut self,
        core: CoreId,
        token: u64,
        now: SimTime,
        rng: &mut RngStream,
    ) -> CompletionResult {
        match self.scope {
            DvfsScope::PerCore => {
                self.cores[core.0].complete_pstate(token, now, &self.profile, rng)
            }
            DvfsScope::ChipWide => {
                let result = self.chip_domain.complete(token, now, &self.profile, rng);
                if let CompletionResult::Settled { new_state }
                | CompletionResult::FollowUp { new_state, .. } = result
                {
                    for c in &mut self.cores {
                        c.apply_pstate(new_state, now, &self.profile);
                    }
                }
                result
            }
        }
    }

    /// Package energy (all cores + uncore) through `now`, in joules —
    /// what the RAPL package counter reports.
    pub fn package_energy_joules(&mut self, now: SimTime) -> f64 {
        let core_energy: f64 = {
            let profile = self.profile.clone();
            self.cores
                .iter_mut()
                .map(|c| c.energy_joules(now, &profile))
                .sum()
        };
        core_energy + self.profile.power.uncore_w * now.as_secs_f64()
    }

    /// Package uncore energy through `now` in whole microjoules — a
    /// deterministic pure function of absolute time, so window deltas
    /// are exact integer subtractions.
    pub fn uncore_uj(&self, now: SimTime) -> u64 {
        let uj = self.profile.power.uncore_w * now.as_nanos() as f64 / 1000.0;
        if uj <= 0.0 {
            0
        } else {
            uj.round() as u64
        }
    }

    /// Package energy through `now` as measured by the fixed-point
    /// attribution meters (cores + uncore), in microjoules. Advances
    /// only the meters; the `f64` integral is untouched. 0 without
    /// the `obs` feature (apart from the uncore term, which is a pure
    /// function of time).
    pub fn package_energy_uj(&mut self, now: SimTime) -> u64 {
        let profile = self.profile.clone();
        let core_uj = self.cores.iter_mut().fold(0u64, |acc, c| {
            acc.saturating_add(c.energy_uj(now, &profile))
        });
        core_uj.saturating_add(self.uncore_uj(now))
    }

    /// Package energy attributed to components by the fixed-point
    /// meters (component sums + uncore), in microjoules. Must equal
    /// [`package_energy_uj`](Self::package_energy_uj) exactly — the
    /// package-level conservation identity.
    pub fn attributed_package_energy_uj(&mut self, now: SimTime) -> u64 {
        let profile = self.profile.clone();
        let core_uj = self.cores.iter_mut().fold(0u64, |acc, c| {
            acc.saturating_add(c.energy_breakdown(now, &profile).total_uj())
        });
        core_uj.saturating_add(self.uncore_uj(now))
    }

    /// Package energy recomputed from every core's residency ledger
    /// plus the uncore term — the independent cross-check the
    /// conservation audit compares against
    /// [`package_energy_joules`](Self::package_energy_joules). Returns
    /// `None` without the `audit` feature.
    pub fn audited_package_energy_joules(&mut self, now: SimTime) -> Option<f64> {
        let profile = self.profile.clone();
        let mut core_energy = 0.0;
        for c in &mut self.cores {
            core_energy += c.audited_energy_joules(now, &profile)?;
        }
        Some(core_energy + profile.power.uncore_w * now.as_secs_f64())
    }

    /// Sets extra latency added to every DVFS transition started while
    /// the padding is in effect, on every domain (fault injection).
    pub fn set_transition_padding(&mut self, padding: simcore::SimDuration) {
        for c in &mut self.cores {
            c.set_transition_padding(padding);
        }
        self.chip_domain.set_transition_padding(padding);
    }

    /// Total DVFS transitions started across all domains.
    pub fn total_transitions(&self) -> u64 {
        match self.scope {
            DvfsScope::PerCore => self.cores.iter().map(|c| c.transitions_started()).sum(),
            DvfsScope::ChipWide => self.chip_domain.transitions_started(),
        }
    }

    /// Reports processor-level totals into the metrics registry.
    pub fn record_metrics(&mut self, now: SimTime, m: &mut simcore::MetricsRegistry) {
        if !simcore::MetricsRegistry::ENABLED {
            return;
        }
        m.set_counter("cpu.dvfs_transitions", self.total_transitions());
        m.set_counter(
            "cpu.c6_entries",
            self.cores.iter().map(|c| c.c6_entries()).sum(),
        );
        m.set_gauge("cpu.package_energy_j", self.package_energy_joules(now));
        let busy: f64 = self
            .cores
            .iter()
            .map(|c| c.total_busy().as_secs_f64())
            .sum();
        m.set_gauge("cpu.total_busy_s", busy);
    }

    /// Replays every core's P-/C-state logs into `buf` as residency
    /// spans (see [`Core::trace_into`]).
    pub fn trace_into(&self, end: SimTime, buf: &mut simcore::TraceBuffer) {
        for c in &self.cores {
            c.trace_into(end, buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn per_core() -> (Processor, RngStream) {
        (
            Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::PerCore),
            RngStream::from_seed(5),
        )
    }

    fn chip_wide() -> (Processor, RngStream) {
        (
            Processor::new(ProcessorProfile::xeon_gold_6134(), DvfsScope::ChipWide),
            RngStream::from_seed(5),
        )
    }

    #[test]
    fn per_core_domains_are_independent() {
        let (mut p, mut rng) = per_core();
        let TransitionOutcome::Started {
            completes_at,
            token,
        } = p.request_pstate(CoreId(0), PState::P0, SimTime::ZERO, &mut rng)
        else {
            panic!()
        };
        p.complete_pstate(CoreId(0), token, completes_at, &mut rng);
        assert_eq!(p.core(CoreId(0)).pstate(), PState::P0);
        // Other cores untouched.
        assert_eq!(p.core(CoreId(1)).pstate(), p.profile().pstates.slowest());
    }

    #[test]
    fn chip_wide_takes_fastest_request_and_applies_to_all() {
        let (mut p, mut rng) = chip_wide();
        // Core 3 asks for P4, core 5 asks for P0 → domain goes to P0.
        p.request_pstate(CoreId(3), PState::new(4), SimTime::ZERO, &mut rng);
        let out = p.request_pstate(CoreId(5), PState::P0, SimTime::from_micros(1), &mut rng);
        // The P4 transition is already in flight, so P0 queues.
        assert_eq!(out, TransitionOutcome::Queued);
        // Drive completions until the domain settles.
        let (mut t, mut tok) = match out {
            TransitionOutcome::Queued => {
                // first transition completes at ZERO + base
                (SimTime::ZERO + p.profile().base_transition, 0u64)
            }
            _ => unreachable!(),
        };
        loop {
            match p.complete_pstate(CoreId(0), tok, t, &mut rng) {
                CompletionResult::FollowUp {
                    completes_at,
                    token,
                    ..
                } => {
                    t = completes_at;
                    tok = token;
                }
                CompletionResult::Settled { new_state } => {
                    assert_eq!(new_state, PState::P0);
                    break;
                }
                CompletionResult::Stale => panic!("unexpected stale token"),
            }
        }
        for c in p.cores() {
            assert_eq!(c.pstate(), PState::P0);
        }
    }

    #[test]
    fn chip_wide_lowering_requires_all_cores_to_agree() {
        let (mut p, mut rng) = chip_wide();
        // Everyone asks for P0 first.
        let mut pending = Vec::new();
        for i in 0..p.num_cores() {
            if let TransitionOutcome::Started {
                completes_at,
                token,
            } = p.request_pstate(CoreId(i), PState::P0, SimTime::ZERO, &mut rng)
            {
                pending.push((completes_at, token));
            }
        }
        assert_eq!(pending.len(), 1, "one shared transition");
        let (t, tok) = pending[0];
        p.complete_pstate(CoreId(0), tok, t, &mut rng);
        // One core asks to slow down — the domain must stay at P0.
        let later = t + SimDuration::from_millis(1);
        let out = p.request_pstate(CoreId(2), PState::new(15), later, &mut rng);
        assert_eq!(out, TransitionOutcome::AlreadyThere);
        assert_eq!(p.core(CoreId(0)).pstate(), PState::P0);
    }

    #[test]
    fn package_energy_includes_uncore() {
        let (mut p, _) = per_core();
        let e = p.package_energy_joules(SimTime::from_secs(1));
        let uncore = p.profile().power.uncore_w;
        assert!(
            e > uncore * 0.99,
            "package energy {e} must include uncore {uncore}"
        );
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audited_energy_matches_incremental_integral() {
        let (mut p, mut rng) = per_core();
        // Exercise a few transitions so the residency ledger spans
        // multiple (activity, P-state) cells.
        if let TransitionOutcome::Started {
            completes_at,
            token,
        } = p.request_pstate(CoreId(0), PState::P0, SimTime::ZERO, &mut rng)
        {
            p.complete_pstate(CoreId(0), token, completes_at, &mut rng);
        }
        let now = SimTime::from_millis(40);
        let direct = p.package_energy_joules(now);
        let audited = p.audited_package_energy_joules(now).expect("audit enabled");
        let rel = (direct - audited).abs() / direct.max(1e-12);
        assert!(
            rel < 1e-6,
            "direct {direct} vs audited {audited} (rel {rel})"
        );
    }

    #[test]
    fn integer_package_energy_conserves_and_tracks_f64() {
        let (mut p, mut rng) = per_core();
        let profile = p.profile().clone();
        p.core_mut(CoreId(0))
            .set_busy(true, SimTime::ZERO, &profile);
        if let TransitionOutcome::Started {
            completes_at,
            token,
        } = p.request_pstate(CoreId(1), PState::P0, SimTime::ZERO, &mut rng)
        {
            p.complete_pstate(CoreId(1), token, completes_at, &mut rng);
        }
        let now = SimTime::from_millis(50);
        let measured = p.package_energy_uj(now);
        let attributed = p.attributed_package_energy_uj(now);
        assert_eq!(measured, attributed, "package conservation identity");
        if simcore::CoreEnergyMeter::ENABLED {
            let f64_uj = p.package_energy_joules(now) * 1e6;
            assert!(
                (measured as f64 - f64_uj).abs() < 64.0,
                "integer {measured} µJ vs f64 {f64_uj} µJ"
            );
        } else {
            assert_eq!(measured, p.uncore_uj(now), "only uncore without obs");
        }
    }

    #[test]
    fn clamps_out_of_range_targets() {
        let (mut p, mut rng) = per_core();
        // P200 clamps to slowest, which is where we already are.
        let out = p.request_pstate(CoreId(0), PState::new(200), SimTime::ZERO, &mut rng);
        assert_eq!(out, TransitionOutcome::AlreadyThere);
    }
}
