//! Analytic power model.
//!
//! Per-core power as a function of the operating point and activity:
//!
//! * executing in CC0: `P = c_dyn · V² · f_GHz + c_leak · V`
//! * idle in CC0 (clocks running, no instructions — the `disable`
//!   sleep policy): the dynamic term is scaled by `c0_idle_dyn_frac`
//!   and leakage remains;
//! * CC1: clock-gated — leakage only;
//! * CC6: power-gated — a small residual.
//!
//! Package power adds a constant uncore term. The coefficients are
//! calibrated (see DESIGN.md §5) so an 8-core Gold 6134 at P0 fully
//! busy draws ≈115 W — near its 130 W TDP — and so the paper's
//! menu/disable/c6only energy ordering (Fig 8: +53.2 % / −10.3 % vs
//! menu) is reproducible.

use crate::cstate::CState;
use crate::pstate::OperatingPoint;

/// What a core is doing, for power purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreActivity {
    /// Executing instructions in CC0.
    Busy,
    /// In CC0 but not executing (polling idle / `disable` policy).
    IdleC0,
    /// In CC1 (clock-gated).
    SleepC1,
    /// In CC6 (power-gated).
    SleepC6,
}

impl CoreActivity {
    /// The activity corresponding to idling in `state`.
    pub fn idle_in(state: CState) -> Self {
        match state {
            CState::C0 => CoreActivity::IdleC0,
            CState::C1 => CoreActivity::SleepC1,
            CState::C6 => CoreActivity::SleepC6,
        }
    }

    /// True if the core occupies CC0 (busy or idle) — the residency
    /// definition `intel_pstate` uses for its utilization estimate.
    pub fn is_c0(self) -> bool {
        matches!(self, CoreActivity::Busy | CoreActivity::IdleC0)
    }
}

/// Power-model coefficients for one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Dynamic coefficient: W per (V² · GHz).
    pub c_dyn: f64,
    /// Leakage coefficient: W per volt (CC0 states).
    pub c_leak: f64,
    /// Fraction of dynamic power burned while idling in CC0.
    pub c0_idle_dyn_frac: f64,
    /// CC1 coefficient: W per V² — clock gating removes switching but
    /// the domain stays at the P-state's voltage, so halted power
    /// still tracks V (this is what makes "performance + shallow
    /// idle" expensive, the effect behind Fig 13's low-load spread).
    pub c1_w_per_v2: f64,
    /// CC6 core power in watts (power-gated; V-independent).
    pub c6_power_w: f64,
    /// Constant package (uncore, LLC, memory controller) power in watts.
    pub uncore_w: f64,
}

impl PowerModel {
    /// Calibrated coefficients for the 8-core Xeon server profiles
    /// (DESIGN.md §5: ≈130 W package fully busy at P0; menu/disable/
    /// c6only energy ordering of Fig 8; ~35 % low-load headroom
    /// between P0 and Pmin operation as in Fig 13).
    pub fn server_8core() -> Self {
        PowerModel {
            c_dyn: 4.0,
            c_leak: 1.9,
            c0_idle_dyn_frac: 0.35,
            c1_w_per_v2: 3.2,
            c6_power_w: 0.12,
            uncore_w: 10.0,
        }
    }

    /// Calibrated coefficients for the 4-core desktop profiles.
    pub fn desktop_4core() -> Self {
        PowerModel {
            c_dyn: 3.2,
            c_leak: 1.5,
            c0_idle_dyn_frac: 0.35,
            c1_w_per_v2: 2.2,
            c6_power_w: 0.10,
            uncore_w: 6.0,
        }
    }

    /// Instantaneous power of one core in watts.
    pub fn core_power(&self, op: OperatingPoint, activity: CoreActivity) -> f64 {
        let f_ghz = op.frequency_hz as f64 / 1e9;
        let v = op.voltage_v;
        let dynamic = self.c_dyn * v * v * f_ghz;
        let leak = self.c_leak * v;
        match activity {
            CoreActivity::Busy => dynamic + leak,
            CoreActivity::IdleC0 => dynamic * self.c0_idle_dyn_frac + leak,
            CoreActivity::SleepC1 => self.c1_w_per_v2 * v * v,
            CoreActivity::SleepC6 => self.c6_power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p0() -> OperatingPoint {
        OperatingPoint {
            frequency_hz: 3_200_000_000,
            voltage_v: 1.05,
        }
    }

    fn pmin() -> OperatingPoint {
        OperatingPoint {
            frequency_hz: 1_200_000_000,
            voltage_v: 0.70,
        }
    }

    #[test]
    fn busy_power_ordering_across_pstates() {
        let m = PowerModel::server_8core();
        assert!(m.core_power(p0(), CoreActivity::Busy) > m.core_power(pmin(), CoreActivity::Busy));
    }

    #[test]
    fn activity_ordering() {
        let m = PowerModel::server_8core();
        let busy = m.core_power(p0(), CoreActivity::Busy);
        let idle = m.core_power(p0(), CoreActivity::IdleC0);
        let c1 = m.core_power(p0(), CoreActivity::SleepC1);
        let c6 = m.core_power(p0(), CoreActivity::SleepC6);
        assert!(busy > idle && idle > c1 && c1 > c6);
    }

    #[test]
    fn package_at_p0_near_tdp() {
        let m = PowerModel::server_8core();
        let pkg = 8.0 * m.core_power(p0(), CoreActivity::Busy) + m.uncore_w;
        assert!((110.0..150.0).contains(&pkg), "package power {pkg} W");
    }

    #[test]
    fn dvfs_saves_substantial_power() {
        let m = PowerModel::server_8core();
        let hi = m.core_power(p0(), CoreActivity::Busy);
        let lo = m.core_power(pmin(), CoreActivity::Busy);
        // V² · f scaling: Pmin should be well under half of P0 power.
        assert!(lo < 0.5 * hi, "lo={lo} hi={hi}");
    }

    #[test]
    fn activity_ordering_holds_at_every_characterized_operating_point() {
        // Exhaustive: every shipped profile × every P-state in its
        // table keeps P(Busy) ≥ P(IdleC0) ≥ P(SleepC1) ≥ P(SleepC6) ≥ 0.
        for profile in crate::profiles::ProcessorProfile::all_characterized() {
            for i in 0..profile.pstates.len() {
                let op = profile.pstates.point(crate::pstate::PState::new(i as u8));
                let m = &profile.power;
                let busy = m.core_power(op, CoreActivity::Busy);
                let idle = m.core_power(op, CoreActivity::IdleC0);
                let c1 = m.core_power(op, CoreActivity::SleepC1);
                let c6 = m.core_power(op, CoreActivity::SleepC6);
                assert!(
                    busy >= idle && idle >= c1 && c1 >= c6 && c6 >= 0.0,
                    "{} P{i}: busy={busy} idle={idle} c1={c1} c6={c6}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn activity_ordering_property_over_random_operating_points() {
        // Property form: sample (profile, P-state) pairs under the
        // shared property seed. Raw random (V, f) pairs can violate
        // IdleC0 ≥ C1 for physically meaningless combinations, so the
        // property quantifies over the characterized V/F tables the
        // simulator can actually run at.
        simcore::check::forall("power activity ordering", 512, |rng| {
            let profiles = crate::profiles::ProcessorProfile::all_characterized();
            let profile = &profiles[rng.below(profiles.len() as u64) as usize];
            let i = rng.below(profile.pstates.len() as u64) as usize;
            let op = profile.pstates.point(crate::pstate::PState::new(i as u8));
            let m = &profile.power;
            let busy = m.core_power(op, CoreActivity::Busy);
            let idle = m.core_power(op, CoreActivity::IdleC0);
            let c1 = m.core_power(op, CoreActivity::SleepC1);
            let c6 = m.core_power(op, CoreActivity::SleepC6);
            assert!(busy >= idle, "busy={busy} < idle={idle} ({op:?})");
            assert!(idle >= c1, "idle={idle} < c1={c1} ({op:?})");
            assert!(c1 >= c6, "c1={c1} < c6={c6} ({op:?})");
            assert!(c6 >= 0.0, "c6={c6} negative ({op:?})");
        });
    }

    #[test]
    fn c0_residency_flag() {
        assert!(CoreActivity::Busy.is_c0());
        assert!(CoreActivity::IdleC0.is_c0());
        assert!(!CoreActivity::SleepC1.is_c0());
        assert!(!CoreActivity::SleepC6.is_c0());
        assert_eq!(CoreActivity::idle_in(CState::C6), CoreActivity::SleepC6);
    }
}
