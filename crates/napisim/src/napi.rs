//! The NAPI interrupt/polling mode state machine.
//!
//! One [`NapiContext`] exists per NIC queue (and therefore per core
//! with one-queue-per-core affinity). It tracks:
//!
//! * the current **mode** — interrupt vs polling — with a transition
//!   log (the signal NMAP consumes);
//! * per-mode packet counters (Fig 2's stacked bars, Algorithm 1's
//!   `pkt_poll` / `pkt_intr`);
//! * the softirq handoff conditions that wake **ksoftirqd**.
//!
//! Mode semantics follow §2.1/Fig 1: the first poll after an IRQ
//! processes packets *in interrupt mode*; if the queue is not drained,
//! NAPI stays active with the IRQ masked and subsequent iterations
//! (and everything ksoftirqd does) process packets *in polling mode*.
//! Draining the queue completes NAPI and returns to interrupt mode.

use crate::params::StackParams;
use simcore::{EventLog, SimDuration, SimTime};

/// The packet-processing mode of one NAPI context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NapiMode {
    /// IRQ enabled; packets processed in bounded batches per IRQ.
    Interrupt,
    /// IRQ masked; the softirq/ksoftirqd repeatedly polls the rings.
    Polling,
}

impl NapiMode {
    /// Static display label, for trace events that carry
    /// `&'static str` names.
    pub const fn label(self) -> &'static str {
        match self {
            NapiMode::Interrupt => "interrupt",
            NapiMode::Polling => "polling",
        }
    }
}

/// Who is running the poll loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcContext {
    /// The softirq handler (runs above threads).
    SoftIrq,
    /// The ksoftirqd kernel thread (scheduled like a normal thread).
    Ksoftirqd,
}

/// Which mode the descriptors of one poll batch are attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PollClass {
    /// Counted as interrupt-mode packets.
    Interrupt,
    /// Counted as polling-mode packets.
    Polling,
}

/// What the poll loop must do after a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PollVerdict {
    /// Keep polling (work remains, limits not hit).
    Continue,
    /// Rings drained: NAPI completed, IRQ must be re-enabled.
    Complete,
    /// Softirq limits exceeded: wake ksoftirqd and exit the softirq.
    Handoff,
}

/// Outcome of recording one poll batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollOutcome {
    /// Mode the batch was attributed to.
    pub class: PollClass,
    /// What to do next.
    pub verdict: PollVerdict,
}

/// Per-queue NAPI state machine.
///
/// # Examples
///
/// ```
/// use napisim::{NapiContext, NapiMode, PollClass, PollVerdict, ProcContext, StackParams};
/// use simcore::SimTime;
///
/// let params = StackParams::linux_defaults();
/// let mut napi = NapiContext::new(params);
/// napi.on_irq(SimTime::ZERO);
/// // First poll after the IRQ: interrupt mode; queue not drained.
/// let out = napi.record_poll(64, 0, false, false, ProcContext::SoftIrq, SimTime::from_micros(60));
/// assert_eq!(out.class, PollClass::Interrupt);
/// assert_eq!(out.verdict, PollVerdict::Continue);
/// assert_eq!(napi.mode(), NapiMode::Polling); // stayed active → polling
/// ```
#[derive(Debug, Clone)]
pub struct NapiContext {
    params: StackParams,
    mode: NapiMode,
    /// True while NAPI is scheduled (IRQ masked, poll loop active).
    active: bool,
    first_poll_pending: bool,
    softirq_started: Option<SimTime>,
    softirq_descriptors: usize,
    nonempty_iters: u32,
    ksoftirqd_running: bool,
    // --- counters ---
    total_intr_pkts: u64,
    total_poll_pkts: u64,
    window_intr_pkts: u64,
    window_poll_pkts: u64,
    mode_log: EventLog<NapiMode>,
    intr_pkt_log: EventLog<u64>,
    poll_pkt_log: EventLog<u64>,
}

impl NapiContext {
    /// Creates a context in interrupt mode.
    pub fn new(params: StackParams) -> Self {
        NapiContext {
            params,
            mode: NapiMode::Interrupt,
            active: false,
            first_poll_pending: false,
            softirq_started: None,
            softirq_descriptors: 0,
            nonempty_iters: 0,
            ksoftirqd_running: false,
            total_intr_pkts: 0,
            total_poll_pkts: 0,
            window_intr_pkts: 0,
            window_poll_pkts: 0,
            mode_log: EventLog::new(),
            intr_pkt_log: EventLog::new(),
            poll_pkt_log: EventLog::new(),
        }
    }

    /// The current mode.
    pub fn mode(&self) -> NapiMode {
        self.mode
    }

    /// True while the poll loop owns the queue (IRQ masked).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// True if ksoftirqd currently owns the poll loop.
    pub fn ksoftirqd_running(&self) -> bool {
        self.ksoftirqd_running
    }

    /// The stack parameters.
    pub fn params(&self) -> &StackParams {
        &self.params
    }

    /// An IRQ was delivered: NAPI is scheduled and the softirq will
    /// start polling. The caller masks the NIC IRQ.
    ///
    /// # Panics
    ///
    /// Panics if NAPI is already active (the IRQ should have been
    /// masked).
    pub fn on_irq(&mut self, now: SimTime) {
        assert!(!self.active, "IRQ delivered while NAPI active");
        self.active = true;
        self.first_poll_pending = true;
        self.softirq_started = Some(now);
        self.softirq_descriptors = 0;
        self.nonempty_iters = 0;
    }

    fn set_mode(&mut self, mode: NapiMode, now: SimTime) {
        if self.mode != mode {
            self.mode = mode;
            self.mode_log.push(now, mode);
        }
    }

    /// Records a completed poll batch of `rx` Rx descriptors and `tx`
    /// Tx cleans finishing at `now`. `drained` means the rings are
    /// now empty (the poll returned less than the full weight).
    /// `resched` signals that a runnable thread is waiting on this
    /// core (§2.1 handoff condition 3).
    ///
    /// Returns the mode attribution and the next action. When the
    /// verdict is [`PollVerdict::Handoff`], the caller wakes
    /// ksoftirqd and calls
    /// [`ksoftirqd_takeover`](Self::ksoftirqd_takeover).
    ///
    /// # Panics
    ///
    /// Panics if NAPI is not active.
    pub fn record_poll(
        &mut self,
        rx: usize,
        tx: usize,
        drained: bool,
        resched: bool,
        ctx: ProcContext,
        now: SimTime,
    ) -> PollOutcome {
        assert!(self.active, "poll without active NAPI");
        let class = if self.first_poll_pending {
            PollClass::Interrupt
        } else {
            PollClass::Polling
        };
        self.first_poll_pending = false;
        let descriptors = rx + tx;
        match class {
            PollClass::Interrupt => {
                self.total_intr_pkts += rx as u64;
                self.window_intr_pkts += rx as u64;
                if rx > 0 {
                    self.intr_pkt_log.push(now, rx as u64);
                }
            }
            PollClass::Polling => {
                self.total_poll_pkts += rx as u64;
                self.window_poll_pkts += rx as u64;
                if rx > 0 {
                    self.poll_pkt_log.push(now, rx as u64);
                }
            }
        }

        if drained {
            // NAPI complete: back to interrupt mode.
            self.active = false;
            self.ksoftirqd_running = false;
            self.softirq_started = None;
            self.set_mode(NapiMode::Interrupt, now);
            return PollOutcome {
                class,
                verdict: PollVerdict::Complete,
            };
        }

        // Work remains → we are (now) in polling mode.
        self.set_mode(NapiMode::Polling, now);
        self.nonempty_iters += 1;

        let verdict = match ctx {
            ProcContext::SoftIrq => {
                self.softirq_descriptors += descriptors;
                let elapsed = self
                    .softirq_started
                    .map(|s| now.saturating_since(s))
                    .unwrap_or(SimDuration::ZERO);
                let over_budget = self.softirq_descriptors >= self.params.softirq_budget;
                let over_time = elapsed >= self.params.handoff_time();
                let over_iters = self.nonempty_iters >= self.params.handoff_nonempty_iters;
                let resched_yield =
                    resched && self.nonempty_iters >= self.params.handoff_resched_iters;
                if over_budget || over_time || over_iters || resched_yield {
                    PollVerdict::Handoff
                } else {
                    PollVerdict::Continue
                }
            }
            // ksoftirqd is preempted by the scheduler, not by NAPI
            // limits; it polls until the rings drain.
            ProcContext::Ksoftirqd => PollVerdict::Continue,
        };
        PollOutcome { class, verdict }
    }

    /// ksoftirqd takes over the poll loop after a softirq handoff.
    ///
    /// # Panics
    ///
    /// Panics if NAPI is not active.
    pub fn ksoftirqd_takeover(&mut self) {
        assert!(self.active, "takeover without active NAPI");
        self.ksoftirqd_running = true;
        self.softirq_started = None;
        self.softirq_descriptors = 0;
        self.nonempty_iters = 0;
    }

    /// Cumulative packets processed in interrupt mode.
    pub fn total_interrupt_packets(&self) -> u64 {
        self.total_intr_pkts
    }

    /// Cumulative packets processed in polling mode.
    pub fn total_polling_packets(&self) -> u64 {
        self.total_poll_pkts
    }

    /// Returns and resets the per-window counters `(intr, poll)` —
    /// Algorithm 1 lines 9-12.
    pub fn take_window_counts(&mut self) -> (u64, u64) {
        let counts = (self.window_intr_pkts, self.window_poll_pkts);
        self.window_intr_pkts = 0;
        self.window_poll_pkts = 0;
        counts
    }

    /// Log of mode transitions `(time, new mode)`.
    pub fn mode_log(&self) -> &EventLog<NapiMode> {
        &self.mode_log
    }

    /// Log of interrupt-mode packet batches `(time, count)`.
    pub fn interrupt_packet_log(&self) -> &EventLog<u64> {
        &self.intr_pkt_log
    }

    /// Log of polling-mode packet batches `(time, count)`.
    pub fn polling_packet_log(&self) -> &EventLog<u64> {
        &self.poll_pkt_log
    }

    /// Replays this context's logs into `buf` for core `core`:
    /// mode residency spans on the `napi-mode` track (a context is in
    /// interrupt mode from t=0 until the first logged transition) and
    /// per-batch instants on the `poll` track (arg = packet count).
    pub fn trace_into(&self, core: u32, end: SimTime, buf: &mut simcore::TraceBuffer) {
        use simcore::TraceCategory;
        if !buf.is_recording() {
            return;
        }
        let transitions = self.mode_log.entries();
        let mut span_start = SimTime::ZERO;
        let mut mode = NapiMode::Interrupt;
        for &(t, next) in transitions {
            buf.begin(span_start, TraceCategory::NapiMode, core, mode.label(), 0);
            buf.end(t, TraceCategory::NapiMode, core, mode.label(), 0);
            span_start = t;
            mode = next;
        }
        if span_start < end || transitions.is_empty() {
            buf.begin(span_start, TraceCategory::NapiMode, core, mode.label(), 0);
            buf.end(end, TraceCategory::NapiMode, core, mode.label(), 0);
        }
        for &(t, n) in self.intr_pkt_log.entries() {
            buf.instant(t, TraceCategory::Poll, core, "intr-batch", n as i64);
        }
        for &(t, n) in self.poll_pkt_log.entries() {
            buf.instant(t, TraceCategory::Poll, core, "poll-batch", n as i64);
        }
    }

    /// Accumulates this context's packet totals into the metrics
    /// registry (bumped, so per-core contexts sum naturally).
    pub fn record_metrics(&self, m: &mut simcore::MetricsRegistry) {
        if !simcore::MetricsRegistry::ENABLED {
            return;
        }
        m.bump("napi.intr_packets", self.total_intr_pkts);
        m.bump("napi.poll_packets", self.total_poll_pkts);
        m.bump("napi.mode_transitions", self.mode_log.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NapiContext {
        NapiContext::new(StackParams::linux_defaults())
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn single_batch_drain_stays_interrupt_mode() {
        let mut n = ctx();
        n.on_irq(t(0));
        let out = n.record_poll(10, 0, true, false, ProcContext::SoftIrq, t(15));
        assert_eq!(out.class, PollClass::Interrupt);
        assert_eq!(out.verdict, PollVerdict::Complete);
        assert_eq!(n.mode(), NapiMode::Interrupt);
        assert_eq!(n.total_interrupt_packets(), 10);
        assert_eq!(n.total_polling_packets(), 0);
        assert!(n.mode_log().is_empty(), "no transition happened");
    }

    #[test]
    fn sustained_work_enters_polling_mode() {
        let mut n = ctx();
        n.on_irq(t(0));
        let o1 = n.record_poll(64, 0, false, false, ProcContext::SoftIrq, t(60));
        assert_eq!(o1.class, PollClass::Interrupt);
        assert_eq!(n.mode(), NapiMode::Polling);
        let o2 = n.record_poll(64, 0, false, false, ProcContext::SoftIrq, t(120));
        assert_eq!(o2.class, PollClass::Polling);
        assert_eq!(n.total_interrupt_packets(), 64);
        assert_eq!(n.total_polling_packets(), 64);
        // Draining returns to interrupt mode with a logged transition.
        let o3 = n.record_poll(30, 0, true, false, ProcContext::SoftIrq, t(180));
        assert_eq!(o3.verdict, PollVerdict::Complete);
        assert_eq!(n.mode(), NapiMode::Interrupt);
        let modes: Vec<NapiMode> = n.mode_log().iter().map(|&(_, m)| m).collect();
        assert_eq!(modes, vec![NapiMode::Polling, NapiMode::Interrupt]);
    }

    #[test]
    fn budget_exhaustion_hands_off() {
        let mut n = ctx();
        n.on_irq(t(0));
        // 64-descriptor batches: budget 300 → handoff on the 5th batch
        // (320 ≥ 300).
        let mut verdicts = Vec::new();
        for i in 0..5 {
            let out = n.record_poll(64, 0, false, false, ProcContext::SoftIrq, t(60 * (i + 1)));
            verdicts.push(out.verdict);
        }
        assert_eq!(verdicts[3], PollVerdict::Continue);
        assert_eq!(verdicts[4], PollVerdict::Handoff);
    }

    #[test]
    fn nonempty_iteration_limit_hands_off() {
        let mut n = NapiContext::new(StackParams {
            softirq_budget: 10_000, // disable the budget trigger
            ..StackParams::linux_defaults()
        });
        n.on_irq(t(0));
        for i in 0..9 {
            let out = n.record_poll(8, 0, false, false, ProcContext::SoftIrq, t(10 * (i + 1)));
            assert_eq!(out.verdict, PollVerdict::Continue, "iter {i}");
        }
        let out = n.record_poll(8, 0, false, false, ProcContext::SoftIrq, t(100));
        assert_eq!(
            out.verdict,
            PollVerdict::Handoff,
            "10th non-empty iteration"
        );
    }

    #[test]
    fn time_limit_hands_off() {
        let mut n = NapiContext::new(StackParams {
            softirq_budget: 10_000,
            handoff_nonempty_iters: 10_000,
            ..StackParams::linux_defaults()
        });
        n.on_irq(t(0));
        let out = n.record_poll(8, 0, false, false, ProcContext::SoftIrq, t(7_999));
        assert_eq!(out.verdict, PollVerdict::Continue);
        // 8 ms (2 jiffies at 250 Hz) elapsed → handoff.
        let out = n.record_poll(8, 0, false, false, ProcContext::SoftIrq, t(8_000));
        assert_eq!(out.verdict, PollVerdict::Handoff);
    }

    #[test]
    fn ksoftirqd_polls_without_limits() {
        let mut n = ctx();
        n.on_irq(t(0));
        // Softirq exhausts its budget and hands off.
        for i in 0..5 {
            n.record_poll(64, 0, false, false, ProcContext::SoftIrq, t(60 * (i + 1)));
        }
        n.ksoftirqd_takeover();
        assert!(n.ksoftirqd_running());
        // ksoftirqd can poll far past any softirq limit.
        for i in 0..50 {
            let out = n.record_poll(64, 0, false, false, ProcContext::Ksoftirqd, t(400 + 60 * i));
            assert_eq!(out.verdict, PollVerdict::Continue);
            assert_eq!(out.class, PollClass::Polling);
        }
        let out = n.record_poll(5, 0, true, false, ProcContext::Ksoftirqd, t(5_000));
        assert_eq!(out.verdict, PollVerdict::Complete);
        assert!(!n.ksoftirqd_running());
        assert!(!n.is_active());
    }

    #[test]
    fn window_counters_reset_on_take() {
        let mut n = ctx();
        n.on_irq(t(0));
        n.record_poll(64, 0, false, false, ProcContext::SoftIrq, t(60));
        n.record_poll(40, 0, true, false, ProcContext::SoftIrq, t(120));
        assert_eq!(n.take_window_counts(), (64, 40));
        assert_eq!(n.take_window_counts(), (0, 0));
        // Totals are unaffected.
        assert_eq!(n.total_interrupt_packets(), 64);
        assert_eq!(n.total_polling_packets(), 40);
    }

    #[test]
    fn tx_cleans_count_toward_budget_but_not_packet_counters() {
        let mut n = ctx();
        n.on_irq(t(0));
        let _ = n.record_poll(0, 64, false, false, ProcContext::SoftIrq, t(10));
        assert_eq!(n.total_interrupt_packets(), 0);
        assert_eq!(n.total_polling_packets(), 0);
        // But 5 such batches blow the 300-descriptor budget.
        for _ in 0..3 {
            assert_eq!(
                n.record_poll(0, 64, false, false, ProcContext::SoftIrq, t(20))
                    .verdict,
                PollVerdict::Continue
            );
        }
        assert_eq!(
            n.record_poll(0, 64, false, false, ProcContext::SoftIrq, t(30))
                .verdict,
            PollVerdict::Handoff
        );
    }

    #[test]
    fn resched_flag_hands_off_early() {
        let mut n = ctx();
        n.on_irq(t(0));
        // First non-empty iteration with resched pending: not yet.
        let o1 = n.record_poll(8, 0, false, true, ProcContext::SoftIrq, t(10));
        assert_eq!(o1.verdict, PollVerdict::Continue);
        // Second non-empty iteration with resched → yield to ksoftirqd.
        let o2 = n.record_poll(8, 0, false, true, ProcContext::SoftIrq, t(20));
        assert_eq!(o2.verdict, PollVerdict::Handoff);
    }

    #[test]
    fn no_resched_no_early_handoff() {
        let mut n = ctx();
        n.on_irq(t(0));
        for i in 0..4 {
            let out = n.record_poll(8, 0, false, false, ProcContext::SoftIrq, t(10 * (i + 1)));
            assert_eq!(out.verdict, PollVerdict::Continue, "iter {i}");
        }
    }

    #[test]
    #[should_panic(expected = "IRQ delivered while NAPI active")]
    fn irq_during_active_napi_panics() {
        let mut n = ctx();
        n.on_irq(t(0));
        n.on_irq(t(1));
    }

    #[test]
    #[should_panic(expected = "poll without active NAPI")]
    fn poll_without_irq_panics() {
        let mut n = ctx();
        n.record_poll(1, 0, true, false, ProcContext::SoftIrq, t(0));
    }

    #[test]
    fn packet_logs_record_batches() {
        let mut n = ctx();
        n.on_irq(t(0));
        n.record_poll(64, 0, false, false, ProcContext::SoftIrq, t(50));
        n.record_poll(32, 0, true, false, ProcContext::SoftIrq, t(100));
        assert_eq!(n.interrupt_packet_log().len(), 1);
        assert_eq!(n.polling_packet_log().len(), 1);
        assert_eq!(n.interrupt_packet_log().entries()[0].1, 64);
        assert_eq!(n.polling_packet_log().entries()[0].1, 32);
    }
}
