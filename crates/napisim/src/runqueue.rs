//! A per-core round-robin run queue for thread-class work.
//!
//! Models the scheduling relationship §2.1 relies on: the softirq
//! handler outranks threads, while **ksoftirqd runs at the same
//! priority as application threads** — that equality is the whole
//! point of ksoftirqd (it prevents softirq work from starving the
//! application). We model the thread class as round-robin with a
//! fixed quantum, which captures the interference NMAP reacts to
//! without simulating full CFS.

use std::collections::VecDeque;

/// A schedulable thread on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskId {
    /// The per-core ksoftirqd kernel thread.
    Ksoftirqd,
    /// An application worker thread (index within the core).
    App(usize),
}

/// Round-robin run queue (thread class only; hardirq/softirq preempt
/// externally).
///
/// # Examples
///
/// ```
/// use napisim::{RunQueue, TaskId};
/// let mut rq = RunQueue::new();
/// rq.make_runnable(TaskId::App(0));
/// rq.make_runnable(TaskId::Ksoftirqd);
/// assert_eq!(rq.pick_next(), Some(TaskId::App(0)));
/// rq.requeue_current(); // quantum expired
/// assert_eq!(rq.pick_next(), Some(TaskId::Ksoftirqd));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    queue: VecDeque<TaskId>,
    current: Option<TaskId>,
}

impl RunQueue {
    /// Creates an empty run queue.
    pub fn new() -> Self {
        RunQueue::default()
    }

    /// Adds a task to the tail if not already queued or running.
    /// Returns true if the task was added.
    pub fn make_runnable(&mut self, task: TaskId) -> bool {
        if self.current == Some(task) || self.queue.contains(&task) {
            return false;
        }
        self.queue.push_back(task);
        true
    }

    /// Picks the next task to run (moves it to `current`). Returns
    /// `None` if nothing is runnable. The previous current task, if
    /// any, must have been handled first (requeued or blocked).
    pub fn pick_next(&mut self) -> Option<TaskId> {
        debug_assert!(
            self.current.is_none(),
            "pick_next with a task still current"
        );
        self.current = self.queue.pop_front();
        self.current
    }

    /// The task currently on the CPU (thread class).
    pub fn current(&self) -> Option<TaskId> {
        self.current
    }

    /// Quantum expiry: the current task goes to the tail.
    ///
    /// # Panics
    ///
    /// Panics if no task is current.
    pub fn requeue_current(&mut self) {
        let task = self.current.take().expect("no current task to requeue");
        self.queue.push_back(task);
    }

    /// The current task blocks (sleeps); it leaves the queue.
    ///
    /// # Panics
    ///
    /// Panics if no task is current.
    pub fn block_current(&mut self) {
        self.current.take().expect("no current task to block");
    }

    /// True if any task is runnable or running.
    pub fn has_work(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty()
    }

    /// True if `task` is queued or current.
    pub fn contains(&self, task: TaskId) -> bool {
        self.current == Some(task) || self.queue.contains(&task)
    }

    /// Number of runnable tasks including the current one.
    pub fn len(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }

    /// True if no tasks at all.
    pub fn is_empty(&self) -> bool {
        !self.has_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_order() {
        let mut rq = RunQueue::new();
        rq.make_runnable(TaskId::App(0));
        rq.make_runnable(TaskId::App(1));
        rq.make_runnable(TaskId::Ksoftirqd);
        assert_eq!(rq.pick_next(), Some(TaskId::App(0)));
        rq.requeue_current();
        assert_eq!(rq.pick_next(), Some(TaskId::App(1)));
        rq.requeue_current();
        assert_eq!(rq.pick_next(), Some(TaskId::Ksoftirqd));
        rq.requeue_current();
        assert_eq!(rq.pick_next(), Some(TaskId::App(0)), "wrapped around");
    }

    #[test]
    fn no_duplicate_enqueue() {
        let mut rq = RunQueue::new();
        assert!(rq.make_runnable(TaskId::Ksoftirqd));
        assert!(!rq.make_runnable(TaskId::Ksoftirqd));
        assert_eq!(rq.len(), 1);
        rq.pick_next();
        // Still can't double-add while running.
        assert!(!rq.make_runnable(TaskId::Ksoftirqd));
    }

    #[test]
    fn block_removes_task() {
        let mut rq = RunQueue::new();
        rq.make_runnable(TaskId::App(0));
        rq.pick_next();
        rq.block_current();
        assert!(!rq.has_work());
        assert_eq!(rq.pick_next(), None);
    }

    #[test]
    fn contains_sees_current_and_queued() {
        let mut rq = RunQueue::new();
        rq.make_runnable(TaskId::App(0));
        rq.make_runnable(TaskId::App(1));
        rq.pick_next();
        assert!(rq.contains(TaskId::App(0)));
        assert!(rq.contains(TaskId::App(1)));
        assert!(!rq.contains(TaskId::Ksoftirqd));
    }

    #[test]
    #[should_panic(expected = "no current task")]
    fn requeue_without_current_panics() {
        let mut rq = RunQueue::new();
        rq.requeue_current();
    }
}
