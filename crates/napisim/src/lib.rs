//! # napisim — the Linux NAPI packet-processing model
//!
//! NMAP's input signal is the behaviour of NAPI (New API, §2.1 of the
//! paper): the kernel's transition between **interrupt mode** (an IRQ
//! kicks a softirq that drains a bounded batch) and **polling mode**
//! (the softirq keeps polling with the IRQ masked), plus the
//! conditions under which packet processing migrates to the
//! **ksoftirqd** thread:
//!
//! 1. the softirq handler overuses scheduler ticks (2 jiffies);
//! 2. it fails to empty the Rx/Tx queues for too many iterations;
//! 3. the per-invocation budget is exhausted / reschedule requested.
//!
//! This crate implements those state machines as pure, heavily tested
//! components; the server glue in `appsim` drives them from simulator
//! events.

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod napi;
pub mod params;
pub mod runqueue;

pub use napi::{NapiContext, NapiMode, PollClass, PollOutcome, PollVerdict, ProcContext};
pub use params::StackParams;
pub use runqueue::{RunQueue, TaskId};
