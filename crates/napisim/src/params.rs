//! Network-stack parameters (Linux defaults, §2.1).

use simcore::SimDuration;

/// Tunables of the simulated kernel network stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackParams {
    /// NAPI weight: max descriptors per `poll()` call (Linux: 64).
    pub napi_weight: usize,
    /// netdev budget: max descriptors per softirq invocation before
    /// handoff to ksoftirqd (Linux: 300).
    pub softirq_budget: usize,
    /// Scheduler tick length (Linux 250 Hz → 4 ms).
    pub jiffy: SimDuration,
    /// Softirq hands off to ksoftirqd after this many jiffies of
    /// continuous processing (Linux: 2).
    pub handoff_jiffies: u32,
    /// ... or after this many consecutive non-empty poll iterations
    /// (paper §2.1: "more than ten iterations").
    pub handoff_nonempty_iters: u32,
    /// ... or, when a reschedule is pending (runnable thread waiting —
    /// paper §2.1 condition 3, the IPI/resched-flag case), after this
    /// many non-empty iterations.
    pub handoff_resched_iters: u32,
    /// CPU cycles for the hardirq handler (interrupt entry, ack, NAPI
    /// schedule).
    pub hardirq_cycles: u64,
    /// CPU cycles of softirq work per Rx descriptor (driver +
    /// netif_receive_skb + IP/TCP to the socket queue).
    pub rx_pkt_cycles: u64,
    /// CPU cycles to clean one Tx completion descriptor.
    pub tx_clean_cycles: u64,
    /// CPU cycles of fixed overhead per poll iteration.
    pub poll_overhead_cycles: u64,
    /// Round-robin quantum for ksoftirqd and application threads.
    pub sched_quantum: SimDuration,
}

impl Default for StackParams {
    fn default() -> Self {
        Self::linux_defaults()
    }
}

impl StackParams {
    /// Linux defaults used throughout the evaluation.
    pub fn linux_defaults() -> Self {
        StackParams {
            napi_weight: 64,
            softirq_budget: 300,
            jiffy: SimDuration::from_millis(4),
            handoff_jiffies: 2,
            handoff_nonempty_iters: 10,
            handoff_resched_iters: 2,
            hardirq_cycles: 1_500,
            rx_pkt_cycles: 4_000,
            tx_clean_cycles: 400,
            poll_overhead_cycles: 600,
            sched_quantum: SimDuration::from_millis(1),
        }
    }

    /// The softirq time limit before ksoftirqd handoff.
    pub fn handoff_time(&self) -> SimDuration {
        self.jiffy * self.handoff_jiffies as u64
    }

    /// Cycles to process one poll batch of `rx` Rx descriptors and
    /// `tx` Tx completions.
    pub fn poll_batch_cycles(&self, rx: usize, tx: usize) -> u64 {
        self.poll_overhead_cycles
            + self.rx_pkt_cycles * rx as u64
            + self.tx_clean_cycles * tx as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_defaults_match_paper() {
        let p = StackParams::linux_defaults();
        assert_eq!(p.napi_weight, 64);
        assert_eq!(p.softirq_budget, 300);
        assert_eq!(p.jiffy, SimDuration::from_millis(4));
        assert_eq!(p.handoff_time(), SimDuration::from_millis(8)); // "8ms in 250Hz"
        assert_eq!(p.handoff_nonempty_iters, 10);
    }

    #[test]
    fn batch_cycles_scale_with_work() {
        let p = StackParams::linux_defaults();
        let empty = p.poll_batch_cycles(0, 0);
        let some = p.poll_batch_cycles(64, 10);
        assert_eq!(empty, p.poll_overhead_cycles);
        assert_eq!(
            some,
            p.poll_overhead_cycles + 64 * p.rx_pkt_cycles + 10 * p.tx_clean_cycles
        );
    }
}
