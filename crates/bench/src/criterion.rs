//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the bench targets
//! can't link the real criterion. This module re-implements the small
//! API surface the suite uses — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with
//! wall-clock timing and a plain-text report. Numbers are indicative,
//! not statistically rigorous; the point is that `cargo bench` keeps
//! compiling and exercising every figure/table cell.
//!
//! A positional command-line argument acts as a substring filter on
//! bench names, mirroring `cargo bench <filter>`.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

pub use std::hint::black_box;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One benchmark's timing summary, as serialized into the machine-
/// readable report ([`write_json_report`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchStat {
    /// Full bench name (`group/name`).
    pub name: String,
    /// Mean wall-clock time per iteration.
    pub mean_ns: u64,
    /// Fastest iteration — the noise-robust statistic the regression
    /// gate compares, since scheduler interference only ever adds time.
    pub min_ns: u64,
    /// Median iteration time.
    pub p50_ns: u64,
    /// 99th-percentile iteration time (≈ max at small sample counts).
    pub p99_ns: u64,
    /// Number of timed iterations.
    pub samples: u64,
}

/// Stats from every bench run in this process, in execution order.
/// [`criterion_main!`] flushes them to disk on exit.
static RESULTS: Mutex<Vec<BenchStat>> = Mutex::new(Vec::new());

/// Times closures handed to [`iter`](Bencher::iter).
pub struct Bencher {
    samples: u64,
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs the routine once as warm-up, then `samples` timed times.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// The benchmark driver: configuration plus name filtering.
pub struct Criterion {
    sample_size: u64,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards its trailing args; the first
        // non-flag argument is the usual name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        b.times.sort();
        let total: Duration = b.times.iter().sum();
        let n = b.times.len().max(1);
        let mean = total / n as u32;
        let median = b.times.get(n / 2).copied().unwrap_or_default();
        let p99 = b
            .times
            .get((n * 99 / 100).min(n - 1))
            .copied()
            .unwrap_or_default();
        let min = b.times.first().copied().unwrap_or_default();
        println!(
            "bench {name:<55} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({n} samples)"
        );
        RESULTS
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(BenchStat {
                name: name.to_string(),
                mean_ns: mean.as_nanos() as u64,
                min_ns: min.as_nanos() as u64,
                p50_ns: median.as_nanos() as u64,
                p99_ns: p99.as_nanos() as u64,
                samples: b.times.len() as u64,
            });
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        self.run_one(&name, f);
    }

    /// Opens a named group; benches inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }
}

/// A named collection of related benches.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.run_one(&full, f);
    }

    /// Ends the group (report lines are printed eagerly).
    pub fn finish(self) {}
}

/// Where the JSON report lands: `$BENCH_JSON` if set, else
/// `BENCH_repro.json` in the working directory.
pub fn json_report_path() -> PathBuf {
    std::env::var_os("BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_repro.json"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders stats as the `BENCH_repro.json` document: a single
/// `benchmarks` array of `{name, mean_ns, min_ns, p50_ns, p99_ns,
/// samples}` objects, sorted by name for stable diffs.
pub fn render_json(stats: &[BenchStat]) -> String {
    let mut sorted: Vec<&BenchStat> = stats.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("{\"benchmarks\":[\n");
    for (i, s) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"samples\":{}}}",
            json_escape(&s.name),
            s.mean_ns,
            s.min_ns,
            s.p50_ns,
            s.p99_ns,
            s.samples
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a document previously produced by [`render_json`]. Tolerant
/// of unknown content: anything that doesn't scan as our own format
/// yields an empty vector (the writer then just starts fresh).
pub fn parse_json(doc: &str) -> Vec<BenchStat> {
    let mut out = Vec::new();
    for chunk in doc.split("{\"name\":\"").skip(1) {
        // Scan the name respecting backslash escapes (`\"`, `\\`).
        let mut name = String::new();
        let mut closed = false;
        let mut chars = chunk.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => name.extend(chars.next()),
                '"' => {
                    closed = true;
                    break;
                }
                c => name.push(c),
            }
        }
        if !closed {
            continue;
        }
        let field = |key: &str| -> Option<u64> {
            let pat = format!("\"{key}\":");
            let rest = &chunk[chunk.find(&pat)? + pat.len()..];
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        };
        let (Some(mean_ns), Some(p50_ns), Some(p99_ns), Some(samples)) = (
            field("mean_ns"),
            field("p50_ns"),
            field("p99_ns"),
            field("samples"),
        ) else {
            continue;
        };
        // Reports written before the gate existed carry no `min_ns`;
        // fall back to the mean so old files still merge.
        let min_ns = field("min_ns").unwrap_or(mean_ns);
        out.push(BenchStat {
            name,
            mean_ns,
            min_ns,
            p50_ns,
            p99_ns,
            samples,
        });
    }
    out
}

/// Writes (or updates) the JSON report at [`json_report_path`] with
/// every stat recorded in this process. Entries from earlier bench
/// binaries sharing the file are kept; same-name entries are replaced,
/// so `cargo bench` across several `[[bench]]` targets accumulates one
/// merged `BENCH_repro.json`.
pub fn write_json_report() {
    let stats = RESULTS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if stats.is_empty() {
        return;
    }
    let path = json_report_path();
    let mut merged = std::fs::read_to_string(&path)
        .map(|doc| parse_json(&doc))
        .unwrap_or_default();
    merged.retain(|old| !stats.iter().any(|s| s.name == old.name));
    merged.extend(stats);
    if let Err(e) = std::fs::write(&path, render_json(&merged)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("bench report written to {}", path.display());
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::criterion::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::criterion::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
/// On exit the collected stats are flushed to `BENCH_repro.json`
/// (see [`criterion::write_json_report`](crate::criterion::write_json_report)).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::criterion::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut runs = 0u64;
        c.bench_function("unit/counts", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("wanted".into()),
        };
        let mut ran = false;
        c.bench_function("other/name", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("the/wanted/one", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn run_one_records_stats_for_the_json_report() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        let name = "unit/json-stat-recording";
        c.bench_function(name, |b| b.iter(|| black_box(1 + 1)));
        let results = RESULTS.lock().unwrap_or_else(PoisonError::into_inner);
        let stat = results
            .iter()
            .find(|s| s.name == name)
            .expect("stat recorded");
        assert_eq!(stat.samples, 2);
        assert!(stat.p99_ns >= stat.p50_ns);
        assert!(stat.min_ns <= stat.mean_ns);
    }

    #[test]
    fn json_round_trips_and_merges() {
        let a = BenchStat {
            name: "grp/a".into(),
            mean_ns: 120,
            min_ns: 100,
            p50_ns: 110,
            p99_ns: 300,
            samples: 10,
        };
        let b = BenchStat {
            name: "grp/\"quoted\"".into(),
            mean_ns: 7,
            min_ns: 5,
            p50_ns: 6,
            p99_ns: 9,
            samples: 3,
        };
        let doc = render_json(&[b.clone(), a.clone()]);
        assert!(doc.starts_with("{\"benchmarks\":["));
        let parsed = parse_json(&doc);
        // render_json sorts by name; '"' < 'a'.
        assert_eq!(parsed, vec![b, a]);
        // Garbage input degrades to empty rather than panicking.
        assert!(parse_json("not json at all").is_empty());
        assert!(parse_json("{\"benchmarks\":[]}").is_empty());
        // Pre-`min_ns` reports fall back to the mean.
        let legacy = parse_json(
            "{\"benchmarks\":[{\"name\":\"old/one\",\"mean_ns\":50,\
             \"p50_ns\":49,\"p99_ns\":60,\"samples\":4}]}",
        );
        assert_eq!((legacy.len(), legacy[0].min_ns), (1, 50));
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("grp/inner".into()),
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("inner", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }
}
