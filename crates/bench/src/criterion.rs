//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the bench targets
//! can't link the real criterion. This module re-implements the small
//! API surface the suite uses — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with
//! wall-clock timing and a plain-text report. Numbers are indicative,
//! not statistically rigorous; the point is that `cargo bench` keeps
//! compiling and exercising every figure/table cell.
//!
//! A positional command-line argument acts as a substring filter on
//! bench names, mirroring `cargo bench <filter>`.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times closures handed to [`iter`](Bencher::iter).
pub struct Bencher {
    samples: u64,
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs the routine once as warm-up, then `samples` timed times.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// The benchmark driver: configuration plus name filtering.
pub struct Criterion {
    sample_size: u64,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards its trailing args; the first
        // non-flag argument is the usual name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        b.times.sort();
        let total: Duration = b.times.iter().sum();
        let n = b.times.len().max(1);
        let mean = total / n as u32;
        let median = b.times.get(n / 2).copied().unwrap_or_default();
        let min = b.times.first().copied().unwrap_or_default();
        println!(
            "bench {name:<55} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({n} samples)"
        );
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        self.run_one(&name, f);
    }

    /// Opens a named group; benches inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }
}

/// A named collection of related benches.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.run_one(&full, f);
    }

    /// Ends the group (report lines are printed eagerly).
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::criterion::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::criterion::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut runs = 0u64;
        c.bench_function("unit/counts", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("wanted".into()),
        };
        let mut ran = false;
        c.bench_function("other/name", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("the/wanted/one", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("grp/inner".into()),
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("inner", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }
}
