//! Ablation benches: the design-choice sensitivity cells DESIGN.md
//! calls out — NI_TH, monitor timer, DVFS scope, re-transition cost.

use cpusim::DvfsScope;
use experiments::{GovernorKind, RunConfig, Scale};
use nmap::NmapConfig;
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::nmap_cfg;
use nmap_bench::{criterion_group, criterion_main};
use simcore::SimDuration;
use workload::{AppKind, LoadLevel, LoadSpec};

fn short(cfg: RunConfig) -> experiments::RunResult {
    experiments::run(RunConfig {
        warmup: SimDuration::from_millis(20),
        duration: SimDuration::from_millis(50),
        ..cfg
    })
}

fn ni_threshold(c: &mut Criterion) {
    let base = nmap_cfg(AppKind::Memcached);
    let mut group = c.benchmark_group("ablation_ni_threshold");
    for factor in [1u64, 16] {
        let cfg = NmapConfig::new(base.ni_threshold * factor, base.cu_threshold);
        group.bench_function(format!("ni_x{factor}"), |b| {
            b.iter(|| {
                black_box(short(RunConfig::new(
                    AppKind::Memcached,
                    LoadSpec::preset(AppKind::Memcached, LoadLevel::High),
                    GovernorKind::Nmap(cfg),
                    Scale::Quick,
                )))
            })
        });
    }
    group.finish();
}

fn timer_interval(c: &mut Criterion) {
    let base = nmap_cfg(AppKind::Memcached);
    let mut group = c.benchmark_group("ablation_timer");
    for ms in [1u64, 100] {
        let cfg = base.with_timer(SimDuration::from_millis(ms));
        group.bench_function(format!("timer_{ms}ms"), |b| {
            b.iter(|| {
                black_box(short(RunConfig::new(
                    AppKind::Memcached,
                    LoadSpec::preset(AppKind::Memcached, LoadLevel::Medium),
                    GovernorKind::Nmap(cfg),
                    Scale::Quick,
                )))
            })
        });
    }
    group.finish();
}

fn dvfs_scope(c: &mut Criterion) {
    let cfg = nmap_cfg(AppKind::Memcached);
    let mut group = c.benchmark_group("ablation_scope");
    for (name, scope) in [
        ("per_core", DvfsScope::PerCore),
        ("chip_wide", DvfsScope::ChipWide),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(short(
                    RunConfig::new(
                        AppKind::Memcached,
                        LoadSpec::preset(AppKind::Memcached, LoadLevel::Medium),
                        GovernorKind::Nmap(cfg),
                        Scale::Quick,
                    )
                    .with_scope(scope),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ni_threshold, timer_interval, dvfs_scope
);
criterion_main!(ablations);
