//! Overload-control benches.
//!
//! The headline question: what does the admission gate cost when it
//! never fires? `overload_cell` times the same calm two-server fleet
//! twice in one binary — once with unbounded app queues, once with
//! the default sojourn admission gate (plus the rest of the
//! overload-control stack) — so the on/off ratio is one bench run and
//! machine speed cancels out of the quotient. On a calm fleet the
//! gate admits everything, so the ratio is pure bookkeeping overhead;
//! the regression gate treats anything past a few percent as an
//! advisory warning.
//!
//! ```text
//! cargo bench -p nmap-bench --bench overload
//! cargo bench -p nmap-bench --bench overload --features audit,obs,fault
//! ```

use cluster::{FleetConfig, GovernorKind};
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::nmap_cfg;
use nmap_bench::{criterion_group, criterion_main};
use simcore::fault::FaultInjector;
use simcore::SimDuration;
use workload::AppKind;

fn base_cfg() -> FleetConfig {
    FleetConfig::new(
        2,
        AppKind::Memcached,
        20_000.0,
        GovernorKind::Nmap(nmap_cfg(AppKind::Memcached)),
    )
    .with_window(SimDuration::from_millis(20), SimDuration::from_millis(60))
    .with_seed(13)
}

/// The calm fleet cell, admission (and the rest of the control
/// stack) off vs on. The on/off ratio feeds the advisory overhead
/// check in `scripts/bench_gate.py`.
fn overload_cell(c: &mut Criterion) {
    let suffix = if FaultInjector::ENABLED {
        "fault_on"
    } else {
        "fault_off"
    };
    c.bench_function(format!("overload_cell/admission_off_{suffix}"), |b| {
        b.iter(|| black_box(cluster::run_fleet(base_cfg())))
    });
    c.bench_function(format!("overload_cell/admission_on_{suffix}"), |b| {
        b.iter(|| black_box(cluster::run_fleet(base_cfg().with_overload_control())))
    });
}

criterion_group!(benches, overload_cell);
criterion_main!(benches);
