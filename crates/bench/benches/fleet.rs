//! Fleet-tier benches.
//!
//! The headline question: what does cluster chaos cost the fleet
//! simulation? `fleet_cell` times a small two-server fleet twice in
//! the same binary — once calm, once under a composed crash +
//! hash-skew schedule — so the chaos/calm ratio is one bench run and
//! machine speed cancels out of the quotient. The regression gate
//! treats that ratio as advisory: a blow-up means the retry/hedge
//! machinery started storming, not that the runner was slow.
//!
//! ```text
//! cargo bench -p nmap-bench --bench fleet                    # faults inert
//! cargo bench -p nmap-bench --bench fleet --features fault   # chaos armed
//! ```

use cluster::{FleetConfig, GovernorKind};
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::nmap_cfg;
use nmap_bench::{criterion_group, criterion_main};
use simcore::fault::{FaultInjector, FaultKind, FaultPlan, FaultScope};
use simcore::{SimDuration, SimTime};
use workload::AppKind;

fn base_cfg() -> FleetConfig {
    FleetConfig::new(
        2,
        AppKind::Memcached,
        20_000.0,
        GovernorKind::Nmap(nmap_cfg(AppKind::Memcached)),
    )
    .with_window(SimDuration::from_millis(20), SimDuration::from_millis(60))
    .with_seed(13)
}

fn chaos_cfg() -> FleetConfig {
    let ms = |v: u64| SimTime::from_millis(v);
    let plan = FaultPlan::new()
        .with_seed(13)
        .inject(
            FaultKind::ServerCrash,
            FaultScope::window(ms(30), ms(55)).on_core(1),
        )
        .inject(
            FaultKind::HashSkew { factor: 3.0 },
            FaultScope::window(ms(25), ms(70)),
        );
    base_cfg().with_fault_plan(plan)
}

/// The fleet cell, calm vs chaos. The chaos/calm ratio feeds the
/// advisory overhead check in `scripts/bench_gate.py`; with faults
/// compiled out the schedule is inert and the ratio sits near 1.
fn fleet_cell(c: &mut Criterion) {
    let suffix = if FaultInjector::ENABLED {
        "fault_on"
    } else {
        "fault_off"
    };
    c.bench_function(format!("fleet_cell/calm_{suffix}"), |b| {
        b.iter(|| black_box(cluster::run_fleet(base_cfg())))
    });
    c.bench_function(format!("fleet_cell/chaos_{suffix}"), |b| {
        b.iter(|| black_box(cluster::run_fleet(chaos_cfg())))
    });
}

criterion_group!(benches, fleet_cell);
criterion_main!(benches);
