//! One bench per paper table/figure: each iteration runs the
//! representative simulation cell behind the artifact. The full
//! tables are regenerated with
//! `cargo run --release -p experiments --bin repro -- all`.

use cpusim::dvfs::{CompletionResult, CoreDvfs, TransitionOutcome};
use cpusim::{CState, PState, ProcessorProfile};
use experiments::GovernorKind;
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::{bench_cell, nmap_cfg};
use nmap_bench::{criterion_group, criterion_main};
use simcore::RngStream;
use simcore::SimTime;
use workload::{AppKind, LoadLevel};

/// Fig 2: the ondemand NAPI-mode timeline cell (memcached high).
fn fig02(c: &mut Criterion) {
    c.bench_function("fig02_mode_timeline/ondemand_memcached_high", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::High,
                GovernorKind::Ondemand,
            ))
        })
    });
}

/// Fig 3/4: latency scatter & CDF cells (performance vs ondemand).
fn fig03_04(c: &mut Criterion) {
    c.bench_function("fig03_latency_scatter/performance_memcached_high", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::High,
                GovernorKind::Performance,
            ))
        })
    });
    c.bench_function("fig04_latency_cdf/ondemand_nginx_high", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Nginx,
                LoadLevel::High,
                GovernorKind::Ondemand,
            ))
        })
    });
}

/// Table 1: 10 000 back-to-back re-transitions on the Gold 6134 model.
fn table1(c: &mut Criterion) {
    c.bench_function("table1_retransition/gold6134_10k_alternations", |b| {
        let profile = ProcessorProfile::xeon_gold_6134();
        b.iter(|| {
            let mut rng = RngStream::from_seed(7);
            let mut dvfs = CoreDvfs::new(profile.pstates.slowest());
            let mut now = SimTime::ZERO;
            let mut total = 0u64;
            for _ in 0..10_000 {
                let target = if dvfs.current() == PState::P0 {
                    profile.pstates.slowest()
                } else {
                    PState::P0
                };
                let TransitionOutcome::Started {
                    completes_at,
                    token,
                } = dvfs.request(target, now, &profile, &mut rng)
                else {
                    unreachable!()
                };
                total += (completes_at - now).as_nanos();
                match dvfs.complete(token, completes_at, &profile, &mut rng) {
                    CompletionResult::Settled { .. } => {}
                    _ => unreachable!(),
                }
                now = completes_at;
            }
            black_box(total)
        })
    });
}

/// Table 2: 100 wake-latency samples per C-state per processor.
fn table2(c: &mut Criterion) {
    c.bench_function("table2_wakeup/all_processors_100_trials", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for profile in ProcessorProfile::all_characterized() {
                let mut rng = RngStream::from_seed(11);
                for state in [CState::C6, CState::C1] {
                    for _ in 0..100 {
                        acc += profile
                            .cstate_latencies
                            .sample_wake(state, &mut rng)
                            .as_nanos();
                    }
                }
            }
            black_box(acc)
        })
    });
}

/// Fig 7/8: sleep-policy cells.
fn fig07_08(c: &mut Criterion) {
    c.bench_function("fig07_cc6_timeline/performance_memcached_low", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::Low,
                GovernorKind::Performance,
            ))
        })
    });
    c.bench_function("fig08_sleep_policies/performance_memcached_medium", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::Medium,
                GovernorKind::Performance,
            ))
        })
    });
}

/// Fig 9-11: NMAP behaviour cells.
fn fig09_11(c: &mut Criterion) {
    let cfg = nmap_cfg(AppKind::Memcached);
    c.bench_function("fig09_nmap_timeline/nmap_memcached_high", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::High,
                GovernorKind::Nmap(cfg),
            ))
        })
    });
    let cfg_n = nmap_cfg(AppKind::Nginx);
    c.bench_function("fig10_11_nmap_latency/nmap_nginx_high", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Nginx,
                LoadLevel::High,
                GovernorKind::Nmap(cfg_n),
            ))
        })
    });
}

/// Fig 12/13: representative matrix cells (one per governor family).
fn fig12_13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_13_matrix_cells");
    let cfg = nmap_cfg(AppKind::Memcached);
    for (name, gov) in [
        ("intel_powersave", GovernorKind::IntelPowersave),
        ("ondemand", GovernorKind::Ondemand),
        ("performance", GovernorKind::Performance),
        ("nmap_simpl", GovernorKind::NmapSimpl),
        ("nmap", GovernorKind::Nmap(cfg)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(bench_cell(AppKind::Memcached, LoadLevel::Medium, gov)))
        });
    }
    group.finish();
}

/// Fig 14/15: the NCAP comparison cells.
fn fig14_15(c: &mut Criterion) {
    let th = experiments::thresholds::ncap_threshold(AppKind::Memcached);
    c.bench_function("fig14_sota_p99/ncap_memcached_high", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::High,
                GovernorKind::Ncap(th),
            ))
        })
    });
    c.bench_function("fig15_sota_energy/ncap_menu_memcached_medium", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::Medium,
                GovernorKind::NcapMenu(th),
            ))
        })
    });
}

/// Fig 16: the Parties baseline cell.
fn fig16(c: &mut Criterion) {
    c.bench_function("fig16_varying_load/parties_memcached_medium", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::Medium,
                GovernorKind::Parties,
            ))
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig02, fig03_04, table1, table2, fig07_08, fig09_11, fig12_13, fig14_15, fig16
);
criterion_main!(figures);
