//! Telemetry-timeline overhead benches.
//!
//! The headline question: what does the per-tick gauge sampler cost
//! the simulation? `timeline_cell` times the `timeline` artifact's
//! representative cell (NMAP on memcached at high load) twice in the
//! same binary — sampler off, and sampler on at a deliberately hot
//! 1 µs cadence (100× the default) — so the on/off ratio is one bench
//! run, not an A/B across builds. The build-level A/B still applies:
//!
//! ```text
//! cargo bench -p nmap-bench --bench timeline                 # obs off
//! cargo bench -p nmap-bench --bench timeline --features obs  # obs on
//! ```
//!
//! The microbench isolates the sampler's only hot path — `record_row`
//! with its amortized decimation — so a regression there is visible
//! without re-deriving it from the cell delta.

use experiments::{GovernorKind, RunConfig, Scale};
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::nmap_cfg;
use nmap_bench::{criterion_group, criterion_main};
use simcore::{SimDuration, SimTime, TimeSeriesSampler, TimelineConfig, GAUGES};
use workload::{AppKind, LoadLevel, LoadSpec};

fn cell_cfg(timeline: TimelineConfig) -> RunConfig {
    let app = AppKind::Memcached;
    RunConfig {
        warmup: SimDuration::from_millis(20),
        duration: SimDuration::from_millis(50),
        ..RunConfig::new(
            app,
            LoadSpec::preset(app, LoadLevel::High),
            GovernorKind::Nmap(nmap_cfg(app)),
            Scale::Quick,
        )
    }
    .with_timeline(timeline)
}

/// The `timeline` artifact's representative cell, end to end, sampler
/// off vs on at a 1 µs interval. The on/off delta bounds the sampling
/// overhead; the gate treats it as advisory with a 3% ceiling.
fn timeline_cell(c: &mut Criterion) {
    let suffix = if TimeSeriesSampler::ENABLED {
        "obs_on"
    } else {
        "obs_off"
    };
    c.bench_function(format!("timeline_cell/sampler_off_{suffix}"), |b| {
        b.iter(|| black_box(experiments::run(cell_cfg(TimelineConfig::OFF))))
    });
    c.bench_function(format!("timeline_cell/sampler_1us_{suffix}"), |b| {
        b.iter(|| {
            black_box(experiments::run(cell_cfg(TimelineConfig {
                interval: SimDuration::from_micros(1),
                cap: 512,
            })))
        })
    });
}

/// The sampler's per-row cost in isolation: a million rows through an
/// 8-core sampler with a small buffer, so the amortized decimation
/// path (copy_within + truncate, no allocation) is part of the number.
fn sampler_record_row(c: &mut Criterion) {
    c.bench_function("timeline_sampler/record_1m_rows", |b| {
        b.iter(|| {
            let cores = 8usize;
            let mut s = TimeSeriesSampler::new(
                cores,
                TimelineConfig {
                    interval: SimDuration::from_micros(1),
                    cap: 512,
                },
            );
            let mut row = vec![0i64; cores * GAUGES];
            for i in 0u64..1_000_000 {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (i as i64).wrapping_add(j as i64);
                }
                s.record_row(SimTime::from_nanos(i * 1_000), &row);
            }
            black_box(s.finish())
        })
    });
}

criterion_group!(
    name = timeline;
    config = Criterion::default().sample_size(10);
    targets = timeline_cell, sampler_record_row
);
criterion_main!(timeline);
