//! Simulation-engine microbenchmarks: event queue, statistics, RNG,
//! and the NIC/NAPI hot paths that dominate experiment runtime.

use experiments::GovernorKind;
use napisim::{NapiContext, PollVerdict, ProcContext, StackParams};
use netsim::{FlowId, Nic, NicConfig, Packet, RequestId};
use nmap_bench::bench_cell;
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::{criterion_group, criterion_main};
use simcore::{
    Cdf, HeapQueue, Histogram, RngStream, SchedQueue, SimDuration, SimTime, Simulator, WheelQueue,
};
use workload::{AppKind, LoadLevel};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_schedule_run_10k", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::new();
            let mut world = 0u64;
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime::from_nanos((i * 7919) % 1_000_000), |w, _| *w += 1);
            }
            sim.run_until(&mut world, SimTime::from_millis(10));
            black_box(world)
        })
    });

    c.bench_function("engine/event_queue_cancel_heavy", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::new();
            let mut world = 0u64;
            let ids: Vec<_> = (0..5_000u64)
                .map(|i| sim.schedule_at(SimTime::from_nanos(i * 100), |w, _| *w += 1))
                .collect();
            for id in ids.iter().step_by(2) {
                sim.cancel(*id);
            }
            sim.run_until(&mut world, SimTime::from_millis(1));
            black_box(world)
        })
    });
}

/// A faithful replica of the event queue this repo shipped with
/// before the timing wheel landed: one `BinaryHeap` whose entries
/// carry the boxed action inline, plus a `HashSet` live-set consulted
/// on every pop for lazy cancellation. Kept here (not in simcore) so
/// `scheduler/seed_*` benches can report an honest before/after pair
/// without the library carrying dead code. The in-tree `HeapQueue`
/// oracle is already faster than this — it shares the wheel's arena
/// and keeps actions out of the heap — so the seed numbers are the
/// historical baseline and the `heap_*` numbers the machine proxy.
mod seed {
    use simcore::SimTime;
    use std::collections::{BinaryHeap, HashSet};

    type Action<W> = Box<dyn FnOnce(&mut W, &mut Simulator<W>)>;

    struct Scheduled<W> {
        time: SimTime,
        seq: u64,
        action: Action<W>,
    }

    impl<W> PartialEq for Scheduled<W> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<W> Eq for Scheduled<W> {}
    impl<W> PartialOrd for Scheduled<W> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<W> Ord for Scheduled<W> {
        // Min-heap on (time, seq) through a max-heap: invert both keys.
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub struct Simulator<W> {
        queue: BinaryHeap<Scheduled<W>>,
        live: HashSet<u64>,
        next_seq: u64,
        now: SimTime,
    }

    impl<W> Default for Simulator<W> {
        fn default() -> Self {
            Simulator {
                queue: BinaryHeap::new(),
                live: HashSet::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }
    }

    impl<W> Simulator<W> {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn schedule_at(
            &mut self,
            time: SimTime,
            action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
        ) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(Scheduled {
                time: time.max(self.now),
                seq,
                action: Box::new(action),
            });
            self.live.insert(seq);
            seq
        }

        pub fn cancel(&mut self, id: u64) -> bool {
            self.live.remove(&id)
        }

        pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
            loop {
                match self.queue.peek() {
                    Some(ev) if ev.time <= deadline => {}
                    _ => break,
                }
                let ev = match self.queue.pop() {
                    Some(ev) => ev,
                    None => break,
                };
                if !self.live.remove(&ev.seq) {
                    continue; // lazily dropped cancellation husk
                }
                self.now = ev.time;
                (ev.action)(world, self);
            }
            self.now = self.now.max(deadline);
        }
    }
}

/// Schedules every time in `times`, cancels every `cancel_every`-th
/// handle, then drains the queue — the scheduler-bound inner loop the
/// `scheduler/*` benches time on both backends. Returns events run.
fn sched_drain<Q: SchedQueue + 'static>(times: &[u64], cancel_every: usize) -> u64 {
    let mut sim: Simulator<u64, Q> = Simulator::new();
    let mut w = 0u64;
    let ids: Vec<_> = times
        .iter()
        .map(|&t| sim.schedule_at(SimTime::from_nanos(t), |w, _| *w += 1))
        .collect();
    for id in ids.iter().step_by(cancel_every) {
        sim.cancel(*id);
    }
    sim.run_until(&mut w, SimTime::MAX);
    w
}

/// [`sched_drain`] on the seed-engine replica.
fn seed_drain(times: &[u64], cancel_every: usize) -> u64 {
    let mut sim: seed::Simulator<u64> = seed::Simulator::new();
    let mut w = 0u64;
    let ids: Vec<u64> = times
        .iter()
        .map(|&t| sim.schedule_at(SimTime::from_nanos(t), |w, _| *w += 1))
        .collect();
    for id in ids.iter().step_by(cancel_every) {
        sim.cancel(*id);
    }
    sim.run_until(&mut w, SimTime::MAX);
    w
}

/// How long the `standing_1m` tick chains run (25 ms of virtual time
/// at one tick per 125 ns per chain ⇒ 1.6 M dispatched events).
const STANDING_HORIZON_NS: u64 = 25_000_000;

/// Seconds-scale timeout timers that never fire inside the measured
/// window — the standing population every pop must sift past on a
/// heap and the wheel simply parks at a high level.
fn standing_times(n: u64) -> Vec<u64> {
    let mut rng = RngStream::from_seed(0x571c);
    (0..n)
        .map(|_| 1_000_000_000 + rng.below(1_000_000_000))
        .collect()
}

/// The headline scheduler-bound workload: `chains` self-rescheduling
/// 125 ns tick chains (NAPI polls, ITR timers) racing over a large
/// standing timeout population. O(log n) heap pops pay a cache miss
/// per sift level against the parked set; the wheel dispatches each
/// tick from a hot level-0 bucket in O(1). Returns events dispatched.
fn standing_ticks<Q: SchedQueue + 'static>(standing: &[u64], chains: u64) -> u64 {
    let mut sim: Simulator<u64, Q> = Simulator::new();
    let mut w = 0u64;
    for &t in standing {
        sim.schedule_at(SimTime::from_nanos(t), |w, _| *w += 1);
    }
    fn tick<Q: SchedQueue + 'static>(w: &mut u64, sim: &mut Simulator<u64, Q>) {
        *w += 1;
        let t = sim.now().as_nanos();
        if t < STANDING_HORIZON_NS {
            sim.schedule_at(SimTime::from_nanos(t + 125), tick);
        }
    }
    for i in 0..chains {
        sim.schedule_at(SimTime::from_nanos(i * 17), tick);
    }
    sim.run_until(&mut w, SimTime::from_nanos(STANDING_HORIZON_NS + 1_000));
    w
}

/// [`standing_ticks`] on the seed-engine replica.
fn seed_standing_ticks(standing: &[u64], chains: u64) -> u64 {
    let mut sim: seed::Simulator<u64> = seed::Simulator::new();
    let mut w = 0u64;
    for &t in standing {
        sim.schedule_at(SimTime::from_nanos(t), |w, _| *w += 1);
    }
    fn tick(w: &mut u64, sim: &mut seed::Simulator<u64>) {
        *w += 1;
        let t = sim.now().as_nanos();
        if t < STANDING_HORIZON_NS {
            sim.schedule_at(SimTime::from_nanos(t + 125), tick);
        }
    }
    for i in 0..chains {
        sim.schedule_at(SimTime::from_nanos(i * 17), tick);
    }
    sim.run_until(&mut w, SimTime::from_nanos(STANDING_HORIZON_NS + 1_000));
    w
}

/// A churn schedule shaped like a busy testbed cell: a standing timer
/// population spread over a second (ITR timers, sleep ticks, DVFS
/// completions) plus near-term packet-scale events and same-tick
/// bursts (RSS fan-out delivering one NIC batch to many queues).
fn churn_times(n: u64) -> Vec<u64> {
    let mut rng = RngStream::from_seed(0x5ced);
    (0..n)
        .map(|_| match rng.below(10) {
            0..=5 => rng.below(1_000_000_000),         // standing timers
            6..=7 => 500_000_000 + rng.below(100_000), // near-term cluster
            _ => 250_000_000 + rng.below(64) * 4_096,  // same-tick bursts
        })
        .collect()
}

/// The head-to-head events/sec microbench behind the CI regression
/// gate: identical workloads on the timing wheel, the in-tree heap
/// oracle, and the pre-wheel seed engine. `scripts/bench_gate.py`
/// compares the heap/wheel mean-time ratio per workload — using the
/// oracle run as a machine-speed proxy — against `BENCH_baseline.json`.
fn bench_scheduler(c: &mut Criterion) {
    let times = churn_times(100_000);
    c.bench_function("scheduler/wheel_churn_100k", |b| {
        b.iter(|| black_box(sched_drain::<WheelQueue>(&times, 3)))
    });
    c.bench_function("scheduler/heap_churn_100k", |b| {
        b.iter(|| black_box(sched_drain::<HeapQueue>(&times, 3)))
    });
    c.bench_function("scheduler/seed_churn_100k", |b| {
        b.iter(|| black_box(seed_drain(&times, 3)))
    });

    // Dense same-timestamp batches: 1 024 ticks × 64 events — the
    // cache-friendly bucket-run dispatch case.
    let bursts: Vec<u64> = (0..65_536u64).map(|i| (i / 64) * 10_000).collect();
    c.bench_function("scheduler/wheel_bursts_64k", |b| {
        b.iter(|| black_box(sched_drain::<WheelQueue>(&bursts, usize::MAX)))
    });
    c.bench_function("scheduler/heap_bursts_64k", |b| {
        b.iter(|| black_box(sched_drain::<HeapQueue>(&bursts, usize::MAX)))
    });

    // The headline cell: 1 M standing timers, 8 tick chains.
    let standing = standing_times(1 << 20);
    c.bench_function("scheduler/wheel_standing_1m", |b| {
        b.iter(|| black_box(standing_ticks::<WheelQueue>(&standing, 8)))
    });
    c.bench_function("scheduler/heap_standing_1m", |b| {
        b.iter(|| black_box(standing_ticks::<HeapQueue>(&standing, 8)))
    });
    c.bench_function("scheduler/seed_standing_1m", |b| {
        b.iter(|| black_box(seed_standing_ticks(&standing, 8)))
    });

    // The end-to-end `repro quick` representative cell on whichever
    // backend the build selected (the wheel, unless `heap-sched`).
    c.bench_function("scheduler/repro_quick_cell", |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::High,
                GovernorKind::Nmap(nmap_bench::nmap_cfg(AppKind::Memcached)),
            ))
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for i in 0..100_000u64 {
                h.record(black_box(i * 37 % 10_000_000));
            }
            black_box(h.value_at_quantile(0.99))
        })
    });

    c.bench_function("stats/cdf_quantile_50k", |b| {
        let samples: Vec<u64> = (0..50_000u64).map(|i| i * 31 % 1_000_000).collect();
        b.iter(|| {
            let mut cdf: Cdf = samples.iter().copied().collect();
            black_box(cdf.quantile(0.99))
        })
    });

    c.bench_function("rng/lognormal_100k", |b| {
        b.iter(|| {
            let mut rng = RngStream::from_seed(42);
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.lognormal_mean(7_000.0, 0.3);
            }
            black_box(acc)
        })
    });
}

fn bench_nic_napi(c: &mut Criterion) {
    c.bench_function("nic/rx_poll_cycle_10k_packets", |b| {
        b.iter(|| {
            let mut nic = Nic::new(NicConfig::intel_82599(8));
            let mut delivered = 0usize;
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                let pkt = Packet::request(RequestId(i), FlowId(i % 320), 64, t);
                let q = nic.rss_queue(pkt.flow);
                nic.enqueue_rx(q, pkt, t);
                t += SimDuration::from_nanos(500);
                if i % 64 == 0 {
                    delivered += nic.poll(q, 64).rx.len();
                }
            }
            black_box(delivered)
        })
    });

    c.bench_function("napi/record_poll_100k_batches", |b| {
        b.iter(|| {
            let mut napi = NapiContext::new(StackParams::linux_defaults());
            let mut t = SimTime::ZERO;
            let mut active = false;
            for i in 0..100_000u64 {
                if !active {
                    napi.on_irq(t);
                    active = true;
                }
                t += SimDuration::from_micros(10);
                let drained = i % 7 == 0;
                let out = napi.record_poll(32, 4, drained, false, ProcContext::SoftIrq, t);
                match out.verdict {
                    PollVerdict::Complete => active = false,
                    PollVerdict::Handoff => napi.ksoftirqd_takeover(),
                    PollVerdict::Continue => {}
                }
                if napi.ksoftirqd_running() && !drained {
                    let out =
                        napi.record_poll(32, 0, i % 11 == 0, false, ProcContext::Ksoftirqd, t);
                    if out.verdict == PollVerdict::Complete {
                        active = false;
                    }
                }
            }
            black_box(napi.total_polling_packets())
        })
    });
}

criterion_group!(
    name = engine;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_stats, bench_nic_napi
);
// The scheduler head-to-heads run three backends over million-event
// workloads; ten samples keep the bench-smoke CI job affordable while
// giving the regression gate a stable per-bench minimum to compare.
criterion_group!(
    name = scheduler;
    config = Criterion::default().sample_size(10);
    targets = bench_scheduler
);
criterion_main!(engine, scheduler);
