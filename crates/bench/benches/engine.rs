//! Simulation-engine microbenchmarks: event queue, statistics, RNG,
//! and the NIC/NAPI hot paths that dominate experiment runtime.

use napisim::{NapiContext, PollVerdict, ProcContext, StackParams};
use netsim::{FlowId, Nic, NicConfig, Packet, RequestId};
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::{criterion_group, criterion_main};
use simcore::{Cdf, Histogram, RngStream, SimDuration, SimTime, Simulator};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_schedule_run_10k", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::new();
            let mut world = 0u64;
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime::from_nanos((i * 7919) % 1_000_000), |w, _| *w += 1);
            }
            sim.run_until(&mut world, SimTime::from_millis(10));
            black_box(world)
        })
    });

    c.bench_function("engine/event_queue_cancel_heavy", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::new();
            let mut world = 0u64;
            let ids: Vec<_> = (0..5_000u64)
                .map(|i| sim.schedule_at(SimTime::from_nanos(i * 100), |w, _| *w += 1))
                .collect();
            for id in ids.iter().step_by(2) {
                sim.cancel(*id);
            }
            sim.run_until(&mut world, SimTime::from_millis(1));
            black_box(world)
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for i in 0..100_000u64 {
                h.record(black_box(i * 37 % 10_000_000));
            }
            black_box(h.value_at_quantile(0.99))
        })
    });

    c.bench_function("stats/cdf_quantile_50k", |b| {
        let samples: Vec<u64> = (0..50_000u64).map(|i| i * 31 % 1_000_000).collect();
        b.iter(|| {
            let mut cdf: Cdf = samples.iter().copied().collect();
            black_box(cdf.quantile(0.99))
        })
    });

    c.bench_function("rng/lognormal_100k", |b| {
        b.iter(|| {
            let mut rng = RngStream::from_seed(42);
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.lognormal_mean(7_000.0, 0.3);
            }
            black_box(acc)
        })
    });
}

fn bench_nic_napi(c: &mut Criterion) {
    c.bench_function("nic/rx_poll_cycle_10k_packets", |b| {
        b.iter(|| {
            let mut nic = Nic::new(NicConfig::intel_82599(8));
            let mut delivered = 0usize;
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                let pkt = Packet::request(RequestId(i), FlowId(i % 320), 64, t);
                let q = nic.rss_queue(pkt.flow);
                nic.enqueue_rx(q, pkt, t);
                t += SimDuration::from_nanos(500);
                if i % 64 == 0 {
                    delivered += nic.poll(q, 64).rx.len();
                }
            }
            black_box(delivered)
        })
    });

    c.bench_function("napi/record_poll_100k_batches", |b| {
        b.iter(|| {
            let mut napi = NapiContext::new(StackParams::linux_defaults());
            let mut t = SimTime::ZERO;
            let mut active = false;
            for i in 0..100_000u64 {
                if !active {
                    napi.on_irq(t);
                    active = true;
                }
                t += SimDuration::from_micros(10);
                let drained = i % 7 == 0;
                let out = napi.record_poll(32, 4, drained, false, ProcContext::SoftIrq, t);
                match out.verdict {
                    PollVerdict::Complete => active = false,
                    PollVerdict::Handoff => napi.ksoftirqd_takeover(),
                    PollVerdict::Continue => {}
                }
                if napi.ksoftirqd_running() && !drained {
                    let out =
                        napi.record_poll(32, 0, i % 11 == 0, false, ProcContext::Ksoftirqd, t);
                    if out.verdict == PollVerdict::Complete {
                        active = false;
                    }
                }
            }
            black_box(napi.total_polling_packets())
        })
    });
}

criterion_group!(
    name = engine;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_stats, bench_nic_napi
);
criterion_main!(engine);
