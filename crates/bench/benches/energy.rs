//! Energy-attribution overhead benches.
//!
//! The headline question: what does the per-segment microjoule meter
//! cost the simulation? `attribution_cell` times the `repro --quick`
//! `energy` artifact's representative cell (NMAP on memcached at high
//! load) end to end; run it once with default features (meters are
//! zero-sized no-ops) and once with `--features obs` (meters
//! attribute every segment) and compare:
//!
//! ```text
//! cargo bench -p nmap-bench --bench energy                 # obs off
//! cargo bench -p nmap-bench --bench energy --features obs  # obs on
//! ```
//!
//! The microbenches isolate the two hot paths the feature adds — the
//! meter's `advance` (every power-integral segment) and the flight
//! recorder's `record` (every governor decision) — so a regression in
//! either is visible without re-deriving it from the cell delta.

use experiments::GovernorKind;
use nmap_bench::criterion::{black_box, Criterion};
use nmap_bench::{bench_cell, nmap_cfg};
use nmap_bench::{criterion_group, criterion_main};
use simcore::{
    BusyRole, CoreEnergyMeter, DecisionTrigger, FlightRecorder, GovDecision, MeterClass,
    SimDuration, SimTime,
};
use workload::{AppKind, LoadLevel};

/// The `energy` artifact's representative cell, end to end. Compare
/// the obs-on and obs-off builds of this number for the attribution
/// overhead on a full simulation.
fn attribution_cell(c: &mut Criterion) {
    let cfg = nmap_cfg(AppKind::Memcached);
    let label = if CoreEnergyMeter::ENABLED {
        "energy_cell/nmap_memcached_high_obs_on"
    } else {
        "energy_cell/nmap_memcached_high_obs_off"
    };
    c.bench_function(label, |b| {
        b.iter(|| {
            black_box(bench_cell(
                AppKind::Memcached,
                LoadLevel::High,
                GovernorKind::Nmap(cfg),
            ))
        })
    });
}

/// The meter's per-segment cost in isolation: one million accounting
/// segments cycling through the activity classes and both busy roles,
/// with a wake-window split every 16th segment — the same mix a busy
/// polling core produces.
fn meter_advance(c: &mut Criterion) {
    c.bench_function("energy_meter/advance_1m_segments", |b| {
        b.iter(|| {
            let mut m = CoreEnergyMeter::new();
            let mut now = SimTime::ZERO;
            for i in 0u64..1_000_000 {
                now += SimDuration::from_nanos(640 + (i % 7) * 90);
                match i % 4 {
                    0 => {
                        m.set_role(if i % 8 == 0 {
                            BusyRole::Irq
                        } else {
                            BusyRole::App
                        });
                        m.advance(
                            now,
                            28.5,
                            MeterClass::Busy {
                                index: (i % 16) as usize,
                                len: 16,
                            },
                        );
                    }
                    1 => {
                        if i % 16 == 1 {
                            m.note_wake(now + SimDuration::from_nanos(300));
                        }
                        m.advance(now, 8.2, MeterClass::IdleC0);
                    }
                    2 => m.advance(now, 3.5, MeterClass::SleepC1),
                    _ => m.advance(now, 0.12, MeterClass::SleepC6),
                }
            }
            black_box(m.measured_uj())
        })
    });
}

/// The flight recorder's per-decision cost at steady state (ring full,
/// every record evicts).
fn recorder_record(c: &mut Criterion) {
    c.bench_function("flight_recorder/record_100k_decisions", |b| {
        b.iter(|| {
            let mut r = FlightRecorder::with_capacity(4096);
            for i in 0u64..100_000 {
                r.record(GovDecision {
                    at: SimTime::from_nanos(i * 1_000),
                    core: (i % 8) as u32,
                    trigger: DecisionTrigger::ALL[(i % 5) as usize],
                    util_permille: (i % 1000) as u32,
                    polling: i % 3 == 0,
                    queue_depth: (i % 64) as u32,
                    from_pstate: (i % 16) as u32,
                    to_pstate: ((i + 5) % 16) as u32,
                    chip_wide: false,
                });
            }
            black_box(r.total())
        })
    });
}

criterion_group!(
    name = energy;
    config = Criterion::default().sample_size(10);
    targets = attribution_cell, meter_advance, recorder_record
);
criterion_main!(energy);
