//! Wheel-specific edge cases, driven through the public engine API:
//! zero-delay self-rescheduling, events landing exactly on wheel
//! level boundaries, far-future overflow promotion/demotion,
//! cancellation through stale generation handles, and budgeted-run
//! interruption in the middle of a same-tick batch.
//!
//! Everything here pins `WheelSimulator` explicitly, so the suite
//! exercises the wheel even when the workspace is built with
//! `--features heap-sched`.

use simcore::{SimDuration, SimTime, StepBudget, WheelSimulator};

/// 64^2 and 64^3 — the spans of wheel levels 1 and 2.
const L2: u64 = 64 * 64;
const L3: u64 = 64 * 64 * 64;
/// The full wheel span; times this far out park in the overflow list.
const WHEEL_SPAN: u64 = 1 << 48;

#[test]
fn zero_delay_self_reschedule_runs_fifo_within_tick() {
    let mut sim: WheelSimulator<Vec<&'static str>> = WheelSimulator::new();
    let mut w = Vec::new();
    // A zero-delay chain interleaved with a pre-scheduled tie: the
    // chain's links are scheduled *during* the tick, so they run
    // after every event already queued for that timestamp.
    sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<_>, sim| {
        w.push("chain-0");
        sim.schedule_in(SimDuration::from_nanos(0), |w: &mut Vec<_>, sim| {
            w.push("chain-1");
            sim.schedule_in(SimDuration::from_nanos(0), |w: &mut Vec<_>, _| {
                w.push("chain-2")
            });
        });
    });
    sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<_>, _| w.push("tie"));
    sim.run_until(&mut w, SimTime::from_micros(1));
    assert_eq!(w, vec!["chain-0", "tie", "chain-1", "chain-2"]);
    assert_eq!(sim.now(), SimTime::from_micros(1));
}

#[test]
fn zero_delay_chain_trips_event_budget_not_livelock() {
    let mut sim: WheelSimulator<u64> = WheelSimulator::new();
    let mut w = 0u64;
    fn spin(w: &mut u64, sim: &mut WheelSimulator<u64>) {
        *w += 1;
        sim.schedule_in(SimDuration::from_nanos(0), spin);
    }
    sim.schedule_at(SimTime::from_nanos(5), spin);
    let budget = StepBudget::unlimited().with_max_events(1_000);
    assert!(sim
        .run_until_budgeted(&mut w, SimTime::from_micros(1), &budget)
        .is_err());
    assert_eq!(w, 1_000, "virtual time never advanced, budget must trip");
    assert_eq!(sim.now(), SimTime::from_nanos(5));
}

#[test]
fn events_on_exact_level_boundaries_fire_in_order() {
    let mut sim: WheelSimulator<Vec<u64>> = WheelSimulator::new();
    let mut w = Vec::new();
    // One event on each side of every level boundary, scheduled in
    // shuffled order.
    let times = [
        L3 + 1,
        64,
        L2 - 1,
        0,
        L2 + 1,
        63,
        L3,
        1,
        L2,
        65,
        L3 - 1,
        WHEEL_SPAN - 1,
    ];
    for &t in &times {
        sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
    }
    sim.run_until(&mut w, SimTime::MAX);
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    assert_eq!(w, sorted);
}

#[test]
fn far_future_overflow_promotes_back_into_the_wheel() {
    let mut sim: WheelSimulator<Vec<u64>> = WheelSimulator::new();
    let mut w = Vec::new();
    // Beyond the wheel span from t=0: parked in overflow, then pulled
    // back in (promoted) once the wheel drains and rebases.
    let far = [
        WHEEL_SPAN + 5,
        3 * WHEEL_SPAN,
        WHEEL_SPAN + 5,
        2 * WHEEL_SPAN,
    ];
    for (i, &t) in far.iter().enumerate() {
        sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| {
            w.push(t + i as u64)
        });
    }
    sim.schedule_at(SimTime::from_nanos(7), |w: &mut Vec<u64>, _| w.push(7));
    // Running short of the overflow times executes only the near
    // event and must not disturb the parked ones.
    sim.run_until(&mut w, SimTime::from_nanos(1_000));
    assert_eq!(w, vec![7]);
    // FIFO between the two identical far timestamps: index 0 before 2.
    sim.run_until(&mut w, SimTime::MAX);
    assert_eq!(
        w,
        vec![
            7,
            WHEEL_SPAN + 5,
            WHEEL_SPAN + 7,
            2 * WHEEL_SPAN + 3,
            3 * WHEEL_SPAN + 1
        ]
    );
}

#[test]
fn demotion_cascades_preserve_cross_level_fifo() {
    let mut sim: WheelSimulator<Vec<&'static str>> = WheelSimulator::new();
    let mut w = Vec::new();
    let target = SimTime::from_nanos(2 * L3 + 3 * 64 + 9);
    // Scheduled from t=0, `target` sits at wheel level 3; it must
    // demote through levels 2→1→0 as the cursor approaches.
    sim.schedule_at(target, |w: &mut Vec<_>, _| w.push("early-seq"));
    // Walk the clock toward the target in level-sized hops, then
    // schedule a tie for the same nanosecond from close range (it
    // lands directly at a low level). The demoted far event was
    // scheduled first, so it keeps FIFO priority.
    sim.run_until(&mut w, SimTime::from_nanos(L3));
    sim.run_until(&mut w, SimTime::from_nanos(2 * L3 + 64));
    sim.schedule_at(target, |w: &mut Vec<_>, _| w.push("late-seq"));
    assert!(w.is_empty());
    sim.run_until(&mut w, SimTime::MAX);
    assert_eq!(w, vec!["early-seq", "late-seq"]);
}

#[test]
fn cancelling_a_fired_generation_handle_is_inert() {
    let mut sim: WheelSimulator<u32> = WheelSimulator::new();
    let mut w = 0u32;
    let fired = sim.schedule_at(SimTime::from_nanos(1), |w: &mut u32, _| *w += 1);
    sim.run_until(&mut w, SimTime::from_nanos(10));
    assert_eq!(w, 1);
    // The arena slot is recycled by the next schedule; the stale
    // handle must neither report success nor kill the new tenant.
    let tenant = sim.schedule_at(SimTime::from_nanos(20), |w: &mut u32, _| *w += 100);
    assert!(!sim.cancel(fired), "fired handle must be stale");
    assert_eq!(sim.pending(), 1);
    sim.run_until(&mut w, SimTime::from_nanos(30));
    assert_eq!(w, 101, "slot tenant must survive the stale cancel");
    assert!(!sim.cancel(tenant), "tenant has fired too by now");
}

#[test]
fn cancelling_overflow_and_high_level_events_is_o1_and_sticks() {
    let mut sim: WheelSimulator<u32> = WheelSimulator::new();
    let mut w = 0u32;
    let in_overflow = sim.schedule_at(SimTime::from_nanos(WHEEL_SPAN + 99), |w: &mut u32, _| {
        *w += 1
    });
    let in_level3 = sim.schedule_at(SimTime::from_nanos(L3 + 17), |w: &mut u32, _| *w += 10);
    let survivor = sim.schedule_at(SimTime::from_nanos(L3 + 17), |w: &mut u32, _| *w += 100);
    assert!(sim.cancel(in_overflow));
    assert!(sim.cancel(in_level3));
    assert!(!sim.cancel(in_level3), "double cancel reports false");
    sim.run_until(&mut w, SimTime::MAX);
    assert_eq!(w, 100, "only the survivor fires");
    assert!(!sim.cancel(survivor));
    let p = sim.profile();
    assert_eq!(p.events_cancelled, 2);
    assert_eq!(p.events_executed, 1);
}

#[test]
fn budget_interrupts_mid_tick_batch_and_resumes_fifo() {
    let mut sim: WheelSimulator<Vec<u64>> = WheelSimulator::new();
    let mut w = Vec::new();
    // Ten events on one tick — a single wheel bucket run.
    for i in 0..10u64 {
        sim.schedule_at(SimTime::from_nanos(50), move |w: &mut Vec<u64>, _| {
            w.push(i)
        });
    }
    let budget = StepBudget::unlimited().with_max_events(4);
    assert!(sim
        .run_until_budgeted(&mut w, SimTime::from_micros(1), &budget)
        .is_err());
    assert_eq!(w, vec![0, 1, 2, 3], "batch interrupted exactly at the cap");
    assert_eq!(sim.now(), SimTime::from_nanos(50), "clock parked mid-tick");
    assert_eq!(sim.pending(), 6);
    // A later, bigger budget finishes the batch in FIFO order.
    let budget = StepBudget::unlimited().with_max_events(100);
    sim.run_until_budgeted(&mut w, SimTime::from_micros(1), &budget)
        .expect("remaining batch fits");
    assert_eq!(w, (0..10).collect::<Vec<_>>());
    assert_eq!(sim.now(), SimTime::from_micros(1));
}

#[test]
fn deadline_stop_between_levels_accepts_earlier_reschedules() {
    let mut sim: WheelSimulator<Vec<u64>> = WheelSimulator::new();
    let mut w = Vec::new();
    // Only a far event pending; a bounded run stops short of it.
    sim.schedule_at(SimTime::from_nanos(5_000_000), |w: &mut Vec<u64>, _| {
        w.push(5_000_000)
    });
    sim.run_until(&mut w, SimTime::from_nanos(1_000));
    assert!(w.is_empty());
    // Now schedule *earlier* than the far event (but after the
    // deadline already passed) — the wheel must still order it first.
    sim.schedule_at(SimTime::from_nanos(2_000), |w: &mut Vec<u64>, _| {
        w.push(2_000)
    });
    sim.run_until(&mut w, SimTime::MAX);
    assert_eq!(w, vec![2_000, 5_000_000]);
}
