//! # simcore — discrete-event simulation engine
//!
//! The foundation for the NMAP reproduction: a deterministic
//! discrete-event simulator with integer-nanosecond virtual time,
//! cancellable events, seeded random-number streams, and the
//! statistics toolkit (histograms, CDFs, time series) used by every
//! experiment in the paper.
//!
//! # Examples
//!
//! ```
//! use simcore::{Simulator, SimTime, SimDuration};
//!
//! // The "world" is any user state the events mutate.
//! let mut world = 0u64;
//! let mut sim: Simulator<u64> = Simulator::new();
//! sim.schedule_in(SimDuration::from_micros(5), |w, sim| {
//!     *w += 1;
//!     // Events may schedule follow-up events.
//!     sim.schedule_in(SimDuration::from_micros(5), |w, _| *w += 10);
//! });
//! sim.run_until(&mut world, SimTime::from_micros(100));
//! assert_eq!(world, 11);
//! assert_eq!(sim.now(), SimTime::from_micros(100));
//! ```

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod audit;
pub mod check;
pub mod engine;
pub mod error;
pub mod fault;
pub mod obs;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use audit::{Account, AuditCheck, AuditReport, ConservationLedger};
pub use engine::{
    EngineProfile, EventId, HeapQueue, HeapSimulator, SchedQueue, Simulator, StepBudget,
    WheelQueue, WheelSimulator,
};
pub use error::{BudgetKind, SimError};
pub use fault::{
    FaultInjector, FaultKind, FaultPlan, FaultScope, FaultSpec, FaultStats, RecoverySummary,
    WireFault,
};
pub use obs::attrib::{
    AttribSummary, AttribTracker, Breakdown, ChainMarks, CompletedAttrib, Stage, StageSummary,
};
pub use obs::energy::{
    BusyRole, CoreEnergyMeter, CoreEnergySummary, DecisionTrigger, EnergyBreakdown,
    EnergyComponent, EnergySummary, FlightRecorder, FlightSummary, GovDecision, MeterClass,
    ModeEnergy,
};
pub use obs::timeseries::{
    sparkline, Gauge, TelemetryTap, TimeSeriesSampler, Timeline, TimelineConfig, GAUGES,
};
pub use obs::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, TraceBuffer, TraceCategory, TraceEvent,
    TraceKind,
};
pub use rng::RngStream;
pub use stats::cdf::Cdf;
pub use stats::histogram::Histogram;
pub use stats::running::RunningStats;
pub use stats::streaming::{SloWatchdog, StreamingQuantiles, WatchdogEvent, WatchdogReport};
pub use stats::timeseries::TimeSeries;
pub use time::{SimDuration, SimTime};
pub use trace::EventLog;
