//! simfault — deterministic, seedable fault injection.
//!
//! A [`FaultPlan`] is a typed schedule of injections, each bounded by
//! a [`FaultScope`] (a time window, optionally pinned to one core).
//! The [`FaultInjector`] evaluates the plan at the simulation's hook
//! points: stochastic kinds draw from a dedicated RNG stream derived
//! from the plan seed, scheduled kinds are pure functions of the
//! scope, so the same seed and the same plan replay byte-identically.
//!
//! # Zero cost when disabled
//!
//! The module is gated on the `fault` cargo feature exactly like
//! `audit` and `obs`: with the feature off the injector is a
//! zero-sized type whose queries are empty `#[inline]` bodies, and
//! [`FaultInjector::ENABLED`] is `false`. With the feature on but an
//! empty plan, no RNG is ever drawn and no fault events exist, so
//! fault-free runs remain bit-identical to a build without the
//! feature.
//!
//! # Examples
//!
//! ```
//! use simcore::fault::{FaultInjector, FaultKind, FaultPlan, FaultScope};
//! use simcore::{SimDuration, SimTime};
//!
//! let plan = FaultPlan::new()
//!     .with_seed(42)
//!     .inject(
//!         FaultKind::WireDrop { prob: 0.5 },
//!         FaultScope::window(SimTime::ZERO, SimTime::from_millis(10)),
//!     );
//! let mut inj = FaultInjector::from_plan(&plan, 7);
//! if FaultInjector::ENABLED {
//!     assert!(inj.is_active());
//! }
//! // Outside every scope the query is a cheap miss.
//! assert!(inj.wire_drop(SimTime::from_millis(20), 0).is_none());
//! ```

#[cfg(feature = "fault")]
use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};

/// One kind of injected fault. Probabilities are per-opportunity;
/// periods drive scheduled injections; clamps and overrides hold for
/// the whole scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Drop a wire packet (request or response) with probability
    /// `prob` per packet.
    WireDrop {
        /// Per-packet drop probability.
        prob: f64,
    },
    /// Corrupt a wire packet with probability `prob`; a corrupted
    /// packet fails its checksum and is discarded like a drop, but is
    /// counted separately.
    WireCorrupt {
        /// Per-packet corruption probability.
        prob: f64,
    },
    /// A delivered IRQ is lost with probability `prob` (the vector
    /// fires but the core never sees it).
    IrqLoss {
        /// Per-IRQ loss probability.
        prob: f64,
    },
    /// The vector raises spurious interrupts every `period` with no
    /// descriptor work behind them.
    SpuriousIrq {
        /// Spacing between spurious assertions.
        period: SimDuration,
    },
    /// NAPI's re-enable write is lost: the vector stays masked until
    /// the scope ends.
    StuckIrqMask,
    /// Misconfigured interrupt moderation: every queue's ITR is forced
    /// to `itr` for the scope.
    ItrOverride {
        /// The forced inter-interrupt spacing.
        itr: SimDuration,
    },
    /// Rx descriptor rings behave as if sized `capacity`, forcing
    /// overflow pressure.
    RxRingClamp {
        /// Effective ring capacity during the scope.
        capacity: usize,
    },
    /// A ksoftirqd wakeup is missed with probability `prob`; the task
    /// only becomes runnable `delay` later (a lost-then-retried IPI).
    MissedKsoftirqdWake {
        /// Recovery delay for a missed wake.
        delay: SimDuration,
        /// Per-handoff miss probability.
        prob: f64,
    },
    /// The NAPI poll budget is clamped to `budget` descriptors.
    PollBudgetClamp {
        /// Effective budget during the scope.
        budget: usize,
    },
    /// A NAPI mode-transition signal to the governor is silently lost
    /// with probability `prob`.
    NapiSignalLoss {
        /// Per-batch suppression probability.
        prob: f64,
    },
    /// The governor keeps receiving a *stale* copy of the core's last
    /// NAPI signal every `period` even though no packets flow — the
    /// wedge NMAP's degradation watchdog exists for.
    NapiSignalStuck {
        /// Replay interval of the stale signal.
        period: SimDuration,
    },
    /// Every DVFS transition started during the scope pays `extra`
    /// write latency.
    DvfsLatencySpike {
        /// Extra transition latency.
        extra: SimDuration,
    },
    /// Thermal throttling: P-states faster than index `floor` are
    /// clamped to it (index 0 is the fastest state).
    ThermalThrottle {
        /// Fastest-allowed P-state index; requests for a smaller
        /// index are raised to this one.
        floor: u8,
    },
    /// Transient core degradation: every execution start on the scoped
    /// core pays an extra `stall` before running.
    CoreStall {
        /// Stall added to each execution start.
        stall: SimDuration,
    },
    /// The offered load is multiplied by `factor` for the scope.
    LoadSpike {
        /// Arrival-rate multiplier.
        factor: f64,
    },
    /// `requests` extra requests arrive back-to-back at the scope
    /// start (an incast burst).
    IncastBurst {
        /// Burst size in requests.
        requests: u32,
    },
    /// Connection churn: at the scope start the client's flow space
    /// rotates by `shift` flows, remapping RSS placement.
    ConnectionChurn {
        /// Flow-id rotation distance.
        shift: u64,
    },
    /// Cluster scope: the whole server is down for the window. At the
    /// fleet tier `scope.core` is the server index; attempts dispatched
    /// to a crashed server are lost and its health probes fail.
    ServerCrash,
    /// Cluster scope: the load balancer's health view freezes — probe
    /// results arriving during the window are ignored, so ejection and
    /// readmission decisions lag reality.
    HealthViewStale,
    /// Cluster scope: every request and probe crossing the LB↔server
    /// link of the scoped server pays `extra` one-way latency.
    LinkLatencySpike {
        /// Extra link latency per crossing.
        extra: SimDuration,
    },
    /// Cluster scope: the LB↔server link of the scoped server is
    /// severed — dispatched attempts are lost and probes time out,
    /// though the server itself keeps running.
    LinkPartition,
    /// Cluster scope: the LB's hash ring skews, redirecting steered
    /// requests toward the pinned server with probability
    /// `1 - 1/factor` (so the target absorbs `factor`× its fair
    /// share as `factor` grows).
    HashSkew {
        /// Concentration factor; must exceed 1.
        factor: f64,
    },
    /// Overload scope: the admission policy is bypassed for the
    /// window — a misconfigured (or crashed) overload guard. Queues
    /// grow unbounded again while the scope holds, exactly the
    /// precondition for a metastable retry storm.
    AdmissionDisable,
}

impl FaultKind {
    /// Static label for logs and trace events.
    pub const fn label(self) -> &'static str {
        match self {
            FaultKind::WireDrop { .. } => "wire-drop",
            FaultKind::WireCorrupt { .. } => "wire-corrupt",
            FaultKind::IrqLoss { .. } => "irq-loss",
            FaultKind::SpuriousIrq { .. } => "spurious-irq",
            FaultKind::StuckIrqMask => "stuck-irq-mask",
            FaultKind::ItrOverride { .. } => "itr-override",
            FaultKind::RxRingClamp { .. } => "rx-ring-clamp",
            FaultKind::MissedKsoftirqdWake { .. } => "missed-wake",
            FaultKind::PollBudgetClamp { .. } => "poll-budget-clamp",
            FaultKind::NapiSignalLoss { .. } => "napi-signal-loss",
            FaultKind::NapiSignalStuck { .. } => "napi-signal-stuck",
            FaultKind::DvfsLatencySpike { .. } => "dvfs-latency-spike",
            FaultKind::ThermalThrottle { .. } => "thermal-throttle",
            FaultKind::CoreStall { .. } => "core-stall",
            FaultKind::LoadSpike { .. } => "load-spike",
            FaultKind::IncastBurst { .. } => "incast-burst",
            FaultKind::ConnectionChurn { .. } => "connection-churn",
            FaultKind::ServerCrash => "server-crash",
            FaultKind::HealthViewStale => "health-view-stale",
            FaultKind::LinkLatencySpike { .. } => "link-latency-spike",
            FaultKind::LinkPartition => "link-partition",
            FaultKind::HashSkew { .. } => "hash-skew",
            FaultKind::AdmissionDisable => "admission-disable",
        }
    }
}

/// Where and when a fault applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultScope {
    /// First instant the fault is live (inclusive).
    pub start: SimTime,
    /// First instant past the fault (exclusive).
    pub end: SimTime,
    /// Restrict to one core/queue, or `None` for all.
    pub core: Option<usize>,
}

impl FaultScope {
    /// A scope covering `[start, end)` on every core.
    pub fn window(start: SimTime, end: SimTime) -> Self {
        FaultScope {
            start,
            end,
            core: None,
        }
    }

    /// Restricts the scope to one core.
    pub fn on_core(mut self, core: usize) -> Self {
        self.core = Some(core);
        self
    }

    /// True if the scope covers `now` on `core` (`core = None` in the
    /// query matches core-pinned scopes too — used by chip-wide
    /// hooks).
    pub fn covers(&self, now: SimTime, core: Option<usize>) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        match (self.core, core) {
            (Some(sc), Some(qc)) => sc == qc,
            _ => true,
        }
    }
}

/// One fault with its scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// When (and where) to inject it.
    pub scope: FaultScope,
}

/// A deterministic fault schedule.
///
/// The plan's `seed` (or, when absent, the run's master seed)
/// parameterizes a dedicated `"fault"` RNG stream, so fault draws
/// never perturb the arrival/service/DVFS streams: the same plan and
/// seed replay identically, and an empty plan draws nothing at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled injections.
    pub specs: Vec<FaultSpec>,
    /// Optional dedicated seed; defaults to the run's master seed.
    pub seed: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the plan schedules no injections.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Sets a dedicated fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Adds one injection.
    pub fn inject(mut self, kind: FaultKind, scope: FaultScope) -> Self {
        self.specs.push(FaultSpec { kind, scope });
        self
    }

    /// Validates every spec against a testbed with `cores` cores.
    ///
    /// A plan with no specs is trivially valid (it injects nothing);
    /// a plan whose specs are degenerate — an empty or inverted scope
    /// window, a core index off the end of the topology, a
    /// probability outside `[0, 1]`, a zero injection period (which
    /// would livelock the event queue), or a zero capacity/budget
    /// clamp — is a typed [`SimError::InvalidConfig`] instead of a
    /// downstream panic or hang.
    pub fn validate(&self, cores: usize) -> Result<(), crate::error::SimError> {
        use crate::error::SimError;
        let prob_ok = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        for (i, spec) in self.specs.iter().enumerate() {
            let scope = spec.scope;
            if scope.start >= scope.end {
                return Err(SimError::invalid(
                    "fault_plan.scope",
                    format!(
                        "spec #{i} ({}) has an empty or inverted window \
                         [{:?}, {:?})",
                        spec.kind.label(),
                        scope.start,
                        scope.end
                    ),
                ));
            }
            if let Some(core) = scope.core {
                if core >= cores {
                    return Err(SimError::invalid(
                        "fault_plan.scope.core",
                        format!(
                            "spec #{i} ({}) pins core {core}, but the testbed \
                             has only {cores} core(s)",
                            spec.kind.label()
                        ),
                    ));
                }
            }
            let bad = |what: &str| {
                Err(SimError::invalid(
                    "fault_plan.kind",
                    format!("spec #{i} ({}): {what}", spec.kind.label()),
                ))
            };
            match spec.kind {
                FaultKind::WireDrop { prob }
                | FaultKind::WireCorrupt { prob }
                | FaultKind::IrqLoss { prob }
                | FaultKind::NapiSignalLoss { prob } => {
                    if !prob_ok(prob) {
                        return bad("probability must be finite and within [0, 1]");
                    }
                }
                FaultKind::MissedKsoftirqdWake { prob, .. } => {
                    if !prob_ok(prob) {
                        return bad("probability must be finite and within [0, 1]");
                    }
                }
                FaultKind::SpuriousIrq { period } | FaultKind::NapiSignalStuck { period } => {
                    if period.is_zero() {
                        return bad("a zero injection period would livelock the event queue");
                    }
                }
                FaultKind::RxRingClamp { capacity } => {
                    if capacity == 0 {
                        return bad("ring capacity clamp must be at least 1");
                    }
                }
                FaultKind::PollBudgetClamp { budget } => {
                    if budget == 0 {
                        return bad("poll budget clamp must be at least 1");
                    }
                }
                FaultKind::LoadSpike { factor } => {
                    if !factor.is_finite() || factor <= 0.0 {
                        return bad("load factor must be finite and positive");
                    }
                }
                FaultKind::IncastBurst { requests } => {
                    if requests == 0 {
                        return bad("incast burst must carry at least 1 request");
                    }
                }
                FaultKind::HashSkew { factor } => {
                    if !factor.is_finite() || factor <= 1.0 {
                        return bad("skew factor must be finite and exceed 1");
                    }
                }
                FaultKind::StuckIrqMask
                | FaultKind::ItrOverride { .. }
                | FaultKind::DvfsLatencySpike { .. }
                | FaultKind::ThermalThrottle { .. }
                | FaultKind::CoreStall { .. }
                | FaultKind::ConnectionChurn { .. }
                | FaultKind::ServerCrash
                | FaultKind::HealthViewStale
                | FaultKind::LinkLatencySpike { .. }
                | FaultKind::LinkPartition
                | FaultKind::AdmissionDisable => {}
            }
        }
        Ok(())
    }
}

/// Counters for every fault actually applied (not merely scheduled).
/// Unconditional — cheap plain integers that let reports and audits
/// reference fault totals without `cfg` noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Request packets dropped or corrupted on the wire.
    pub wire_requests_dropped: u64,
    /// Response packets dropped or corrupted on the wire.
    pub wire_responses_dropped: u64,
    /// Delivered IRQs lost before the core saw them.
    pub irqs_lost: u64,
    /// Spurious IRQs asserted.
    pub spurious_irqs: u64,
    /// IRQ unmask writes blocked by a stuck mask.
    pub irq_unmasks_blocked: u64,
    /// ksoftirqd wakeups delayed.
    pub wakes_delayed: u64,
    /// NAPI signals suppressed before the governor.
    pub signals_suppressed: u64,
    /// Stale NAPI signals replayed to the governor.
    pub signals_replayed: u64,
    /// NAPI polls whose budget was clamped.
    pub polls_clamped: u64,
    /// DVFS transitions that paid the latency spike.
    pub dvfs_delays: u64,
    /// P-state requests clamped by thermal throttling.
    pub pstate_clamps: u64,
    /// Execution starts that paid a core stall.
    pub exec_stalls: u64,
    /// Load-spec switches driven by load spikes.
    pub load_switches: u64,
    /// Requests injected by incast bursts.
    pub incast_requests: u64,
    /// Connection-churn rotations applied.
    pub flow_churns: u64,
    /// Server-crash onsets applied at the fleet tier.
    pub server_crashes: u64,
    /// Server recoveries (crash scopes that ended).
    pub server_recoveries: u64,
    /// Dispatches or probes that paid a link-latency spike.
    pub link_delays: u64,
    /// Attempts lost to a severed LB↔server link.
    pub partition_drops: u64,
    /// Steering decisions redirected by hash skew.
    pub skewed_steers: u64,
    /// Health-probe results ignored by a stale LB view.
    pub stale_probes: u64,
    /// Shed decisions suppressed by a disabled admission guard.
    pub admission_bypasses: u64,
}

impl FaultStats {
    /// Total individual fault applications.
    pub fn total(&self) -> u64 {
        self.wire_requests_dropped
            + self.wire_responses_dropped
            + self.irqs_lost
            + self.spurious_irqs
            + self.irq_unmasks_blocked
            + self.wakes_delayed
            + self.signals_suppressed
            + self.signals_replayed
            + self.polls_clamped
            + self.dvfs_delays
            + self.pstate_clamps
            + self.exec_stalls
            + self.load_switches
            + self.incast_requests
            + self.flow_churns
            + self.server_crashes
            + self.server_recoveries
            + self.link_delays
            + self.partition_drops
            + self.skewed_steers
            + self.stale_probes
            + self.admission_bypasses
    }

    /// Wire packets lost to faults, both directions.
    pub fn wire_dropped(&self) -> u64 {
        self.wire_requests_dropped + self.wire_responses_dropped
    }
}

/// The outcome of a wire-level fault query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The packet is silently dropped.
    Dropped,
    /// The packet arrives corrupted and is discarded at the receiver.
    Corrupted,
}

/// Upper bound on retained injection-log entries; applications keep
/// counting in [`FaultStats`] after the log saturates.
#[cfg(feature = "fault")]
const LOG_CAP: usize = 4096;

/// Evaluates a [`FaultPlan`] at the simulation's hook points.
///
/// Zero-sized and inert without the `fault` feature; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    #[cfg(feature = "fault")]
    plan: FaultPlan,
    #[cfg(feature = "fault")]
    rng: RngStream,
    #[cfg(feature = "fault")]
    stats: FaultStats,
    #[cfg(feature = "fault")]
    log: Vec<(SimTime, &'static str, u32)>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::from_plan(&FaultPlan::default(), 0)
    }
}

impl FaultInjector {
    /// True when the crate was built with the `fault` feature and
    /// injectors actually inject.
    pub const ENABLED: bool = cfg!(feature = "fault");

    /// An injector with no plan (injects nothing).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Builds an injector for `plan`. The fault RNG stream derives
    /// from the plan's own seed when set, else from `master_seed` —
    /// either way it is separate from every model stream.
    pub fn from_plan(plan: &FaultPlan, master_seed: u64) -> Self {
        #[cfg(feature = "fault")]
        {
            let seed = plan.seed.unwrap_or(master_seed);
            FaultInjector {
                plan: plan.clone(),
                rng: RngStream::derive(seed, "fault", 0),
                stats: FaultStats::default(),
                log: Vec::new(),
            }
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (plan, master_seed);
            FaultInjector {}
        }
    }

    /// True if the feature is on and the plan schedules anything.
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "fault")]
        {
            !self.plan.specs.is_empty()
        }
        #[cfg(not(feature = "fault"))]
        {
            false
        }
    }

    /// The plan's specs (empty when inactive) — used by the driver to
    /// schedule scope-boundary events.
    pub fn specs(&self) -> &[FaultSpec] {
        #[cfg(feature = "fault")]
        {
            &self.plan.specs
        }
        #[cfg(not(feature = "fault"))]
        {
            &[]
        }
    }

    /// Counters of faults applied so far.
    pub fn stats(&self) -> FaultStats {
        #[cfg(feature = "fault")]
        {
            self.stats
        }
        #[cfg(not(feature = "fault"))]
        {
            FaultStats::default()
        }
    }

    /// Bounded log of applied injections `(time, label, core)`.
    pub fn log(&self) -> &[(SimTime, &'static str, u32)] {
        #[cfg(feature = "fault")]
        {
            &self.log
        }
        #[cfg(not(feature = "fault"))]
        {
            &[]
        }
    }

    #[cfg(feature = "fault")]
    fn note(&mut self, now: SimTime, label: &'static str, core: u32) {
        if self.log.len() < LOG_CAP {
            self.log.push((now, label, core));
        }
    }

    /// Should this wire packet (heading to queue/core `core`) be lost?
    /// Requests and responses share the same query; the caller counts
    /// the direction via [`note_wire_request_dropped`] /
    /// [`note_wire_response_dropped`].
    ///
    /// [`note_wire_request_dropped`]: Self::note_wire_request_dropped
    /// [`note_wire_response_dropped`]: Self::note_wire_response_dropped
    #[inline]
    pub fn wire_drop(&mut self, now: SimTime, core: usize) -> Option<WireFault> {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return None;
            }
            let FaultInjector { plan, rng, log, .. } = self;
            for spec in &plan.specs {
                if !spec.scope.covers(now, Some(core)) {
                    continue;
                }
                match spec.kind {
                    FaultKind::WireDrop { prob } if rng.chance(prob) => {
                        if log.len() < LOG_CAP {
                            log.push((now, "wire-drop", core as u32));
                        }
                        return Some(WireFault::Dropped);
                    }
                    FaultKind::WireCorrupt { prob } if rng.chance(prob) => {
                        if log.len() < LOG_CAP {
                            log.push((now, "wire-corrupt", core as u32));
                        }
                        return Some(WireFault::Corrupted);
                    }
                    _ => {}
                }
            }
            None
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            None
        }
    }

    /// Records a request lost to [`wire_drop`](Self::wire_drop).
    #[inline]
    pub fn note_wire_request_dropped(&mut self) {
        #[cfg(feature = "fault")]
        {
            self.stats.wire_requests_dropped += 1;
        }
    }

    /// Records a response lost to [`wire_drop`](Self::wire_drop).
    #[inline]
    pub fn note_wire_response_dropped(&mut self) {
        #[cfg(feature = "fault")]
        {
            self.stats.wire_responses_dropped += 1;
        }
    }

    /// Should a delivered IRQ on `core` be lost?
    #[inline]
    pub fn irq_lost(&mut self, now: SimTime, core: usize) -> bool {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return false;
            }
            let FaultInjector {
                plan,
                rng,
                stats,
                log,
            } = self;
            for spec in &plan.specs {
                if let FaultKind::IrqLoss { prob } = spec.kind {
                    if spec.scope.covers(now, Some(core)) && rng.chance(prob) {
                        stats.irqs_lost += 1;
                        if log.len() < LOG_CAP {
                            log.push((now, "irq-loss", core as u32));
                        }
                        return true;
                    }
                }
            }
            false
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            false
        }
    }

    /// Records a spurious IRQ assertion.
    #[inline]
    pub fn note_spurious_irq(&mut self, now: SimTime, core: usize) {
        #[cfg(feature = "fault")]
        {
            self.stats.spurious_irqs += 1;
            self.note(now, "spurious-irq", core as u32);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
        }
    }

    /// Is the IRQ unmask write on `core` blocked by a stuck mask?
    #[inline]
    pub fn irq_mask_stuck(&mut self, now: SimTime, core: usize) -> bool {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return false;
            }
            let hit = self.plan.specs.iter().any(|spec| {
                matches!(spec.kind, FaultKind::StuckIrqMask) && spec.scope.covers(now, Some(core))
            });
            if hit {
                self.stats.irq_unmasks_blocked += 1;
                self.note(now, "stuck-irq-mask", core as u32);
            }
            hit
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            false
        }
    }

    /// The ITR override in force, if any (last matching spec wins).
    #[inline]
    pub fn itr_override(&self, now: SimTime) -> Option<SimDuration> {
        #[cfg(feature = "fault")]
        {
            let mut out = None;
            for spec in &self.plan.specs {
                if let FaultKind::ItrOverride { itr } = spec.kind {
                    if spec.scope.covers(now, None) {
                        out = Some(itr);
                    }
                }
            }
            out
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
            None
        }
    }

    /// The Rx-ring capacity clamp in force, if any (tightest wins).
    #[inline]
    pub fn rx_ring_clamp(&self, now: SimTime) -> Option<usize> {
        #[cfg(feature = "fault")]
        {
            let mut out: Option<usize> = None;
            for spec in &self.plan.specs {
                if let FaultKind::RxRingClamp { capacity } = spec.kind {
                    if spec.scope.covers(now, None) {
                        out = Some(out.map_or(capacity, |c| c.min(capacity)));
                    }
                }
            }
            out
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
            None
        }
    }

    /// Is this ksoftirqd wakeup on `core` missed? Returns the recovery
    /// delay if so.
    #[inline]
    pub fn wake_delay(&mut self, now: SimTime, core: usize) -> Option<SimDuration> {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return None;
            }
            let FaultInjector {
                plan,
                rng,
                stats,
                log,
            } = self;
            for spec in &plan.specs {
                if let FaultKind::MissedKsoftirqdWake { delay, prob } = spec.kind {
                    if spec.scope.covers(now, Some(core)) && rng.chance(prob) {
                        stats.wakes_delayed += 1;
                        if log.len() < LOG_CAP {
                            log.push((now, "missed-wake", core as u32));
                        }
                        return Some(delay);
                    }
                }
            }
            None
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            None
        }
    }

    /// The poll-budget clamp in force on `core`, if any (tightest
    /// wins; the caller should floor the result at 1).
    #[inline]
    pub fn poll_budget_clamp(&mut self, now: SimTime, core: usize) -> Option<usize> {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return None;
            }
            let mut out: Option<usize> = None;
            for spec in &self.plan.specs {
                if let FaultKind::PollBudgetClamp { budget } = spec.kind {
                    if spec.scope.covers(now, Some(core)) {
                        out = Some(out.map_or(budget, |b| b.min(budget)));
                    }
                }
            }
            if out.is_some() {
                self.stats.polls_clamped += 1;
            }
            out
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            None
        }
    }

    /// Should this NAPI poll-batch signal be hidden from the governor?
    #[inline]
    pub fn signal_suppressed(&mut self, now: SimTime, core: usize) -> bool {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return false;
            }
            let FaultInjector {
                plan,
                rng,
                stats,
                log,
            } = self;
            for spec in &plan.specs {
                if let FaultKind::NapiSignalLoss { prob } = spec.kind {
                    if spec.scope.covers(now, Some(core)) && rng.chance(prob) {
                        stats.signals_suppressed += 1;
                        if log.len() < LOG_CAP {
                            log.push((now, "napi-signal-loss", core as u32));
                        }
                        return true;
                    }
                }
            }
            false
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            false
        }
    }

    /// Records a stale NAPI signal replayed to the governor.
    #[inline]
    pub fn note_signal_replayed(&mut self, now: SimTime, core: usize) {
        #[cfg(feature = "fault")]
        {
            self.stats.signals_replayed += 1;
            self.note(now, "napi-signal-stuck", core as u32);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
        }
    }

    /// Extra DVFS write latency in force (sum of active spikes), and a
    /// bump of the counter when nonzero.
    #[inline]
    pub fn dvfs_padding(&mut self, now: SimTime) -> SimDuration {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return SimDuration::ZERO;
            }
            let mut pad = SimDuration::ZERO;
            for spec in &self.plan.specs {
                if let FaultKind::DvfsLatencySpike { extra } = spec.kind {
                    if spec.scope.covers(now, None) {
                        pad += extra;
                    }
                }
            }
            if !pad.is_zero() {
                self.stats.dvfs_delays += 1;
            }
            pad
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
            SimDuration::ZERO
        }
    }

    /// Clamps a requested P-state index under active thermal
    /// throttling (index 0 is fastest; the clamp raises too-fast
    /// requests to the floor index). Returns the effective index.
    #[inline]
    pub fn clamp_pstate(&mut self, now: SimTime, target_index: u8) -> u8 {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return target_index;
            }
            let mut floor_index = 0u8;
            for spec in &self.plan.specs {
                if let FaultKind::ThermalThrottle { floor } = spec.kind {
                    if spec.scope.covers(now, None) {
                        floor_index = floor_index.max(floor);
                    }
                }
            }
            if target_index < floor_index {
                self.stats.pstate_clamps += 1;
                floor_index
            } else {
                target_index
            }
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
            target_index
        }
    }

    /// The execution stall in force on `core`, if any.
    #[inline]
    pub fn exec_stall(&mut self, now: SimTime, core: usize) -> Option<SimDuration> {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return None;
            }
            let mut out = SimDuration::ZERO;
            for spec in &self.plan.specs {
                if let FaultKind::CoreStall { stall } = spec.kind {
                    if spec.scope.covers(now, Some(core)) {
                        out += stall;
                    }
                }
            }
            if out.is_zero() {
                None
            } else {
                self.stats.exec_stalls += 1;
                Some(out)
            }
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            None
        }
    }

    /// The product of active load-spike factors (1.0 when none).
    #[inline]
    pub fn load_factor(&self, now: SimTime) -> f64 {
        #[cfg(feature = "fault")]
        {
            let mut f = 1.0;
            for spec in &self.plan.specs {
                if let FaultKind::LoadSpike { factor } = spec.kind {
                    if spec.scope.covers(now, None) {
                        f *= factor;
                    }
                }
            }
            f
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
            1.0
        }
    }

    /// Records a load-spec switch driven by a load spike.
    #[inline]
    pub fn note_load_switch(&mut self, now: SimTime) {
        #[cfg(feature = "fault")]
        {
            self.stats.load_switches += 1;
            self.note(now, "load-spike", 0);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
        }
    }

    /// Records one incast-burst request injection.
    #[inline]
    pub fn note_incast_request(&mut self, now: SimTime) {
        #[cfg(feature = "fault")]
        {
            self.stats.incast_requests += 1;
            // One log entry per burst, not per injected request.
            if self.log.last().map(|e| e.1) != Some("incast-burst") {
                self.note(now, "incast-burst", 0);
            }
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
        }
    }

    /// Records a connection-churn rotation.
    #[inline]
    pub fn note_flow_churn(&mut self, now: SimTime) {
        #[cfg(feature = "fault")]
        {
            self.stats.flow_churns += 1;
            self.note(now, "connection-churn", 0);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
        }
    }

    /// Is `server` inside an active [`ServerCrash`] scope? Fleet-tier
    /// hook: `scope.core` carries the server index.
    ///
    /// [`ServerCrash`]: FaultKind::ServerCrash
    #[inline]
    pub fn server_crashed(&self, now: SimTime, server: usize) -> bool {
        #[cfg(feature = "fault")]
        {
            self.plan.specs.iter().any(|spec| {
                matches!(spec.kind, FaultKind::ServerCrash) && spec.scope.covers(now, Some(server))
            })
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
            false
        }
    }

    /// Records a server-crash onset at the fleet tier.
    #[inline]
    pub fn note_server_crash(&mut self, now: SimTime, server: usize) {
        #[cfg(feature = "fault")]
        {
            self.stats.server_crashes += 1;
            self.note(now, "server-crash", server as u32);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
        }
    }

    /// Records a server recovery (a crash scope ending).
    #[inline]
    pub fn note_server_recover(&mut self, now: SimTime, server: usize) {
        #[cfg(feature = "fault")]
        {
            self.stats.server_recoveries += 1;
            self.note(now, "server-recover", server as u32);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
        }
    }

    /// Is the load balancer's health view frozen right now?
    #[inline]
    pub fn health_view_stale(&self, now: SimTime) -> bool {
        #[cfg(feature = "fault")]
        {
            self.plan.specs.iter().any(|spec| {
                matches!(spec.kind, FaultKind::HealthViewStale) && spec.scope.covers(now, None)
            })
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
            false
        }
    }

    /// Records a probe result discarded by a stale health view.
    #[inline]
    pub fn note_stale_probe(&mut self, now: SimTime, server: usize) {
        #[cfg(feature = "fault")]
        {
            self.stats.stale_probes += 1;
            self.note(now, "health-view-stale", server as u32);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
        }
    }

    /// Extra LB↔server link latency in force toward `server` (sum of
    /// active spikes), bumping the counter when nonzero.
    #[inline]
    pub fn link_extra(&mut self, now: SimTime, server: usize) -> SimDuration {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return SimDuration::ZERO;
            }
            let mut pad = SimDuration::ZERO;
            for spec in &self.plan.specs {
                if let FaultKind::LinkLatencySpike { extra } = spec.kind {
                    if spec.scope.covers(now, Some(server)) {
                        pad += extra;
                    }
                }
            }
            if !pad.is_zero() {
                self.stats.link_delays += 1;
            }
            pad
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
            SimDuration::ZERO
        }
    }

    /// Is the LB↔server link toward `server` severed right now?
    #[inline]
    pub fn link_partitioned(&self, now: SimTime, server: usize) -> bool {
        #[cfg(feature = "fault")]
        {
            self.plan.specs.iter().any(|spec| {
                matches!(spec.kind, FaultKind::LinkPartition)
                    && spec.scope.covers(now, Some(server))
            })
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
            false
        }
    }

    /// Records an attempt lost to a severed link.
    #[inline]
    pub fn note_partition_drop(&mut self, now: SimTime, server: usize) {
        #[cfg(feature = "fault")]
        {
            self.stats.partition_drops += 1;
            self.note(now, "link-partition", server as u32);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
        }
    }

    /// The active hash-skew `(factor, target_server)`, if any (last
    /// matching spec wins). An unpinned scope targets server 0.
    #[inline]
    pub fn hash_skew(&self, now: SimTime) -> Option<(f64, usize)> {
        #[cfg(feature = "fault")]
        {
            let mut out = None;
            for spec in &self.plan.specs {
                if let FaultKind::HashSkew { factor } = spec.kind {
                    if spec.scope.covers(now, None) {
                        out = Some((factor, spec.scope.core.unwrap_or(0)));
                    }
                }
            }
            out
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = now;
            None
        }
    }

    /// Is the admission policy bypassed on `core` right now? Bumps
    /// the counter and log once per positive query — each bypass is a
    /// request that would have been shed but was not.
    #[inline]
    pub fn admission_bypassed(&mut self, now: SimTime, core: usize) -> bool {
        #[cfg(feature = "fault")]
        {
            if !self.is_active() {
                return false;
            }
            let hit = self.plan.specs.iter().any(|spec| {
                matches!(spec.kind, FaultKind::AdmissionDisable)
                    && spec.scope.covers(now, Some(core))
            });
            if hit {
                self.stats.admission_bypasses += 1;
                self.note(now, "admission-disable", core as u32);
            }
            hit
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, core);
            false
        }
    }

    /// Records a steering decision redirected by hash skew.
    #[inline]
    pub fn note_skewed_steer(&mut self, now: SimTime, server: usize) {
        #[cfg(feature = "fault")]
        {
            self.stats.skewed_steers += 1;
            self.note(now, "hash-skew", server as u32);
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = (now, server);
        }
    }
}

/// How SLO-violation episodes relate to the fault schedule: for each
/// fault scope, the violation episodes that *opened* during the scope
/// (plus a grace window after it) are attributed to that fault, and
/// the recovery time is measured from the fault's onset to the
/// episode's close. Computed by [`join_recovery`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Episodes attributed to some fault scope.
    pub attributed: u64,
    /// Attributed episodes that closed (SLO recovered).
    pub recovered: u64,
    /// Attributed episodes still open at run end.
    pub unrecovered: u64,
    /// Episodes not attributable to any fault scope.
    pub unattributed: u64,
    /// Mean fault-onset → recovery time over recovered episodes.
    pub mean_recovery_ns: u64,
    /// Worst fault-onset → recovery time.
    pub max_recovery_ns: u64,
}

/// Grace window after a fault scope ends during which a newly opened
/// violation episode is still attributed to it.
pub const RECOVERY_GRACE: SimDuration = SimDuration::from_millis(50);

/// Joins fault-scope windows with watchdog violation episodes.
///
/// `episodes` are `(opened_at_ns, closed_at_ns)` pairs with
/// `u64::MAX` marking a still-open episode — the shape
/// `WatchdogReport::episode_log` exposes.
pub fn join_recovery(scopes: &[FaultScope], episodes: &[(u64, u64)]) -> RecoverySummary {
    let mut out = RecoverySummary::default();
    let mut total_recovery = 0u64;
    for &(opened, closed) in episodes {
        let mut best_onset: Option<u64> = None;
        for scope in scopes {
            let start = scope.start.as_nanos();
            let end = scope
                .end
                .as_nanos()
                .saturating_add(RECOVERY_GRACE.as_nanos());
            if opened >= start && opened <= end {
                // Attribute to the earliest-starting covering fault.
                best_onset = Some(best_onset.map_or(start, |b| b.min(start)));
            }
        }
        match best_onset {
            None => out.unattributed += 1,
            Some(onset) => {
                out.attributed += 1;
                if closed == u64::MAX {
                    out.unrecovered += 1;
                } else {
                    out.recovered += 1;
                    let recovery = closed.saturating_sub(onset);
                    total_recovery += recovery;
                    out.max_recovery_ns = out.max_recovery_ns.max(recovery);
                }
            }
        }
    }
    out.mean_recovery_ns = total_recovery.checked_div(out.recovered).unwrap_or(0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut inj = FaultInjector::from_plan(&FaultPlan::new(), 1);
        assert!(!inj.is_active());
        assert!(inj.wire_drop(ms(1), 0).is_none());
        assert!(!inj.irq_lost(ms(1), 0));
        assert!(inj.wake_delay(ms(1), 0).is_none());
        assert_eq!(inj.stats().total(), 0);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn scope_bounds_are_half_open_and_core_pinned() {
        let s = FaultScope::window(ms(10), ms(20)).on_core(2);
        assert!(!s.covers(ms(9), Some(2)));
        assert!(s.covers(ms(10), Some(2)));
        assert!(s.covers(ms(19), Some(2)));
        assert!(!s.covers(ms(20), Some(2)));
        assert!(!s.covers(ms(15), Some(3)));
        // A core-less query (chip-wide hook) matches pinned scopes.
        assert!(s.covers(ms(15), None));
    }

    #[test]
    fn certain_drop_fires_inside_scope_only() {
        let plan = FaultPlan::new().inject(
            FaultKind::WireDrop { prob: 1.0 },
            FaultScope::window(ms(10), ms(20)),
        );
        let mut inj = FaultInjector::from_plan(&plan, 3);
        if !FaultInjector::ENABLED {
            assert!(inj.wire_drop(ms(15), 0).is_none());
            return;
        }
        assert!(inj.wire_drop(ms(5), 0).is_none());
        assert_eq!(inj.wire_drop(ms(15), 0), Some(WireFault::Dropped));
        inj.note_wire_request_dropped();
        assert!(inj.wire_drop(ms(25), 0).is_none());
        assert_eq!(inj.stats().wire_requests_dropped, 1);
        assert_eq!(inj.log().len(), 1);
    }

    #[test]
    fn same_seed_same_plan_replays_identically() {
        let plan = FaultPlan::new().with_seed(99).inject(
            FaultKind::IrqLoss { prob: 0.5 },
            FaultScope::window(ms(0), ms(100)),
        );
        let mut a = FaultInjector::from_plan(&plan, 1);
        let mut b = FaultInjector::from_plan(&plan, 2); // master seed ignored
        let da: Vec<bool> = (0..64).map(|i| a.irq_lost(ms(i), 0)).collect();
        let db: Vec<bool> = (0..64).map(|i| b.irq_lost(ms(i), 0)).collect();
        assert_eq!(da, db, "plan seed overrides the master seed");
        if FaultInjector::ENABLED {
            assert!(da.iter().any(|&x| x), "p=0.5 over 64 draws");
            assert!(da.iter().any(|&x| !x));
        }
    }

    #[test]
    fn modal_overrides_pick_tightest_or_latest() {
        let plan = FaultPlan::new()
            .inject(
                FaultKind::RxRingClamp { capacity: 64 },
                FaultScope::window(ms(0), ms(50)),
            )
            .inject(
                FaultKind::RxRingClamp { capacity: 16 },
                FaultScope::window(ms(10), ms(30)),
            )
            .inject(
                FaultKind::ItrOverride {
                    itr: SimDuration::from_micros(200),
                },
                FaultScope::window(ms(0), ms(50)),
            );
        let inj = FaultInjector::from_plan(&plan, 1);
        if !FaultInjector::ENABLED {
            assert_eq!(inj.rx_ring_clamp(ms(20)), None);
            return;
        }
        assert_eq!(inj.rx_ring_clamp(ms(5)), Some(64));
        assert_eq!(inj.rx_ring_clamp(ms(20)), Some(16), "tightest clamp wins");
        assert_eq!(inj.rx_ring_clamp(ms(60)), None);
        assert_eq!(inj.itr_override(ms(5)), Some(SimDuration::from_micros(200)));
    }

    #[test]
    fn thermal_clamp_raises_fast_requests_only() {
        let plan = FaultPlan::new().inject(
            FaultKind::ThermalThrottle { floor: 5 },
            FaultScope::window(ms(0), ms(100)),
        );
        let mut inj = FaultInjector::from_plan(&plan, 1);
        if !FaultInjector::ENABLED {
            assert_eq!(inj.clamp_pstate(ms(1), 0), 0);
            return;
        }
        assert_eq!(inj.clamp_pstate(ms(1), 0), 5, "P0 clamped to the floor");
        assert_eq!(inj.clamp_pstate(ms(1), 9), 9, "slow request untouched");
        assert_eq!(inj.stats().pstate_clamps, 1);
        assert_eq!(inj.clamp_pstate(ms(200), 0), 0, "outside the scope");
    }

    #[test]
    fn load_factor_composes_multiplicatively() {
        let plan = FaultPlan::new()
            .inject(
                FaultKind::LoadSpike { factor: 2.0 },
                FaultScope::window(ms(0), ms(50)),
            )
            .inject(
                FaultKind::LoadSpike { factor: 3.0 },
                FaultScope::window(ms(25), ms(75)),
            );
        let inj = FaultInjector::from_plan(&plan, 1);
        if !FaultInjector::ENABLED {
            assert_eq!(inj.load_factor(ms(30)), 1.0);
            return;
        }
        assert_eq!(inj.load_factor(ms(10)), 2.0);
        assert_eq!(inj.load_factor(ms(30)), 6.0);
        assert_eq!(inj.load_factor(ms(60)), 3.0);
        assert_eq!(inj.load_factor(ms(80)), 1.0);
    }

    #[test]
    fn recovery_join_attributes_and_measures() {
        let scopes = [FaultScope::window(ms(100), ms(200))];
        let grace = RECOVERY_GRACE.as_nanos();
        let episodes = [
            // Opened during the fault, closed later: attributed.
            (ms(150).as_nanos(), ms(400).as_nanos()),
            // Opened within grace after the fault end: attributed.
            (ms(200).as_nanos() + grace, ms(500).as_nanos()),
            // Opened well before the fault: unattributed.
            (ms(10).as_nanos(), ms(20).as_nanos()),
            // Opened during the fault, never recovered.
            (ms(160).as_nanos(), u64::MAX),
        ];
        let s = join_recovery(&scopes, &episodes);
        assert_eq!(s.attributed, 3);
        assert_eq!(s.recovered, 2);
        assert_eq!(s.unrecovered, 1);
        assert_eq!(s.unattributed, 1);
        // Recovery is measured from the fault onset (100 ms).
        assert_eq!(s.max_recovery_ns, ms(400).as_nanos());
        assert_eq!(
            s.mean_recovery_ns,
            (ms(300).as_nanos() + ms(400).as_nanos()) / 2
        );
    }

    #[test]
    fn labels_are_unique() {
        let kinds = [
            FaultKind::WireDrop { prob: 0.0 },
            FaultKind::WireCorrupt { prob: 0.0 },
            FaultKind::IrqLoss { prob: 0.0 },
            FaultKind::SpuriousIrq {
                period: SimDuration::ZERO,
            },
            FaultKind::StuckIrqMask,
            FaultKind::ItrOverride {
                itr: SimDuration::ZERO,
            },
            FaultKind::RxRingClamp { capacity: 0 },
            FaultKind::MissedKsoftirqdWake {
                delay: SimDuration::ZERO,
                prob: 0.0,
            },
            FaultKind::PollBudgetClamp { budget: 0 },
            FaultKind::NapiSignalLoss { prob: 0.0 },
            FaultKind::NapiSignalStuck {
                period: SimDuration::ZERO,
            },
            FaultKind::DvfsLatencySpike {
                extra: SimDuration::ZERO,
            },
            FaultKind::ThermalThrottle { floor: 0 },
            FaultKind::CoreStall {
                stall: SimDuration::ZERO,
            },
            FaultKind::LoadSpike { factor: 0.0 },
            FaultKind::IncastBurst { requests: 0 },
            FaultKind::ConnectionChurn { shift: 0 },
            FaultKind::ServerCrash,
            FaultKind::HealthViewStale,
            FaultKind::LinkLatencySpike {
                extra: SimDuration::ZERO,
            },
            FaultKind::LinkPartition,
            FaultKind::HashSkew { factor: 0.0 },
            FaultKind::AdmissionDisable,
        ];
        let mut labels: Vec<_> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn cluster_queries_respect_scope_and_pin() {
        let plan = FaultPlan::new()
            .inject(
                FaultKind::ServerCrash,
                FaultScope::window(ms(10), ms(20)).on_core(2),
            )
            .inject(
                FaultKind::HealthViewStale,
                FaultScope::window(ms(30), ms(40)),
            )
            .inject(
                FaultKind::LinkLatencySpike {
                    extra: SimDuration::from_micros(500),
                },
                FaultScope::window(ms(10), ms(20)).on_core(1),
            )
            .inject(
                FaultKind::LinkPartition,
                FaultScope::window(ms(50), ms(60)).on_core(0),
            )
            .inject(
                FaultKind::HashSkew { factor: 4.0 },
                FaultScope::window(ms(10), ms(20)).on_core(3),
            );
        let mut inj = FaultInjector::from_plan(&plan, 1);
        if !FaultInjector::ENABLED {
            assert!(!inj.server_crashed(ms(15), 2));
            assert!(inj.hash_skew(ms(15)).is_none());
            return;
        }
        assert!(inj.server_crashed(ms(15), 2));
        assert!(!inj.server_crashed(ms(15), 1), "pin restricts the crash");
        assert!(!inj.server_crashed(ms(25), 2), "window is half-open");
        assert!(inj.health_view_stale(ms(35)));
        assert!(!inj.health_view_stale(ms(15)));
        assert_eq!(inj.link_extra(ms(15), 1), SimDuration::from_micros(500));
        assert_eq!(inj.link_extra(ms(15), 2), SimDuration::ZERO);
        assert!(inj.link_partitioned(ms(55), 0));
        assert!(!inj.link_partitioned(ms(55), 1));
        assert_eq!(inj.hash_skew(ms(15)), Some((4.0, 3)));
        assert_eq!(inj.hash_skew(ms(45)), None);
        inj.note_server_crash(ms(10), 2);
        inj.note_server_recover(ms(20), 2);
        inj.note_partition_drop(ms(55), 0);
        inj.note_skewed_steer(ms(15), 3);
        inj.note_stale_probe(ms(35), 1);
        let s = inj.stats();
        assert_eq!(s.server_crashes, 1);
        assert_eq!(s.server_recoveries, 1);
        assert_eq!(s.partition_drops, 1);
        assert_eq!(s.skewed_steers, 1);
        assert_eq!(s.stale_probes, 1);
        assert_eq!(s.link_delays, 1);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn validate_accepts_empty_and_sane_plans() {
        assert!(FaultPlan::new().validate(8).is_ok());
        let plan = FaultPlan::new().inject(
            FaultKind::WireDrop { prob: 0.3 },
            FaultScope::window(SimTime::from_millis(10), SimTime::from_millis(20)).on_core(3),
        );
        assert!(plan.validate(8).is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let w = FaultScope::window(SimTime::from_millis(10), SimTime::from_millis(20));
        let inverted = FaultScope::window(SimTime::from_millis(20), SimTime::from_millis(10));
        let cases = [
            FaultPlan::new().inject(FaultKind::WireDrop { prob: 0.5 }, inverted),
            FaultPlan::new().inject(FaultKind::WireDrop { prob: 1.5 }, w),
            FaultPlan::new().inject(FaultKind::WireDrop { prob: f64::NAN }, w),
            FaultPlan::new().inject(FaultKind::IrqLoss { prob: -0.1 }, w),
            FaultPlan::new().inject(
                FaultKind::SpuriousIrq {
                    period: SimDuration::ZERO,
                },
                w,
            ),
            FaultPlan::new().inject(FaultKind::RxRingClamp { capacity: 0 }, w),
            FaultPlan::new().inject(FaultKind::PollBudgetClamp { budget: 0 }, w),
            FaultPlan::new().inject(FaultKind::LoadSpike { factor: 0.0 }, w),
            FaultPlan::new().inject(FaultKind::IncastBurst { requests: 0 }, w),
            FaultPlan::new().inject(FaultKind::StuckIrqMask, w.on_core(8)),
            FaultPlan::new().inject(FaultKind::HashSkew { factor: 1.0 }, w),
            FaultPlan::new().inject(FaultKind::HashSkew { factor: f64::NAN }, w),
            FaultPlan::new().inject(
                FaultKind::HashSkew {
                    factor: f64::INFINITY,
                },
                w,
            ),
        ];
        for (i, plan) in cases.iter().enumerate() {
            let err = plan.validate(8).expect_err("case must be rejected");
            assert!(err.is_config(), "case {i}: wrong error kind: {err:?}");
        }
    }
}
