//! Per-core energy attribution and the governor decision flight
//! recorder.
//!
//! Energy is the paper's headline metric (§6, Fig 8), but a single
//! RAPL scalar per run says only *that* a governor saved joules, not
//! *where* they went. This module is the energy-side twin of
//! [`crate::obs::attrib`]: it decomposes every joule the power model
//! emits into typed [`EnergyComponent`]s — busy execution per P-state
//! bucket, IRQ/softirq handling, C0 idle burn, C-state wake
//! transitions, C1/C6 residency, and package uncore — with an
//! integer-exact conservation identity:
//!
//! ```text
//! measured_uj == Σ breakdown[component]      (per core, microjoules)
//! ```
//!
//! The identity holds exactly because both sides are built from the
//! *same* fixed-point segments: every time a core's power integral
//! advances, the segment's energy is rounded to whole microjoules
//! once, then added to the measured total *and* to exactly one
//! component. A hook-site bug (a segment skipped, double-classified,
//! or mis-rounded) breaks the equality; the audit pass checks it per
//! core and cross-checks the integer total against the independent
//! `f64` incremental integral within rounding tolerance.
//!
//! [`FlightRecorder`] is the second half: a bounded ring of every
//! governor decision with its input-feature snapshot
//! ([`GovDecision`]: utilization, NAPI mode, queue depth, trigger)
//! and the resulting operating-point change — the black-box recorder
//! you replay after a bad tail-latency episode to see what the
//! governor was looking at when it acted.
//!
//! Like the rest of [`crate::obs`], the stateful types
//! ([`CoreEnergyMeter`], [`FlightRecorder`]) are zero-sized no-ops
//! without the `obs` feature; the plain data types stay available so
//! call sites need no `cfg` noise.

use crate::time::{SimDuration, SimTime};
#[cfg(feature = "obs")]
use std::collections::VecDeque;

/// One typed destination for a core's (or the package's) energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum EnergyComponent {
    /// Application execution at the fastest P-state (index 0).
    #[default]
    BusyP0,
    /// Application execution in the upper half of the P-state table
    /// (excluding P0).
    BusyHigh,
    /// Application execution in the lower half of the P-state table
    /// (excluding Pmin).
    BusyLow,
    /// Application execution at the slowest P-state.
    BusyPmin,
    /// Hardirq and softirq (NAPI poll) execution, any P-state.
    Irq,
    /// Idle in CC0 outside a wake window: clocks running, no
    /// instructions (the `disable` sleep policy's burn).
    IdleC0,
    /// CC0 burn inside a C-state exit window: the wake-transition
    /// energy paid between the wake call and the core becoming
    /// usable.
    WakeC0,
    /// CC1 residency (clock-gated leakage).
    SleepC1,
    /// CC6 residency (power-gated residual).
    SleepC6,
    /// Package uncore (LLC, memory controller); package-level, never
    /// appears in a per-core breakdown.
    Uncore,
}

/// Number of energy components.
pub const COMPONENTS: usize = 10;

impl EnergyComponent {
    /// All components, in display order.
    pub const ALL: [EnergyComponent; COMPONENTS] = [
        EnergyComponent::BusyP0,
        EnergyComponent::BusyHigh,
        EnergyComponent::BusyLow,
        EnergyComponent::BusyPmin,
        EnergyComponent::Irq,
        EnergyComponent::IdleC0,
        EnergyComponent::WakeC0,
        EnergyComponent::SleepC1,
        EnergyComponent::SleepC6,
        EnergyComponent::Uncore,
    ];

    /// Short column label for report tables (also the trace-counter
    /// name on the `energy` track).
    pub fn label(self) -> &'static str {
        match self {
            EnergyComponent::BusyP0 => "busy-p0",
            EnergyComponent::BusyHigh => "busy-hi",
            EnergyComponent::BusyLow => "busy-lo",
            EnergyComponent::BusyPmin => "busy-pmin",
            EnergyComponent::Irq => "irq",
            EnergyComponent::IdleC0 => "idle-c0",
            EnergyComponent::WakeC0 => "wake-c0",
            EnergyComponent::SleepC1 => "c1",
            EnergyComponent::SleepC6 => "c6",
            EnergyComponent::Uncore => "uncore",
        }
    }

    /// Metrics-registry counter key for this component.
    pub fn metric_key(self) -> &'static str {
        match self {
            EnergyComponent::BusyP0 => "energy.busy_p0",
            EnergyComponent::BusyHigh => "energy.busy_high",
            EnergyComponent::BusyLow => "energy.busy_low",
            EnergyComponent::BusyPmin => "energy.busy_pmin",
            EnergyComponent::Irq => "energy.irq",
            EnergyComponent::IdleC0 => "energy.idle_c0",
            EnergyComponent::WakeC0 => "energy.wake_c0",
            EnergyComponent::SleepC1 => "energy.c1",
            EnergyComponent::SleepC6 => "energy.c6",
            EnergyComponent::Uncore => "energy.uncore",
        }
    }
}

/// What busy time on a core is serving, for attribution purposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BusyRole {
    /// Application request service.
    #[default]
    App,
    /// Interrupt-side work: hardirq handlers and softirq (NAPI) poll
    /// batches.
    Irq,
}

/// Maps a P-state table position to its busy bucket. `index` 0 is
/// P0 (fastest), `len - 1` is Pmin; interior states split at the
/// table midpoint.
pub fn busy_bucket(index: usize, len: usize) -> EnergyComponent {
    if index == 0 {
        EnergyComponent::BusyP0
    } else if index + 1 >= len {
        EnergyComponent::BusyPmin
    } else if index < len / 2 {
        EnergyComponent::BusyHigh
    } else {
        EnergyComponent::BusyLow
    }
}

/// Rounds one power×time segment to whole microjoules, in isolation.
/// [`CoreEnergyMeter`] additionally carries the sub-microjoule
/// remainder between segments (see its `carry` field) so cumulative
/// drift from the `f64` integral stays bounded; this free function is
/// the remainder-free reference quantization.
pub fn segment_uj(power_w: f64, dt: SimDuration) -> u64 {
    let uj = power_w * dt.as_nanos() as f64 / 1000.0;
    if uj <= 0.0 {
        0
    } else {
        uj.round() as u64
    }
}

/// The activity class of one accounting segment, as the CPU model
/// sees it. The meter refines `Busy` by [`BusyRole`] and splits
/// `IdleC0` at the wake-window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterClass {
    /// Executing instructions at P-state `index` of a `len`-entry
    /// table.
    Busy {
        /// P-state table index (0 = fastest).
        index: usize,
        /// P-state table length.
        len: usize,
    },
    /// In CC0, not executing.
    IdleC0,
    /// In CC1.
    SleepC1,
    /// In CC6.
    SleepC6,
}

/// One core's per-request-free energy decomposition, microjoules per
/// [`EnergyComponent`]. Plain data, always available.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyBreakdown {
    uj: [u64; COMPONENTS],
}

impl EnergyBreakdown {
    /// Adds `uj` microjoules to `component`. Saturates: a pinned
    /// counter shows as an audit imbalance, not a wrap.
    pub fn add_uj(&mut self, component: EnergyComponent, uj: u64) {
        let slot = &mut self.uj[component as usize];
        *slot = slot.saturating_add(uj);
    }

    /// Microjoules attributed to `component`.
    pub fn get_uj(&self, component: EnergyComponent) -> u64 {
        self.uj[component as usize]
    }

    /// Sum over all components — must equal the measured total.
    pub fn total_uj(&self) -> u64 {
        self.uj.iter().fold(0u64, |acc, &n| acc.saturating_add(n))
    }

    /// Iterates `(component, microjoules)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyComponent, u64)> + '_ {
        EnergyComponent::ALL
            .iter()
            .map(move |&c| (c, self.uj[c as usize]))
    }

    /// Component-wise sum of two breakdowns (saturating).
    pub fn merged(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        let mut out = *self;
        for (c, uj) in other.iter() {
            out.add_uj(c, uj);
        }
        out
    }

    /// Component-wise difference `self − earlier` (saturating at 0;
    /// both sides grow monotonically, so a genuine window delta never
    /// clamps).
    pub fn since(&self, earlier: &EnergyBreakdown) -> EnergyBreakdown {
        let mut out = EnergyBreakdown::default();
        for (c, uj) in self.iter() {
            out.add_uj(c, uj.saturating_sub(earlier.get_uj(c)));
        }
        out
    }
}

/// The fixed-point energy accumulator embedded in each simulated
/// core.
///
/// The CPU model drives it alongside its `f64` power integral: every
/// accounting segment calls [`advance`](Self::advance) with the
/// segment's instantaneous power and activity class. The meter keeps
/// its own cursor, so observability-only advancement points (role
/// changes, mode-boundary snapshots) never perturb the `f64` path —
/// golden energy fixtures stay bit-identical with the feature on or
/// off.
///
/// Zero-sized no-op without the `obs` feature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreEnergyMeter {
    #[cfg(feature = "obs")]
    last: SimTime,
    #[cfg(feature = "obs")]
    wake_until: SimTime,
    #[cfg(feature = "obs")]
    role: BusyRole,
    #[cfg(feature = "obs")]
    measured_uj: u64,
    #[cfg(feature = "obs")]
    breakdown: EnergyBreakdown,
    /// Sub-microjoule remainder carried between segments. Many
    /// segments repeat the exact same power×duration product (fixed
    /// hardirq cost at a fixed frequency), so independent per-segment
    /// rounding would bias in one direction and drift linearly from
    /// the `f64` integral; carrying the remainder bounds the
    /// cumulative error at half a microjoule.
    #[cfg(feature = "obs")]
    carry: f64,
}

impl CoreEnergyMeter {
    /// True when the crate was built with the `obs` feature and
    /// meters actually attribute.
    pub const ENABLED: bool = cfg!(feature = "obs");

    /// Creates a meter anchored at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(feature = "obs")]
    fn add(&mut self, component: EnergyComponent, power_w: f64, dt: SimDuration) {
        let exact = (power_w * dt.as_nanos() as f64 / 1000.0).max(0.0);
        let acc = exact + self.carry;
        let uj = if acc <= 0.0 { 0 } else { acc.round() as u64 };
        self.carry = acc - uj as f64;
        self.measured_uj = self.measured_uj.saturating_add(uj);
        self.breakdown.add_uj(component, uj);
    }

    /// Advances the meter's cursor to `now`, attributing the elapsed
    /// segment at `power_w` watts under activity `class`. `Busy`
    /// segments are refined by the current [`BusyRole`]; `IdleC0`
    /// segments split at the wake-window boundary so transition burn
    /// lands in [`EnergyComponent::WakeC0`].
    #[inline]
    pub fn advance(&mut self, now: SimTime, power_w: f64, class: MeterClass) {
        #[cfg(feature = "obs")]
        {
            if now <= self.last {
                return;
            }
            let dt = now.saturating_since(self.last);
            match class {
                MeterClass::Busy { index, len } => {
                    let component = match self.role {
                        BusyRole::App => busy_bucket(index, len),
                        BusyRole::Irq => EnergyComponent::Irq,
                    };
                    self.add(component, power_w, dt);
                }
                MeterClass::IdleC0 => {
                    if self.last < self.wake_until {
                        let split = self.wake_until.min(now);
                        self.add(
                            EnergyComponent::WakeC0,
                            power_w,
                            split.saturating_since(self.last),
                        );
                        if now > split {
                            self.add(
                                EnergyComponent::IdleC0,
                                power_w,
                                now.saturating_since(split),
                            );
                        }
                    } else {
                        self.add(EnergyComponent::IdleC0, power_w, dt);
                    }
                }
                MeterClass::SleepC1 => self.add(EnergyComponent::SleepC1, power_w, dt),
                MeterClass::SleepC6 => self.add(EnergyComponent::SleepC6, power_w, dt),
            }
            self.last = now;
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (now, power_w, class);
        }
    }

    /// Sets the busy-attribution role for segments from here on.
    /// Callers must advance the meter to the role-change time first.
    #[inline]
    pub fn set_role(&mut self, role: BusyRole) {
        #[cfg(feature = "obs")]
        {
            self.role = role;
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = role;
        }
    }

    /// The current busy-attribution role.
    pub fn role(&self) -> BusyRole {
        #[cfg(feature = "obs")]
        {
            self.role
        }
        #[cfg(not(feature = "obs"))]
        {
            BusyRole::App
        }
    }

    /// Declares a C-state exit in progress until `until`: CC0 idle
    /// burn before that instant is wake-transition energy. Extends
    /// (never shortens) any open window.
    #[inline]
    pub fn note_wake(&mut self, until: SimTime) {
        #[cfg(feature = "obs")]
        {
            self.wake_until = self.wake_until.max(until);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = until;
        }
    }

    /// Total microjoules measured so far (0 without the feature).
    pub fn measured_uj(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.measured_uj
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// The component decomposition so far (empty without the
    /// feature).
    pub fn breakdown(&self) -> EnergyBreakdown {
        #[cfg(feature = "obs")]
        {
            self.breakdown
        }
        #[cfg(not(feature = "obs"))]
        {
            EnergyBreakdown::default()
        }
    }
}

/// What prompted a governor to act.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum DecisionTrigger {
    /// The periodic utilization sample tick.
    #[default]
    Sample,
    /// A ksoftirqd wake (poll overrun — NMAP's polling signal).
    Ksoftirqd,
    /// A retired NAPI poll batch.
    PollBatch,
    /// A NIC Rx-window observation.
    NicWindow,
    /// A completed request's end-to-end latency sample.
    RequestLatency,
}

/// Number of decision triggers.
pub const TRIGGERS: usize = 5;

impl DecisionTrigger {
    /// All triggers, in declaration order.
    pub const ALL: [DecisionTrigger; TRIGGERS] = [
        DecisionTrigger::Sample,
        DecisionTrigger::Ksoftirqd,
        DecisionTrigger::PollBatch,
        DecisionTrigger::NicWindow,
        DecisionTrigger::RequestLatency,
    ];

    /// Short label for reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            DecisionTrigger::Sample => "sample",
            DecisionTrigger::Ksoftirqd => "ksoftirqd",
            DecisionTrigger::PollBatch => "poll",
            DecisionTrigger::NicWindow => "nic",
            DecisionTrigger::RequestLatency => "latency",
        }
    }
}

/// One governor decision with the feature snapshot it acted on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovDecision {
    /// When the decision was applied.
    pub at: SimTime,
    /// The core whose operating point changed.
    pub core: u32,
    /// What prompted the governor to run.
    pub trigger: DecisionTrigger,
    /// The core's last sampled CC0 utilization, per mille.
    pub util_permille: u32,
    /// True if the core's NAPI context was in polling mode.
    pub polling: bool,
    /// Rx-ring backlog of the core's queue at decision time.
    pub queue_depth: u32,
    /// P-state index before the decision (0 = fastest).
    pub from_pstate: u32,
    /// Requested P-state index (0 = fastest).
    pub to_pstate: u32,
    /// True when the action targeted every core (chip-wide DVFS).
    pub chip_wide: bool,
}

/// A bounded ring of [`GovDecision`]s with drop accounting — the
/// governor's flight recorder. When full, the *oldest* decision is
/// evicted (a flight recorder keeps the most recent history).
///
/// Zero-sized no-op without the `obs` feature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecorder {
    #[cfg(feature = "obs")]
    ring: VecDeque<GovDecision>,
    #[cfg(feature = "obs")]
    capacity: usize,
    #[cfg(feature = "obs")]
    evicted: u64,
    #[cfg(feature = "obs")]
    total: u64,
    #[cfg(feature = "obs")]
    raises: u64,
    #[cfg(feature = "obs")]
    lowers: u64,
    #[cfg(feature = "obs")]
    by_trigger: [u64; TRIGGERS],
}

impl FlightRecorder {
    /// True when the crate was built with the `obs` feature and
    /// recorders actually record.
    pub const ENABLED: bool = cfg!(feature = "obs");

    /// A recorder retaining up to `capacity` most-recent decisions.
    pub fn with_capacity(capacity: usize) -> Self {
        #[cfg(feature = "obs")]
        {
            FlightRecorder {
                ring: VecDeque::new(),
                capacity,
                ..Self::default()
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = capacity;
            FlightRecorder {}
        }
    }

    /// Records one decision, evicting the oldest if the ring is
    /// full.
    #[inline]
    pub fn record(&mut self, decision: GovDecision) {
        #[cfg(feature = "obs")]
        {
            self.total += 1;
            self.by_trigger[decision.trigger as usize] += 1;
            // P0 is index 0: a smaller target index raises the
            // operating point.
            if decision.to_pstate < decision.from_pstate {
                self.raises += 1;
            } else if decision.to_pstate > decision.from_pstate {
                self.lowers += 1;
            }
            if self.capacity == 0 {
                self.evicted += 1;
                return;
            }
            if self.ring.len() >= self.capacity {
                self.ring.pop_front();
                self.evicted += 1;
            }
            self.ring.push_back(decision);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = decision;
        }
    }

    /// Decisions ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.total
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Decisions evicted from the ring to make room.
    pub fn evicted(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.evicted
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Freezes the recorder into a [`FlightSummary`] (empty without
    /// the `obs` feature).
    pub fn summary(&self) -> FlightSummary {
        #[cfg(feature = "obs")]
        {
            FlightSummary {
                total: self.total,
                evicted: self.evicted,
                raises: self.raises,
                lowers: self.lowers,
                by_trigger: self.by_trigger.to_vec(),
                decisions: self.ring.iter().copied().collect(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            FlightSummary::default()
        }
    }
}

/// End-of-run flight-recorder summary (lives in `RunResult`;
/// `PartialEq` so determinism suites compare it between same-seed
/// runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightSummary {
    /// Decisions ever recorded.
    pub total: u64,
    /// Decisions evicted from the bounded ring.
    pub evicted: u64,
    /// Decisions that raised the operating point (lower P-state
    /// index).
    pub raises: u64,
    /// Decisions that lowered the operating point.
    pub lowers: u64,
    /// Decision counts per [`DecisionTrigger`], in
    /// [`DecisionTrigger::ALL`] order (empty without the `obs`
    /// feature).
    pub by_trigger: Vec<u64>,
    /// The retained most-recent decisions, oldest first.
    pub decisions: Vec<GovDecision>,
}

impl FlightSummary {
    /// Decision count for one trigger (0 if the feature is off).
    pub fn trigger_count(&self, trigger: DecisionTrigger) -> u64 {
        self.by_trigger.get(trigger as usize).copied().unwrap_or(0)
    }
}

/// Energy split across packet-processing modes, microjoules. The
/// three buckets partition the cores' measured energy exactly:
/// wake-transition burn is `transition`, everything else lands in the
/// NAPI mode the core's context was in while it burned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeEnergy {
    /// Core energy burned while the context was in interrupt mode.
    pub interrupt_uj: u64,
    /// Core energy burned while the context was in polling mode.
    pub polling_uj: u64,
    /// C-state wake-transition energy (mode-independent).
    pub transition_uj: u64,
}

impl ModeEnergy {
    /// Sum of the three buckets — equals the cores' measured total.
    pub fn total_uj(&self) -> u64 {
        self.interrupt_uj
            .saturating_add(self.polling_uj)
            .saturating_add(self.transition_uj)
    }
}

/// One core's row in an [`EnergySummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreEnergySummary {
    /// Core id.
    pub core: u32,
    /// Measured microjoules over the window.
    pub measured_uj: u64,
    /// Attributed decomposition over the window (sums to
    /// `measured_uj`).
    pub breakdown: EnergyBreakdown,
}

/// Window-scoped energy attribution for one run (lives in
/// `RunResult`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnergySummary {
    /// Per-core measured totals and decompositions.
    pub cores: Vec<CoreEnergySummary>,
    /// Package uncore energy over the window.
    pub uncore_uj: u64,
    /// The same core energy split by packet-processing mode.
    pub modes: ModeEnergy,
    /// RAPL interval reads that had to clamp a negative delta (a
    /// power-model non-monotonicity; audited to be 0).
    pub rapl_clamps: u64,
}

impl EnergySummary {
    /// Measured package microjoules: cores plus uncore.
    pub fn measured_total_uj(&self) -> u64 {
        self.cores
            .iter()
            .fold(self.uncore_uj, |acc, c| acc.saturating_add(c.measured_uj))
    }

    /// Attributed package microjoules: component sums plus uncore.
    pub fn attributed_total_uj(&self) -> u64 {
        self.cores.iter().fold(self.uncore_uj, |acc, c| {
            acc.saturating_add(c.breakdown.total_uj())
        })
    }

    /// Microjoules attributed to `component` across all cores
    /// (`Uncore` returns the package uncore term).
    pub fn component_uj(&self, component: EnergyComponent) -> u64 {
        if component == EnergyComponent::Uncore {
            return self.uncore_uj;
        }
        self.cores.iter().fold(0u64, |acc, c| {
            acc.saturating_add(c.breakdown.get_uj(component))
        })
    }

    /// The fraction of measured package energy in `component`.
    pub fn share(&self, component: EnergyComponent) -> f64 {
        let total = self.measured_total_uj();
        if total == 0 {
            return 0.0;
        }
        self.component_uj(component) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn busy_bucket_covers_the_table() {
        // 16-entry table: 0 → P0, 15 → Pmin, 1..8 → high, 8..15 → low.
        assert_eq!(busy_bucket(0, 16), EnergyComponent::BusyP0);
        assert_eq!(busy_bucket(1, 16), EnergyComponent::BusyHigh);
        assert_eq!(busy_bucket(7, 16), EnergyComponent::BusyHigh);
        assert_eq!(busy_bucket(8, 16), EnergyComponent::BusyLow);
        assert_eq!(busy_bucket(14, 16), EnergyComponent::BusyLow);
        assert_eq!(busy_bucket(15, 16), EnergyComponent::BusyPmin);
        // Degenerate 2-entry table still lands on the endpoints.
        assert_eq!(busy_bucket(0, 2), EnergyComponent::BusyP0);
        assert_eq!(busy_bucket(1, 2), EnergyComponent::BusyPmin);
    }

    #[test]
    fn segment_rounding_is_single_point() {
        assert_eq!(segment_uj(1.0, SimDuration::from_micros(1)), 1);
        assert_eq!(segment_uj(0.0004, SimDuration::from_micros(1)), 0);
        assert_eq!(segment_uj(10.0, SimDuration::from_millis(1)), 10_000);
        assert_eq!(segment_uj(-1.0, SimDuration::from_micros(1)), 0);
    }

    #[test]
    fn meter_conserves_across_roles_and_wakes() {
        let mut m = CoreEnergyMeter::new();
        // 0–10 µs: C6 sleep.
        m.advance(t(10), 0.12, MeterClass::SleepC6);
        // Wake window until 14 µs; 10–14 idle burn is transition.
        m.note_wake(t(14));
        m.advance(t(14), 5.0, MeterClass::IdleC0);
        // 14–20: IRQ-role busy.
        m.set_role(BusyRole::Irq);
        m.advance(t(20), 30.0, MeterClass::Busy { index: 0, len: 16 });
        // 20–40: app busy at P0, then 40–50 at Pmin.
        m.set_role(BusyRole::App);
        m.advance(t(40), 30.0, MeterClass::Busy { index: 0, len: 16 });
        m.advance(t(50), 8.0, MeterClass::Busy { index: 15, len: 16 });
        // 50–60: plain idle (wake window long past).
        m.advance(t(60), 5.0, MeterClass::IdleC0);
        if !CoreEnergyMeter::ENABLED {
            assert_eq!(m.measured_uj(), 0);
            return;
        }
        let b = m.breakdown();
        assert_eq!(b.get_uj(EnergyComponent::SleepC6), 1); // 0.12 W × 10 µs
        assert_eq!(b.get_uj(EnergyComponent::WakeC0), 20); // 5 W × 4 µs
        assert_eq!(b.get_uj(EnergyComponent::Irq), 180); // 30 W × 6 µs
        assert_eq!(b.get_uj(EnergyComponent::BusyP0), 600); // 30 W × 20 µs
        assert_eq!(b.get_uj(EnergyComponent::BusyPmin), 80); // 8 W × 10 µs
        assert_eq!(b.get_uj(EnergyComponent::IdleC0), 50); // 5 W × 10 µs
        assert_eq!(m.measured_uj(), b.total_uj(), "conservation");
        assert_eq!(m.measured_uj(), 931);
    }

    #[test]
    fn idle_segment_straddling_wake_window_splits_exactly() {
        let mut m = CoreEnergyMeter::new();
        m.note_wake(t(6));
        // One 0–10 µs idle segment: 6 µs transition + 4 µs idle, and
        // the two separately rounded halves still sum to the
        // measured total by construction.
        m.advance(t(10), 3.3, MeterClass::IdleC0);
        if CoreEnergyMeter::ENABLED {
            let b = m.breakdown();
            assert_eq!(b.get_uj(EnergyComponent::WakeC0), 20); // 19.8 → 20
            assert_eq!(b.get_uj(EnergyComponent::IdleC0), 13); // 13.2 → 13
            assert_eq!(m.measured_uj(), b.total_uj());
        }
    }

    #[test]
    fn stale_advance_is_a_no_op() {
        let mut m = CoreEnergyMeter::new();
        m.advance(t(10), 5.0, MeterClass::IdleC0);
        let before = m.measured_uj();
        m.advance(t(10), 5.0, MeterClass::IdleC0);
        m.advance(t(5), 50.0, MeterClass::Busy { index: 0, len: 16 });
        assert_eq!(m.measured_uj(), before);
    }

    #[test]
    fn recorder_keeps_most_recent_and_counts_evictions() {
        let mut r = FlightRecorder::with_capacity(2);
        for i in 0..5u32 {
            r.record(GovDecision {
                at: t(i as u64),
                core: i,
                trigger: DecisionTrigger::Sample,
                from_pstate: 4,
                to_pstate: if i % 2 == 0 { 0 } else { 8 },
                ..GovDecision::default()
            });
        }
        let s = r.summary();
        if FlightRecorder::ENABLED {
            assert_eq!(s.total, 5);
            assert_eq!(s.evicted, 3);
            assert_eq!(s.raises, 3);
            assert_eq!(s.lowers, 2);
            assert_eq!(s.trigger_count(DecisionTrigger::Sample), 5);
            let cores: Vec<_> = s.decisions.iter().map(|d| d.core).collect();
            assert_eq!(cores, vec![3, 4], "ring keeps the most recent");
        } else {
            assert_eq!(s.total, 0);
            assert!(s.decisions.is_empty());
        }
    }

    #[test]
    fn summary_identities_and_shares() {
        let mut a = EnergyBreakdown::default();
        a.add_uj(EnergyComponent::BusyP0, 600);
        a.add_uj(EnergyComponent::IdleC0, 400);
        let s = EnergySummary {
            cores: vec![CoreEnergySummary {
                core: 0,
                measured_uj: 1000,
                breakdown: a,
            }],
            uncore_uj: 1000,
            modes: ModeEnergy {
                interrupt_uj: 700,
                polling_uj: 200,
                transition_uj: 100,
            },
            rapl_clamps: 0,
        };
        assert_eq!(s.measured_total_uj(), 2000);
        assert_eq!(s.attributed_total_uj(), 2000);
        assert_eq!(s.modes.total_uj(), 1000, "modes partition core energy");
        assert_eq!(s.component_uj(EnergyComponent::Uncore), 1000);
        assert!((s.share(EnergyComponent::BusyP0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn breakdown_delta_roundtrips() {
        let mut early = EnergyBreakdown::default();
        early.add_uj(EnergyComponent::Irq, 5);
        let mut late = early;
        late.add_uj(EnergyComponent::Irq, 7);
        late.add_uj(EnergyComponent::SleepC1, 3);
        let d = late.since(&early);
        assert_eq!(d.get_uj(EnergyComponent::Irq), 7);
        assert_eq!(d.get_uj(EnergyComponent::SleepC1), 3);
        assert_eq!(early.merged(&d), late);
    }

    #[test]
    fn component_labels_are_unique() {
        let mut labels: Vec<_> = EnergyComponent::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), COMPONENTS);
        let mut keys: Vec<_> = EnergyComponent::ALL
            .iter()
            .map(|c| c.metric_key())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), COMPONENTS);
    }

    #[test]
    fn zero_cost_shapes_when_disabled() {
        if !CoreEnergyMeter::ENABLED {
            assert_eq!(std::mem::size_of::<CoreEnergyMeter>(), 0);
            assert_eq!(std::mem::size_of::<FlightRecorder>(), 0);
        }
    }
}
