//! Per-request latency attribution.
//!
//! The paper's causal story (§3) is that tail latency under reactive
//! governors is *not* service time — it is transition overhead:
//! P-state ramps stalling execution, C-state wakes delaying the
//! hardirq, interrupt moderation batching arrivals, ksoftirqd
//! scheduling delay once polls overrun. This module decomposes every
//! request's end-to-end latency into those stages, exactly:
//!
//! ```text
//! e2e = Wire + ItrDelay + CstateWake + IrqDispatch + KsoftirqdSched
//!     + RingWait + PollBatch + AppQueue + Preempt + AppService
//!     + PstateStall
//! ```
//!
//! The identity holds with integer-nanosecond equality for every
//! single request — not on average — because each stage is carved out
//! of the request's own timeline:
//!
//! * The NIC-ring interval `[enqueue, poll-claim]` is partitioned by
//!   a cursor walking the serving core's [`ChainMarks`] (IRQ fire,
//!   wake end, hardirq retire, ksoftirqd wait) in time order; stale
//!   marks from earlier interrupt chains clamp to zero-length slices,
//!   so the slices always sum to the interval.
//! * The application span `[app-start, app-finish]` splits into
//!   preemption gaps (wall time not executing), CC6 cache-refill debt,
//!   the ideal service time at the fastest P-state, and the residual —
//!   which is by definition the P-state slowdown stall.
//!
//! [`AttribTracker`] carries the per-request state between pipeline
//! events and aggregates completed breakdowns into per-stage
//! histograms; the conservation ledger cross-checks that the
//! attributed nanoseconds equal the measured end-to-end nanoseconds
//! at any simulation time. Like the rest of [`crate::obs`], the
//! tracker is a zero-sized no-op without the `obs` feature; the plain
//! data types ([`Stage`], [`Breakdown`], [`ChainMarks`]) are always
//! available.

#[cfg(feature = "obs")]
use crate::stats::histogram::Histogram;
use crate::time::{SimDuration, SimTime};
#[cfg(feature = "obs")]
use std::collections::BTreeMap;

/// One stage of a request's end-to-end latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Both link traversals (client → NIC, NIC → client).
    #[default]
    Wire,
    /// Interrupt-moderation delay: enqueue until the Rx IRQ fires.
    ItrDelay,
    /// C-state exit: wake transition latency plus CC6 cache-refill
    /// debt paid before useful work resumes.
    CstateWake,
    /// Hardirq execution until the softirq poll loop takes over.
    IrqDispatch,
    /// Waiting for the scheduler to run ksoftirqd after a handoff.
    KsoftirqdSched,
    /// Residual ring residency: waiting behind earlier poll batches.
    RingWait,
    /// The poll batch that claimed the packet: claim → socket
    /// delivery.
    PollBatch,
    /// Socket-backlog wait until the app thread picks the request up.
    AppQueue,
    /// Preemption gaps while the request's service was descheduled.
    Preempt,
    /// Ideal service time at the fastest P-state.
    AppService,
    /// Residual service slowdown from running below the fastest
    /// P-state (including DVFS transition stalls).
    PstateStall,
}

/// Number of stages.
pub const STAGES: usize = 11;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGES] = [
        Stage::Wire,
        Stage::ItrDelay,
        Stage::CstateWake,
        Stage::IrqDispatch,
        Stage::KsoftirqdSched,
        Stage::RingWait,
        Stage::PollBatch,
        Stage::AppQueue,
        Stage::Preempt,
        Stage::AppService,
        Stage::PstateStall,
    ];

    /// Short column label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Wire => "wire",
            Stage::ItrDelay => "itr",
            Stage::CstateWake => "cwake",
            Stage::IrqDispatch => "irq",
            Stage::KsoftirqdSched => "ksoft",
            Stage::RingWait => "ring",
            Stage::PollBatch => "poll",
            Stage::AppQueue => "appq",
            Stage::Preempt => "preempt",
            Stage::AppService => "service",
            Stage::PstateStall => "pstall",
        }
    }

    /// Metrics-registry histogram key for this stage.
    pub fn metric_key(self) -> &'static str {
        match self {
            Stage::Wire => "attrib.wire",
            Stage::ItrDelay => "attrib.itr",
            Stage::CstateWake => "attrib.cwake",
            Stage::IrqDispatch => "attrib.irq",
            Stage::KsoftirqdSched => "attrib.ksoft",
            Stage::RingWait => "attrib.ring",
            Stage::PollBatch => "attrib.poll",
            Stage::AppQueue => "attrib.appq",
            Stage::Preempt => "attrib.preempt",
            Stage::AppService => "attrib.service",
            Stage::PstateStall => "attrib.pstall",
        }
    }

    /// Trace-counter name for this stage's share track.
    pub fn share_label(self) -> &'static str {
        match self {
            Stage::Wire => "share-wire",
            Stage::ItrDelay => "share-itr",
            Stage::CstateWake => "share-cwake",
            Stage::IrqDispatch => "share-irq",
            Stage::KsoftirqdSched => "share-ksoft",
            Stage::RingWait => "share-ring",
            Stage::PollBatch => "share-poll",
            Stage::AppQueue => "share-appq",
            Stage::Preempt => "share-preempt",
            Stage::AppService => "share-service",
            Stage::PstateStall => "share-pstall",
        }
    }
}

/// One request's latency decomposition, nanoseconds per [`Stage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    ns: [u64; STAGES],
}

impl Breakdown {
    /// Adds `d` to `stage`. Saturates: an hours-long pathological
    /// stall must not wrap the per-stage counter mid-run.
    pub fn add(&mut self, stage: Stage, d: SimDuration) {
        let slot = &mut self.ns[stage as usize];
        *slot = slot.saturating_add(d.as_nanos());
    }

    /// Nanoseconds attributed to `stage`.
    pub fn get_ns(&self, stage: Stage) -> u64 {
        self.ns[stage as usize]
    }

    /// Sum over all stages — must equal the measured end-to-end
    /// latency.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().fold(0u64, |acc, &n| acc.saturating_add(n))
    }

    /// Iterates `(stage, nanoseconds)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL.iter().map(move |&s| (s, self.ns[s as usize]))
    }
}

/// Per-core timestamps of the current interrupt-processing chain.
///
/// The testbed records these as the chain advances (IRQ fires → core
/// wakes → hardirq retires → ksoftirqd waits/runs); the ring-interval
/// partition walks them with a cursor. Marks from *earlier* chains
/// are harmless: the cursor clamps any mark before the packet's
/// enqueue (or before a later mark already consumed) to a zero-length
/// slice.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainMarks {
    /// When the Rx IRQ fired.
    pub irq_at: Option<SimTime>,
    /// When the core's C-state exit (plus any cache-refill debt)
    /// completed.
    pub wake_end: Option<SimTime>,
    /// When the hardirq handler retired (softirq poll begins).
    pub hardirq_end: Option<SimTime>,
    /// When ksoftirqd last became runnable-but-waiting.
    pub ksoftirqd_queued: Option<SimTime>,
    /// When ksoftirqd last started polling after a wait.
    pub ksoftirqd_running: Option<SimTime>,
}

/// Partitions the ring interval `[enqueue, claim]` into kernel-side
/// stages by walking the chain marks in time order. Every slice is
/// non-negative and the slices sum exactly to `claim − enqueue`.
pub fn attribute_ring(b: &mut Breakdown, enqueue: SimTime, claim: SimTime, marks: &ChainMarks) {
    let mut cursor = enqueue;
    let mut take = |b: &mut Breakdown, stage: Stage, upto: SimTime| {
        let upto = upto.min(claim);
        if upto > cursor {
            b.add(stage, upto.saturating_since(cursor));
            cursor = upto;
        }
    };
    if let Some(t) = marks.irq_at {
        take(b, Stage::ItrDelay, t);
    }
    if let Some(t) = marks.wake_end {
        take(b, Stage::CstateWake, t);
    }
    if let Some(t) = marks.hardirq_end {
        take(b, Stage::IrqDispatch, t);
    }
    if let Some(queued) = marks.ksoftirqd_queued {
        // Time before ksoftirqd was queued went to earlier softirq
        // poll batches working the ring.
        take(b, Stage::RingWait, queued);
        take(
            b,
            Stage::KsoftirqdSched,
            marks.ksoftirqd_running.unwrap_or(claim),
        );
    }
    take(b, Stage::RingWait, claim);
}

/// A finished request's attribution, as returned by
/// [`AttribTracker::completed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedAttrib {
    /// The per-stage decomposition.
    pub breakdown: Breakdown,
    /// The core that served the request.
    pub core: u32,
    /// Measured end-to-end latency, nanoseconds.
    pub e2e_ns: u64,
    /// True when the stage sums equal the measured latency exactly
    /// (the conservation property; a mismatch is an attribution bug).
    pub matches: bool,
}

#[cfg(feature = "obs")]
#[derive(Debug, Clone)]
struct Pending {
    breakdown: Breakdown,
    sent_at: SimTime,
    claim_at: SimTime,
    delivered_at: SimTime,
    app_start: SimTime,
    finished_at: SimTime,
    core: u32,
    /// Start of the currently executing chunk, if the request is on
    /// a core right now.
    chunk_start: Option<SimTime>,
    /// Wall time actually spent executing (sum of chunks).
    executed: SimDuration,
    /// CC6 cache-refill debt paid inside the app's own chunk.
    debt: SimDuration,
    /// Ideal service time at the fastest P-state.
    ideal: SimDuration,
}

/// Per-stage aggregation over completed requests.
#[cfg(feature = "obs")]
#[derive(Debug, Clone)]
struct Agg {
    sums_ns: [u64; STAGES],
    hists: Vec<Histogram>,
    requests: u64,
    mismatches: u64,
    attributed_total_ns: u64,
    e2e_total_ns: u64,
}

#[cfg(feature = "obs")]
impl Default for Agg {
    fn default() -> Self {
        Agg {
            sums_ns: [0; STAGES],
            hists: (0..STAGES).map(|_| Histogram::new()).collect(),
            requests: 0,
            mismatches: 0,
            attributed_total_ns: 0,
            e2e_total_ns: 0,
        }
    }
}

/// Aggregated attribution statistics for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSummary {
    /// The stage.
    pub stage: Stage,
    /// Total nanoseconds attributed across completed requests.
    pub sum_ns: u64,
    /// Median per-request nanoseconds.
    pub p50_ns: u64,
    /// P99 per-request nanoseconds.
    pub p99_ns: u64,
    /// Largest per-request contribution.
    pub max_ns: u64,
}

/// End-of-run attribution summary (lives in `RunResult`; `PartialEq`
/// so determinism suites compare it between same-seed runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttribSummary {
    /// Requests fully attributed (completed round trips).
    pub requests: u64,
    /// Requests still in flight when the summary was taken.
    pub pending: u64,
    /// Requests whose stage sums failed to match the measured
    /// end-to-end latency (must be 0; audited).
    pub mismatches: u64,
    /// Sum of all attributed stage nanoseconds.
    pub attributed_total_ns: u64,
    /// Sum of all measured end-to-end nanoseconds.
    pub e2e_total_ns: u64,
    /// Per-stage aggregates, in [`Stage::ALL`] order (empty without
    /// the `obs` feature).
    pub stages: Vec<StageSummary>,
}

impl AttribSummary {
    /// The aggregate for one stage, if attribution ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The fraction of total attributed time spent in `stage`.
    pub fn share(&self, stage: Stage) -> f64 {
        if self.attributed_total_ns == 0 {
            return 0.0;
        }
        self.stage(stage)
            .map_or(0.0, |s| s.sum_ns as f64 / self.attributed_total_ns as f64)
    }
}

/// Carries per-request attribution state through the pipeline and
/// aggregates completed breakdowns.
///
/// The testbed drives it with one call per pipeline transition:
/// [`claimed`](Self::claimed) (NAPI poll claims the packet from the
/// ring) → [`delivered`](Self::delivered) (socket backlog) →
/// [`app_start`](Self::app_start) →
/// [`app_pause`](Self::app_pause)/[`app_resume`](Self::app_resume)
/// (preemption) → [`app_finish`](Self::app_finish) →
/// [`completed`](Self::completed) (response back at the client).
/// Requests dropped at the NIC are never claimed and never tracked.
///
/// Zero-sized no-op without the `obs` feature.
#[derive(Debug, Clone, Default)]
pub struct AttribTracker {
    #[cfg(feature = "obs")]
    pending: BTreeMap<u64, Pending>,
    #[cfg(feature = "obs")]
    agg: Agg,
}

impl AttribTracker {
    /// True when the crate was built with the `obs` feature and
    /// trackers actually attribute.
    pub const ENABLED: bool = cfg!(feature = "obs");

    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// A NAPI poll claimed request `id` from the Rx ring at `now`.
    /// `sent_at`/`enqueued_at` are the packet's own timestamps;
    /// `marks` are the serving core's chain marks.
    #[inline]
    pub fn claimed(
        &mut self,
        id: u64,
        sent_at: SimTime,
        enqueued_at: SimTime,
        now: SimTime,
        marks: &ChainMarks,
    ) {
        #[cfg(feature = "obs")]
        {
            let mut breakdown = Breakdown::default();
            breakdown.add(Stage::Wire, enqueued_at.saturating_since(sent_at));
            attribute_ring(&mut breakdown, enqueued_at, now, marks);
            self.pending.insert(
                id,
                Pending {
                    breakdown,
                    sent_at,
                    claim_at: now,
                    delivered_at: now,
                    app_start: now,
                    finished_at: now,
                    core: 0,
                    chunk_start: None,
                    executed: SimDuration::ZERO,
                    debt: SimDuration::ZERO,
                    ideal: SimDuration::ZERO,
                },
            );
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (id, sent_at, enqueued_at, now, marks);
        }
    }

    /// The claiming poll batch retired and handed request `id` to the
    /// socket backlog.
    #[inline]
    pub fn delivered(&mut self, id: u64, now: SimTime) {
        #[cfg(feature = "obs")]
        if let Some(p) = self.pending.get_mut(&id) {
            p.breakdown
                .add(Stage::PollBatch, now.saturating_since(p.claim_at));
            p.delivered_at = now;
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (id, now);
        }
    }

    /// The app thread on `core` started serving request `id`. `debt`
    /// is the CC6 cache-refill debt folded into this chunk; `ideal`
    /// is the request's service time at the fastest P-state.
    #[inline]
    pub fn app_start(
        &mut self,
        id: u64,
        core: u32,
        now: SimTime,
        debt: SimDuration,
        ideal: SimDuration,
    ) {
        #[cfg(feature = "obs")]
        if let Some(p) = self.pending.get_mut(&id) {
            p.breakdown
                .add(Stage::AppQueue, now.saturating_since(p.delivered_at));
            p.app_start = now;
            p.chunk_start = Some(now);
            p.core = core;
            p.debt = debt;
            p.ideal = ideal;
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (id, core, now, debt, ideal);
        }
    }

    /// Request `id`'s service chunk was preempted.
    #[inline]
    pub fn app_pause(&mut self, id: u64, now: SimTime) {
        #[cfg(feature = "obs")]
        if let Some(p) = self.pending.get_mut(&id) {
            if let Some(start) = p.chunk_start.take() {
                p.executed += now.saturating_since(start);
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (id, now);
        }
    }

    /// Request `id` resumed execution after preemption.
    #[inline]
    pub fn app_resume(&mut self, id: u64, now: SimTime) {
        #[cfg(feature = "obs")]
        if let Some(p) = self.pending.get_mut(&id) {
            p.chunk_start = Some(now);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (id, now);
        }
    }

    /// Request `id`'s service completed (response handed to the NIC).
    /// Splits the application span into preemption gaps, wake debt,
    /// ideal service and P-state stall; the four slices sum exactly
    /// to `now − app_start`.
    #[inline]
    pub fn app_finish(&mut self, id: u64, now: SimTime) {
        #[cfg(feature = "obs")]
        if let Some(p) = self.pending.get_mut(&id) {
            if let Some(start) = p.chunk_start.take() {
                p.executed += now.saturating_since(start);
            }
            let span = now.saturating_since(p.app_start);
            let executed = p.executed.min(span);
            // Cache-refill debt is paid inside the chunk; integer
            // rounding in DVFS re-timing can shave a few ns, so each
            // slice saturates and the residual folds into the next.
            let wake_extra = p.debt.min(executed);
            let net = executed - wake_extra;
            let stall = net.saturating_sub(p.ideal);
            let service = net - stall;
            p.breakdown.add(Stage::Preempt, span - executed);
            p.breakdown.add(Stage::CstateWake, wake_extra);
            p.breakdown.add(Stage::AppService, service);
            p.breakdown.add(Stage::PstateStall, stall);
            p.finished_at = now;
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (id, now);
        }
    }

    /// The response for request `id` arrived back at the client:
    /// closes the breakdown (return-path wire time), verifies the
    /// conservation identity against the measured latency, folds the
    /// request into the aggregates, and returns the result. `None`
    /// when the request was never tracked (or the feature is off).
    #[inline]
    pub fn completed(&mut self, id: u64, now: SimTime) -> Option<CompletedAttrib> {
        #[cfg(feature = "obs")]
        {
            let mut p = self.pending.remove(&id)?;
            p.breakdown
                .add(Stage::Wire, now.saturating_since(p.finished_at));
            let e2e_ns = now.saturating_since(p.sent_at).as_nanos();
            let total = p.breakdown.total_ns();
            let matches = total == e2e_ns;
            self.agg.requests += 1;
            self.agg.mismatches += (!matches) as u64;
            self.agg.attributed_total_ns = self.agg.attributed_total_ns.saturating_add(total);
            self.agg.e2e_total_ns = self.agg.e2e_total_ns.saturating_add(e2e_ns);
            for (stage, ns) in p.breakdown.iter() {
                let slot = &mut self.agg.sums_ns[stage as usize];
                *slot = slot.saturating_add(ns);
                self.agg.hists[stage as usize].record(ns);
            }
            Some(CompletedAttrib {
                breakdown: p.breakdown,
                core: p.core,
                e2e_ns,
                matches,
            })
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (id, now);
            None
        }
    }

    /// Completed requests attributed so far.
    pub fn requests(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.agg.requests
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Requests whose stage sums failed the conservation identity
    /// (audited to be 0).
    pub fn mismatches(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.agg.mismatches
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Total attributed nanoseconds across completed requests (the
    /// ledger cross-checks this against measured latency).
    pub fn attributed_total_ns(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.agg.attributed_total_ns
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Requests currently tracked but not yet completed.
    pub fn pending(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.pending.len() as u64
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Cumulative per-mille share of `stage` over all completed
    /// requests (0 with no data) — trace-counter material.
    pub fn share_permille(&self, stage: Stage) -> u64 {
        #[cfg(feature = "obs")]
        {
            if self.agg.attributed_total_ns == 0 {
                return 0;
            }
            self.agg.sums_ns[stage as usize] * 1_000 / self.agg.attributed_total_ns
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = stage;
            0
        }
    }

    /// Freezes the aggregates into an [`AttribSummary`] (empty
    /// without the `obs` feature).
    pub fn summary(&self) -> AttribSummary {
        #[cfg(feature = "obs")]
        {
            AttribSummary {
                requests: self.agg.requests,
                pending: self.pending.len() as u64,
                mismatches: self.agg.mismatches,
                attributed_total_ns: self.agg.attributed_total_ns,
                e2e_total_ns: self.agg.e2e_total_ns,
                stages: Stage::ALL
                    .iter()
                    .map(|&stage| {
                        let h = &self.agg.hists[stage as usize];
                        StageSummary {
                            stage,
                            sum_ns: self.agg.sums_ns[stage as usize],
                            p50_ns: h.value_at_quantile(0.50),
                            p99_ns: h.value_at_quantile(0.99),
                            max_ns: h.max(),
                        }
                    })
                    .collect(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            AttribSummary::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn ring_partition_covers_full_chain() {
        // enqueue 0 → irq 10 → wake 14 → hardirq done 16 →
        // ksoftirqd queued 20, running 25 → claim 30.
        let marks = ChainMarks {
            irq_at: Some(t(10)),
            wake_end: Some(t(14)),
            hardirq_end: Some(t(16)),
            ksoftirqd_queued: Some(t(20)),
            ksoftirqd_running: Some(t(25)),
        };
        let mut b = Breakdown::default();
        attribute_ring(&mut b, t(0), t(30), &marks);
        assert_eq!(b.get_ns(Stage::ItrDelay), d(10).as_nanos());
        assert_eq!(b.get_ns(Stage::CstateWake), d(4).as_nanos());
        assert_eq!(b.get_ns(Stage::IrqDispatch), d(2).as_nanos());
        assert_eq!(b.get_ns(Stage::RingWait), d(4 + 5).as_nanos());
        assert_eq!(b.get_ns(Stage::KsoftirqdSched), d(5).as_nanos());
        assert_eq!(b.total_ns(), d(30).as_nanos(), "slices sum exactly");
    }

    #[test]
    fn stale_marks_clamp_to_zero() {
        // The packet arrived long after this chain's marks: everything
        // before its enqueue collapses and the residency is RingWait.
        let marks = ChainMarks {
            irq_at: Some(t(10)),
            wake_end: Some(t(14)),
            hardirq_end: Some(t(16)),
            ksoftirqd_queued: Some(t(20)),
            ksoftirqd_running: Some(t(25)),
        };
        let mut b = Breakdown::default();
        attribute_ring(&mut b, t(100), t(130), &marks);
        assert_eq!(b.get_ns(Stage::RingWait), d(30).as_nanos());
        assert_eq!(b.total_ns(), d(30).as_nanos());
    }

    #[test]
    fn marks_past_claim_clamp_to_claim() {
        // Claim happens mid-chain (softirq claims while ksoftirqd
        // marks point later from an older chain): nothing overshoots.
        let marks = ChainMarks {
            irq_at: Some(t(10)),
            wake_end: None,
            hardirq_end: Some(t(50)),
            ksoftirqd_queued: None,
            ksoftirqd_running: None,
        };
        let mut b = Breakdown::default();
        attribute_ring(&mut b, t(0), t(20), &marks);
        assert_eq!(b.get_ns(Stage::ItrDelay), d(10).as_nanos());
        assert_eq!(b.get_ns(Stage::IrqDispatch), d(10).as_nanos());
        assert_eq!(b.total_ns(), d(20).as_nanos());
    }

    #[test]
    fn full_request_lifecycle_is_exact() {
        let mut tr = AttribTracker::new();
        let marks = ChainMarks {
            irq_at: Some(t(110)),
            wake_end: Some(t(113)),
            hardirq_end: Some(t(114)),
            ..ChainMarks::default()
        };
        // sent 0, enqueued 100 (wire 100), claimed 120, delivered 125,
        // app start 130 (queue 5), preempted 140–150, finish 170,
        // received 200 (wire 30).
        tr.claimed(7, t(0), t(100), t(120), &marks);
        tr.delivered(7, t(125));
        tr.app_start(7, 3, t(130), d(2), d(20));
        tr.app_pause(7, t(140));
        tr.app_resume(7, t(150));
        tr.app_finish(7, t(170));
        let done = tr.completed(7, t(200));
        if !AttribTracker::ENABLED {
            assert!(done.is_none());
            return;
        }
        let done = done.expect("tracked request completes");
        assert!(done.matches, "stage sums must equal e2e");
        assert_eq!(done.e2e_ns, d(200).as_nanos());
        assert_eq!(done.core, 3);
        let b = &done.breakdown;
        assert_eq!(b.get_ns(Stage::Wire), d(130).as_nanos());
        assert_eq!(b.get_ns(Stage::ItrDelay), d(10).as_nanos());
        // Ring wake slice (3) plus the app chunk's cache debt (2).
        assert_eq!(b.get_ns(Stage::CstateWake), d(5).as_nanos());
        assert_eq!(b.get_ns(Stage::IrqDispatch), d(1).as_nanos());
        assert_eq!(b.get_ns(Stage::RingWait), d(6).as_nanos());
        assert_eq!(b.get_ns(Stage::PollBatch), d(5).as_nanos());
        assert_eq!(b.get_ns(Stage::AppQueue), d(5).as_nanos());
        assert_eq!(b.get_ns(Stage::Preempt), d(10).as_nanos());
        assert_eq!(b.get_ns(Stage::AppService), d(20).as_nanos());
        // Executed 30 wall − 2 debt − 20 ideal = 8 of DVFS slowdown.
        assert_eq!(b.get_ns(Stage::PstateStall), d(8).as_nanos());
        assert_eq!(tr.requests(), 1);
        assert_eq!(tr.mismatches(), 0);
        assert_eq!(tr.pending(), 0);
        let summary = tr.summary();
        assert_eq!(summary.attributed_total_ns, summary.e2e_total_ns);
        assert!((summary.share(Stage::Wire) - 0.65).abs() < 1e-9);
        assert_eq!(
            summary.stage(Stage::AppService).unwrap().max_ns,
            d(20).as_nanos()
        );
    }

    #[test]
    fn untracked_completion_returns_none() {
        let mut tr = AttribTracker::new();
        assert!(tr.completed(99, t(10)).is_none());
        // Updates on unknown ids are silently ignored.
        tr.delivered(99, t(10));
        tr.app_finish(99, t(10));
        assert_eq!(tr.pending(), 0);
    }

    #[test]
    fn service_shorter_than_ideal_folds_into_service() {
        // DVFS re-timing rounding can make the executed wall a hair
        // shorter than the ideal; the residual must fold into
        // AppService, keeping the sum exact with no underflow.
        let mut tr = AttribTracker::new();
        tr.claimed(1, t(0), t(10), t(20), &ChainMarks::default());
        tr.delivered(1, t(21));
        tr.app_start(1, 0, t(22), SimDuration::ZERO, d(100));
        tr.app_finish(1, t(30)); // executed 8 < ideal 100
        let done = tr.completed(1, t(40));
        if let Some(done) = done {
            assert!(done.matches);
            assert_eq!(done.breakdown.get_ns(Stage::AppService), d(8).as_nanos());
            assert_eq!(done.breakdown.get_ns(Stage::PstateStall), 0);
        }
    }

    #[test]
    fn share_permille_tracks_cumulative_sums() {
        let mut tr = AttribTracker::new();
        tr.claimed(1, t(0), t(10), t(10), &ChainMarks::default());
        tr.delivered(1, t(10));
        tr.app_start(1, 0, t(10), SimDuration::ZERO, d(10));
        tr.app_finish(1, t(20));
        tr.completed(1, t(30));
        if AttribTracker::ENABLED {
            // wire 10 + 10, service 10 → service is one third.
            assert_eq!(tr.share_permille(Stage::AppService), 333);
            assert_eq!(tr.share_permille(Stage::Wire), 666);
        } else {
            assert_eq!(tr.share_permille(Stage::AppService), 0);
        }
    }
}
