//! Deterministic fixed-interval telemetry bus: typed per-core gauges
//! sampled over sim time, with bounded memory.
//!
//! Every other observability surface ([`MetricsRegistry`],
//! [`crate::obs::attrib`], [`crate::obs::energy`]) is an end-of-run
//! snapshot: it says *what* happened, never *when*. This module
//! records how the feature vector the NMAP paper's governors consume
//! — utilization, NAPI processing mode, queue depths, online P99,
//! instantaneous power — *evolves* over virtual time, at a fixed
//! sampling interval that is independent of the governor under test
//! (so two governors' timelines are sampled at identical instants and
//! compare row for row).
//!
//! # Bounded memory: interval-doubling decimation
//!
//! The sampler pre-allocates room for at most `cap` rows. When a new
//! row arrives at a full buffer, every odd-indexed row is dropped in
//! place (stride-2 decimation; no reallocation) and the sampling
//! interval doubles, so the retained rows stay *uniformly spaced* at
//! the new interval and the whole run always fits. Like
//! [`TraceBuffer`], nothing is discarded silently: decimated rows are
//! counted in [`dropped`](TimeSeriesSampler::dropped) and each
//! doubling in [`decimations`](TimeSeriesSampler::decimations).
//!
//! # Read side: [`TelemetryTap`]
//!
//! Governors (ROADMAP item 5's adaptive PID/bandit policy) poll the
//! live sampler through the [`TelemetryTap`] trait during the run —
//! the bus is a substrate for *online* control, not just a post-hoc
//! log. Like everything in [`crate::obs`], the sampler is a
//! zero-sized no-op without the `obs` feature and the tap reports
//! nothing.
//!
//! # Examples
//!
//! ```
//! use simcore::obs::timeseries::{Gauge, TimeSeriesSampler, TimelineConfig, GAUGES};
//! use simcore::{SimDuration, SimTime};
//!
//! let cfg = TimelineConfig { interval: SimDuration::from_micros(10), cap: 4 };
//! let mut s = TimeSeriesSampler::new(1, cfg);
//! let mut row = [0i64; GAUGES];
//! for k in 0..6u64 {
//!     row[Gauge::UtilPermille as usize] = (k * 100) as i64;
//!     s.record_row(SimTime::from_micros(10 * (k + 1)), &row);
//! }
//! let tl = s.finish();
//! if TimeSeriesSampler::ENABLED {
//!     assert!(tl.rows() <= 4);          // bounded
//!     assert_eq!(tl.interval_ns, 20_000); // doubled once
//! }
//! ```
//!
//! [`MetricsRegistry`]: crate::obs::MetricsRegistry
//! [`TraceBuffer`]: crate::obs::TraceBuffer

use crate::time::{SimDuration, SimTime};

/// One typed per-core telemetry channel.
///
/// Values are integers by construction (the substrate of the
/// byte-identical determinism guarantee): fractions are per-mille,
/// power is milliwatts, latency is nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Core busy fraction over the last governor sampling window,
    /// in per-mille (0–1000).
    #[default]
    UtilPermille,
    /// Current P-state table index (0 = fastest).
    PState,
    /// NAPI processing mode: 1 while the context is in polling mode,
    /// 0 in interrupt mode (the paper's mode-transition signal).
    NapiPolling,
    /// NIC Rx-ring backlog depth for this core's queue (0 for cores
    /// without an Rx queue under RSS).
    RxRing,
    /// Application socket-queue depth (requests waiting on the core).
    AppQueue,
    /// Online P99 end-to-end latency for requests served by this
    /// core, in nanoseconds (from the streaming SLO watchdog).
    P99Ns,
    /// Instantaneous core power draw at the current operating point
    /// and activity, in milliwatts.
    PowerMw,
    /// Status bits: bit 0 = governor degraded on this core, bit 1 =
    /// a fault scope is active on this core.
    Flags,
    /// Admission-queue saturation in per-mille of the bounded app
    /// queue's capacity (0 when no admission policy bounds the
    /// queue). The up-coupled overload signal brownout and the
    /// shed-before-downclock governor ordering consume.
    Saturation,
}

/// Number of gauges (row stride per core).
pub const GAUGES: usize = 9;

impl Gauge {
    /// All gauges, in column order.
    pub const ALL: [Gauge; GAUGES] = [
        Gauge::UtilPermille,
        Gauge::PState,
        Gauge::NapiPolling,
        Gauge::RxRing,
        Gauge::AppQueue,
        Gauge::P99Ns,
        Gauge::PowerMw,
        Gauge::Flags,
        Gauge::Saturation,
    ];

    /// Stable column label (CSV header, trace-counter name).
    pub fn label(self) -> &'static str {
        match self {
            Gauge::UtilPermille => "util_permille",
            Gauge::PState => "pstate",
            Gauge::NapiPolling => "napi_polling",
            Gauge::RxRing => "rx_ring",
            Gauge::AppQueue => "app_queue",
            Gauge::P99Ns => "p99_ns",
            Gauge::PowerMw => "power_mw",
            Gauge::Flags => "flags",
            Gauge::Saturation => "saturation_permille",
        }
    }

    /// OpenMetrics metric name for this gauge.
    pub fn openmetrics_name(self) -> &'static str {
        match self {
            Gauge::UtilPermille => "nmap_core_util_permille",
            Gauge::PState => "nmap_core_pstate_index",
            Gauge::NapiPolling => "nmap_core_napi_polling",
            Gauge::RxRing => "nmap_core_rx_ring_depth",
            Gauge::AppQueue => "nmap_core_app_queue_depth",
            Gauge::P99Ns => "nmap_core_p99_latency_ns",
            Gauge::PowerMw => "nmap_core_power_milliwatts",
            Gauge::Flags => "nmap_core_status_flags",
            Gauge::Saturation => "nmap_core_saturation_permille",
        }
    }

    /// OpenMetrics HELP text.
    pub fn openmetrics_help(self) -> &'static str {
        match self {
            Gauge::UtilPermille => "Core busy fraction over the governor window, per mille.",
            Gauge::PState => "Current P-state table index (0 is fastest).",
            Gauge::NapiPolling => "1 while the core's NAPI context is in polling mode.",
            Gauge::RxRing => "NIC Rx-ring backlog depth for the core's queue.",
            Gauge::AppQueue => "Application socket-queue depth on the core.",
            Gauge::P99Ns => "Online P99 end-to-end latency for the core, nanoseconds.",
            Gauge::PowerMw => "Instantaneous core power draw, milliwatts.",
            Gauge::Flags => "Status bits: 1 governor degraded, 2 fault scope active.",
            Gauge::Saturation => "Admission-queue saturation, per mille of the bounded capacity.",
        }
    }
}

/// Degraded-governor bit in the [`Gauge::Flags`] channel.
pub const FLAG_DEGRADED: i64 = 1;
/// Fault-scope-active bit in the [`Gauge::Flags`] channel.
pub const FLAG_FAULT_ACTIVE: i64 = 2;

/// Timeline sampling parameters.
///
/// `cap == 0` disables sampling entirely (the cheap steady state);
/// otherwise `cap` must be even so stride-2 decimation keeps the
/// retained rows uniformly spaced ([`TimeSeriesSampler::new`] treats
/// an odd cap of 1 as disabled and rounds other odd caps down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimelineConfig {
    /// Base sampling interval (doubles on each decimation).
    pub interval: SimDuration,
    /// Maximum number of retained sample rows; 0 disables sampling.
    pub cap: usize,
}

impl TimelineConfig {
    /// Sampling off.
    pub const OFF: TimelineConfig = TimelineConfig {
        interval: SimDuration::ZERO,
        cap: 0,
    };
}

impl Default for TimelineConfig {
    /// 100 µs base interval, 512 retained rows: fine enough to see a
    /// NAPI mode flip in a quick cell, bounded at ~32 KiB of gauges
    /// per 8-core run no matter how long the simulation runs.
    fn default() -> Self {
        TimelineConfig {
            interval: SimDuration::from_micros(100),
            cap: 512,
        }
    }
}

/// Read-side view of the live telemetry bus.
///
/// The server hands governors a `&dyn TelemetryTap` once per sample
/// tick (see `PStateGovernor::on_telemetry` in the governors crate),
/// so an adaptive policy can consume the same multi-gauge feature
/// vector the timeline records — without owning the sampler or
/// perturbing it. All methods report "nothing" when the `obs` feature
/// is off or sampling is disabled, so consumers need no `cfg` gates.
pub trait TelemetryTap {
    /// Number of cores covered by each sample row.
    fn tap_cores(&self) -> usize;

    /// Virtual time of the most recent sample row, if any.
    fn last_sample_at(&self) -> Option<SimTime>;

    /// The most recent sampled value of `gauge` on `core`, if any
    /// row has been recorded.
    fn latest(&self, core: usize, gauge: Gauge) -> Option<i64>;
}

/// The write side of the telemetry bus: fixed-interval rows of
/// per-core [`Gauge`] values with interval-doubling decimation.
///
/// Storage is flat and pre-allocated (`cap` rows × `cores` ×
/// [`GAUGES`] values); recording and decimation never allocate.
/// Zero-sized no-op without the `obs` feature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeriesSampler {
    #[cfg(feature = "obs")]
    cores: usize,
    #[cfg(feature = "obs")]
    cap: usize,
    #[cfg(feature = "obs")]
    base_interval: SimDuration,
    #[cfg(feature = "obs")]
    interval: SimDuration,
    #[cfg(feature = "obs")]
    times_ns: Vec<u64>,
    #[cfg(feature = "obs")]
    values: Vec<i64>,
    #[cfg(feature = "obs")]
    decimations: u64,
    #[cfg(feature = "obs")]
    dropped: u64,
}

impl TimeSeriesSampler {
    /// True when the crate was built with the `obs` feature and
    /// samplers actually record.
    pub const ENABLED: bool = cfg!(feature = "obs");

    /// A disabled sampler: every record is skipped.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A sampler over `cores` cores with the given config. An odd
    /// `cap` is rounded down to the nearest even value (a cap of 1
    /// therefore disables sampling) so decimation preserves uniform
    /// row spacing.
    pub fn new(cores: usize, config: TimelineConfig) -> Self {
        #[cfg(feature = "obs")]
        {
            let cap = config.cap & !1;
            let cap = if config.interval.is_zero() { 0 } else { cap };
            TimeSeriesSampler {
                cores,
                cap,
                base_interval: config.interval,
                interval: config.interval,
                times_ns: Vec::with_capacity(cap),
                values: Vec::with_capacity(cap * cores * GAUGES),
                decimations: 0,
                dropped: 0,
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (cores, config);
            TimeSeriesSampler {}
        }
    }

    /// True if this sampler records anything at all.
    #[inline]
    pub fn is_recording(&self) -> bool {
        Self::ENABLED && self.cap() > 0
    }

    /// The retained-row capacity (0 when disabled or feature off).
    pub fn cap(&self) -> usize {
        #[cfg(feature = "obs")]
        {
            self.cap
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// The *current* sampling interval — the base interval doubled
    /// once per decimation. The event loop reschedules its sample
    /// tick at this cadence so the tick rate decays with the buffer.
    pub fn interval(&self) -> SimDuration {
        #[cfg(feature = "obs")]
        {
            self.interval
        }
        #[cfg(not(feature = "obs"))]
        {
            SimDuration::ZERO
        }
    }

    /// Rows currently retained.
    pub fn rows(&self) -> usize {
        #[cfg(feature = "obs")]
        {
            self.times_ns.len()
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Rows discarded by decimation so far.
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.dropped
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Interval doublings so far.
    pub fn decimations(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.decimations
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Records one sample row (`row.len()` must be
    /// `cores × GAUGES`, core-major). If the buffer is full the
    /// retained rows are first stride-2 decimated in place and the
    /// interval doubles. Rows must arrive in non-decreasing time
    /// order; a short row is ignored rather than recorded partially.
    #[inline]
    pub fn record_row(&mut self, now: SimTime, row: &[i64]) {
        #[cfg(feature = "obs")]
        {
            let stride = self.cores * GAUGES;
            if self.cap == 0 || row.len() != stride {
                return;
            }
            if self.times_ns.len() == self.cap {
                self.decimate();
            }
            self.times_ns.push(now.as_nanos());
            self.values.extend_from_slice(row);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (now, row);
        }
    }

    /// Drops every odd-indexed row in place and doubles the interval.
    #[cfg(feature = "obs")]
    fn decimate(&mut self) {
        let stride = self.cores * GAUGES;
        let old = self.times_ns.len();
        let kept = old.div_ceil(2);
        for i in 1..kept {
            self.times_ns[i] = self.times_ns[2 * i];
            let (dst, src) = (i * stride, 2 * i * stride);
            self.values.copy_within(src..src + stride, dst);
        }
        self.times_ns.truncate(kept);
        self.values.truncate(kept * stride);
        self.dropped += (old - kept) as u64;
        self.decimations += 1;
        self.interval = SimDuration::from_nanos(self.interval.as_nanos().saturating_mul(2));
    }

    /// Freezes the sampler into a plain-data [`Timeline`] (empty
    /// without the `obs` feature).
    pub fn finish(&self) -> Timeline {
        #[cfg(feature = "obs")]
        {
            Timeline {
                cores: self.cores as u32,
                base_interval_ns: self.base_interval.as_nanos(),
                interval_ns: self.interval.as_nanos(),
                decimations: self.decimations,
                dropped: self.dropped,
                times_ns: self.times_ns.clone(),
                values: self.values.clone(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            Timeline::default()
        }
    }
}

impl TelemetryTap for TimeSeriesSampler {
    fn tap_cores(&self) -> usize {
        #[cfg(feature = "obs")]
        {
            self.cores
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    fn last_sample_at(&self) -> Option<SimTime> {
        #[cfg(feature = "obs")]
        {
            self.times_ns.last().map(|&ns| SimTime::from_nanos(ns))
        }
        #[cfg(not(feature = "obs"))]
        {
            None
        }
    }

    fn latest(&self, core: usize, gauge: Gauge) -> Option<i64> {
        #[cfg(feature = "obs")]
        {
            let rows = self.times_ns.len();
            if rows == 0 || core >= self.cores {
                return None;
            }
            let stride = self.cores * GAUGES;
            self.values
                .get((rows - 1) * stride + core * GAUGES + gauge as usize)
                .copied()
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (core, gauge);
            None
        }
    }
}

/// The frozen, plain-data form of a run's telemetry timeline.
///
/// Always available regardless of features (an empty value when
/// sampling was off), all-integer so checkpoint encoding and CSV
/// rendering are lossless and byte-identical across same-seed runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Cores covered by each row.
    pub cores: u32,
    /// Configured base sampling interval, nanoseconds.
    pub base_interval_ns: u64,
    /// Final (possibly doubled) sampling interval, nanoseconds.
    pub interval_ns: u64,
    /// Interval doublings performed.
    pub decimations: u64,
    /// Rows discarded by decimation.
    pub dropped: u64,
    /// Sample times, nanoseconds, strictly increasing; one per row.
    pub times_ns: Vec<u64>,
    /// Row-major gauge values: `rows × cores × GAUGES`, core-major
    /// within a row, [`Gauge::ALL`] order within a core.
    pub values: Vec<i64>,
}

impl Timeline {
    /// Number of sample rows.
    pub fn rows(&self) -> usize {
        self.times_ns.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times_ns.is_empty()
    }

    /// The value of `gauge` on `core` in row `row`, if in range.
    pub fn value(&self, row: usize, core: usize, gauge: Gauge) -> Option<i64> {
        if core >= self.cores as usize {
            return None;
        }
        let stride = self.cores as usize * GAUGES;
        self.values
            .get(row * stride + core * GAUGES + gauge as usize)
            .copied()
    }

    /// Per-row maximum of `gauge` across cores (tail-style signals:
    /// P99, queue depths).
    pub fn series_max(&self, gauge: Gauge) -> Vec<i64> {
        self.per_row(gauge, |acc, v| acc.max(v))
    }

    /// Per-row sum of `gauge` across cores (additive signals: power,
    /// cores-in-polling-mode).
    pub fn series_sum(&self, gauge: Gauge) -> Vec<i64> {
        self.per_row(gauge, |acc, v| acc.saturating_add(v))
    }

    fn per_row(&self, gauge: Gauge, fold: impl Fn(i64, i64) -> i64) -> Vec<i64> {
        let cores = self.cores as usize;
        let stride = cores * GAUGES;
        (0..self.rows())
            .map(|r| {
                (0..cores)
                    .map(|c| {
                        self.values
                            .get(r * stride + c * GAUGES + gauge as usize)
                            .copied()
                            .unwrap_or(0)
                    })
                    .fold(0i64, &fold)
            })
            .collect()
    }

    /// Renders the timeline as CSV: one line per `(row, core)` pair,
    /// all-integer, deterministic for same-seed runs.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time_ns,core");
        for g in Gauge::ALL {
            out.push(',');
            out.push_str(g.label());
        }
        out.push('\n');
        let cores = self.cores as usize;
        let stride = cores * GAUGES;
        for (r, &t) in self.times_ns.iter().enumerate() {
            for c in 0..cores {
                let _ = write!(out, "{t},{c}");
                for g in 0..GAUGES {
                    let v = self.values.get(r * stride + c * GAUGES + g).copied();
                    let _ = write!(out, ",{}", v.unwrap_or(0));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the timeline as an OpenMetrics text exposition: one
    /// gauge family per [`Gauge`], samples labelled by core with the
    /// sim-time timestamp in seconds, terminated by `# EOF`.
    pub fn to_openmetrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cores = self.cores as usize;
        let stride = cores * GAUGES;
        for (gi, g) in Gauge::ALL.iter().enumerate() {
            let name = g.openmetrics_name();
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "# HELP {name} {}", g.openmetrics_help());
            for (r, &t) in self.times_ns.iter().enumerate() {
                for c in 0..cores {
                    let v = self
                        .values
                        .get(r * stride + c * GAUGES + gi)
                        .copied()
                        .unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "{name}{{core=\"{c}\"}} {v} {}.{:09}",
                        t / 1_000_000_000,
                        t % 1_000_000_000
                    );
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

/// ASCII character ramp for sparklines, low to high.
const SPARK_RAMP: &[u8] = b" .:-=+*#%@";

/// Renders `series` as a fixed-`width` ASCII sparkline: the series is
/// bucketed to `width` columns (max within each bucket) and each
/// column maps onto a 10-step density ramp scaled by the global
/// maximum. Pure ASCII so golden fixtures diff cleanly everywhere;
/// deterministic for identical input.
pub fn sparkline(series: &[i64], width: usize) -> String {
    if width == 0 {
        return String::new();
    }
    if series.is_empty() {
        return " ".repeat(width);
    }
    let peak = series.iter().copied().max().unwrap_or(0).max(1);
    let n = series.len();
    (0..width)
        .map(|col| {
            let lo = col * n / width;
            let hi = ((col + 1) * n / width).max(lo + 1).min(n);
            if lo >= n {
                return ' ';
            }
            let v = series[lo..hi].iter().copied().max().unwrap_or(0).max(0);
            // Scale into the ramp; a non-zero value never renders as
            // the blank rung.
            let mut idx = ((v as u128 * (SPARK_RAMP.len() - 1) as u128) / peak as u128) as usize;
            if v > 0 && idx == 0 {
                idx = 1;
            }
            SPARK_RAMP[idx.min(SPARK_RAMP.len() - 1)] as char
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row1(v: i64) -> [i64; GAUGES] {
        let mut r = [0i64; GAUGES];
        r[Gauge::UtilPermille as usize] = v;
        r[Gauge::PowerMw as usize] = v * 2;
        r
    }

    fn cfg(interval_us: u64, cap: usize) -> TimelineConfig {
        TimelineConfig {
            interval: SimDuration::from_micros(interval_us),
            cap,
        }
    }

    #[test]
    fn records_rows_and_taps_latest() {
        let mut s = TimeSeriesSampler::new(2, cfg(10, 8));
        let row = [
            1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19,
        ];
        s.record_row(SimTime::from_micros(10), &row);
        if TimeSeriesSampler::ENABLED {
            assert_eq!(s.rows(), 1);
            assert_eq!(s.tap_cores(), 2);
            assert_eq!(s.last_sample_at(), Some(SimTime::from_micros(10)));
            assert_eq!(s.latest(0, Gauge::UtilPermille), Some(1));
            assert_eq!(s.latest(1, Gauge::Flags), Some(18));
            assert_eq!(s.latest(2, Gauge::Flags), None);
        } else {
            assert_eq!(s.rows(), 0);
            assert_eq!(s.latest(0, Gauge::UtilPermille), None);
            assert_eq!(s.last_sample_at(), None);
        }
    }

    /// The decimation boundary: buffer exactly full, next record
    /// halves the rows, doubles the interval, counts the drops, and
    /// the row count never exceeds the cap.
    #[test]
    fn decimation_boundary_doubles_interval_and_stays_bounded() {
        let mut s = TimeSeriesSampler::new(1, cfg(10, 4));
        for k in 1..=4u64 {
            s.record_row(SimTime::from_micros(10 * k), &row1(k as i64));
        }
        if !TimeSeriesSampler::ENABLED {
            assert_eq!(s.rows(), 0);
            return;
        }
        assert_eq!(s.rows(), 4, "exactly full, nothing decimated yet");
        assert_eq!(s.interval(), SimDuration::from_micros(10));
        assert_eq!(s.dropped(), 0);

        // Row 5 forces the decimation: rows 10,20,30,40 µs → keep
        // 10,30 then push 50.
        s.record_row(SimTime::from_micros(50), &row1(5));
        assert_eq!(s.rows(), 3);
        assert_eq!(
            s.interval(),
            SimDuration::from_micros(20),
            "interval doubled"
        );
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.decimations(), 1);
        let tl = s.finish();
        assert_eq!(tl.times_ns, vec![10_000, 30_000, 50_000]);
        assert_eq!(
            tl.value(0, 0, Gauge::UtilPermille),
            Some(1),
            "kept rows carry their values"
        );
        assert_eq!(tl.value(1, 0, Gauge::UtilPermille), Some(3));
        assert_eq!(tl.value(2, 0, Gauge::UtilPermille), Some(5));

        // Keep pushing at the doubled cadence: the count never
        // exceeds the cap no matter how long the run goes.
        for k in 0..64u64 {
            s.record_row(SimTime::from_micros(70 + 20 * k), &row1(9));
            assert!(s.rows() <= 4, "rows stay within cap");
        }
        assert!(s.decimations() >= 4);
    }

    #[test]
    fn decimated_rows_stay_uniformly_spaced() {
        let mut s = TimeSeriesSampler::new(1, cfg(10, 4));
        let mut t = SimTime::ZERO;
        for k in 1..=32u64 {
            // Drive the clock the way the event loop does: advance by
            // the sampler's *current* interval each tick.
            t += s.interval();
            s.record_row(t, &row1(k as i64));
        }
        if !TimeSeriesSampler::ENABLED {
            return;
        }
        let tl = s.finish();
        assert!(tl.rows() >= 2 && tl.rows() <= 4);
        let deltas: Vec<u64> = tl.times_ns.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            deltas.iter().all(|&d| d == tl.interval_ns),
            "retained rows uniformly spaced at the final interval: {deltas:?} vs {}",
            tl.interval_ns
        );
    }

    #[test]
    fn cap_zero_and_odd_cap_one_disable_recording() {
        let mut off = TimeSeriesSampler::new(1, cfg(10, 0));
        assert!(!off.is_recording());
        off.record_row(SimTime::from_micros(10), &row1(1));
        assert_eq!(off.rows(), 0);
        assert_eq!(off.dropped(), 0, "disabled is off, not overflow");

        let one = TimeSeriesSampler::new(1, cfg(10, 1));
        assert!(!one.is_recording(), "cap 1 cannot decimate; treated as off");

        let odd = TimeSeriesSampler::new(1, cfg(10, 5));
        assert_eq!(odd.cap(), if TimeSeriesSampler::ENABLED { 4 } else { 0 });
    }

    #[test]
    fn short_row_is_ignored_not_truncated() {
        let mut s = TimeSeriesSampler::new(2, cfg(10, 4));
        s.record_row(SimTime::from_micros(10), &row1(1)); // one core's worth only
        assert_eq!(s.rows(), 0);
    }

    #[test]
    fn csv_and_openmetrics_render_deterministically() {
        let mut s = TimeSeriesSampler::new(1, cfg(10, 4));
        s.record_row(SimTime::from_micros(10), &row1(250));
        s.record_row(SimTime::from_micros(20), &row1(750));
        let tl = s.finish();
        let csv = tl.to_csv();
        assert!(csv.starts_with("time_ns,core,util_permille,pstate,"));
        let om = tl.to_openmetrics();
        assert!(om.ends_with("# EOF\n"));
        if TimeSeriesSampler::ENABLED {
            assert!(csv.contains("10000,0,250,0,0,0,0,0,500,0,0"));
            assert!(om.contains("# TYPE nmap_core_util_permille gauge"));
            assert!(om.contains("nmap_core_util_permille{core=\"0\"} 250 0.000010000"));
            assert_eq!(csv, s.finish().to_csv(), "rendering is a pure function");
        } else {
            assert_eq!(tl, Timeline::default());
        }
    }

    #[test]
    fn series_helpers_fold_across_cores() {
        let tl = Timeline {
            cores: 2,
            base_interval_ns: 10_000,
            interval_ns: 10_000,
            decimations: 0,
            dropped: 0,
            times_ns: vec![10_000, 20_000],
            values: {
                let mut v = vec![0i64; 2 * 2 * GAUGES];
                // row 0: core0 p99=5, core1 p99=9
                v[Gauge::P99Ns as usize] = 5;
                v[GAUGES + Gauge::P99Ns as usize] = 9;
                // row 1: core0 p99=7, core1 p99=3
                v[2 * GAUGES + Gauge::P99Ns as usize] = 7;
                v[3 * GAUGES + Gauge::P99Ns as usize] = 3;
                v
            },
        };
        assert_eq!(tl.series_max(Gauge::P99Ns), vec![9, 7]);
        assert_eq!(tl.series_sum(Gauge::P99Ns), vec![14, 10]);
    }

    #[test]
    fn sparkline_is_ascii_and_scales() {
        let s = sparkline(&[0, 1, 5, 10], 4);
        assert_eq!(s.len(), 4);
        assert!(s.is_ascii());
        assert_eq!(s.chars().next(), Some(' '), "zero renders blank");
        assert_eq!(s.chars().last(), Some('@'), "peak renders full");
        assert_ne!(s.chars().nth(1), Some(' '), "non-zero never blank");
        assert_eq!(sparkline(&[], 6), "      ");
        assert_eq!(sparkline(&[3; 100], 8).len(), 8, "long series bucketed");
        assert_eq!(sparkline(&[1, 2, 3], 5), sparkline(&[1, 2, 3], 5));
    }

    #[test]
    fn gauge_labels_and_metric_names_are_unique() {
        let mut labels: Vec<_> = Gauge::ALL.iter().map(|g| g.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), GAUGES);
        let mut names: Vec<_> = Gauge::ALL.iter().map(|g| g.openmetrics_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GAUGES);
    }

    #[test]
    fn zero_cost_shapes_when_disabled() {
        if !TimeSeriesSampler::ENABLED {
            assert_eq!(std::mem::size_of::<TimeSeriesSampler>(), 0);
        }
    }
}
