//! Unified observability: structured trace events and a metrics
//! registry.
//!
//! Timeline behaviour is the NMAP paper's whole argument — *when* a
//! NAPI context flips between interrupt and polling mode, when
//! ksoftirqd runs, when a core steps its P-state or drops into CC6.
//! This module gives every layer of the stack one shared vocabulary
//! for those moments:
//!
//! * [`TraceBuffer`] — a bounded buffer of typed [`TraceEvent`]s
//!   (span begin/end, instants, counter samples), each tagged with a
//!   [`TraceCategory`] and a core id. When the buffer is full, new
//!   events are counted in [`TraceBuffer::dropped`] rather than
//!   silently discarded, and the events already recorded keep their
//!   insertion order.
//! * [`MetricsRegistry`] — deterministically ordered counters, gauges
//!   and log₂-bucketed histograms, snapshotted into a
//!   [`MetricsSnapshot`] that two same-seed runs must reproduce
//!   bit-identically.
//!
//! # Zero cost when disabled
//!
//! Everything is gated on the `obs` cargo feature, following the
//! [`crate::audit`] pattern: with the feature off, [`TraceBuffer`]
//! and [`MetricsRegistry`] carry no fields and every recording method
//! is an empty `#[inline]` body, so instrumented call sites compile
//! to nothing. [`TraceBuffer::ENABLED`] tells collection passes
//! whether recorded data is meaningful.
//!
//! # Examples
//!
//! ```
//! use simcore::obs::{MetricsRegistry, TraceBuffer, TraceCategory};
//! use simcore::SimTime;
//!
//! let mut trace = TraceBuffer::with_capacity(1024);
//! trace.begin(SimTime::from_micros(5), TraceCategory::Request, 0, "request", 7);
//! trace.end(SimTime::from_micros(9), TraceCategory::Request, 0, "request", 7);
//! if TraceBuffer::ENABLED {
//!     assert_eq!(trace.len(), 2);
//! }
//!
//! let mut metrics = MetricsRegistry::new();
//! metrics.bump("nic.rx_enqueued", 3);
//! metrics.observe("napi.poll_batch_rx", 64);
//! let snap = metrics.snapshot();
//! assert_eq!(snap, metrics.snapshot()); // snapshots are deterministic
//! ```

use crate::time::SimTime;
#[cfg(feature = "obs")]
use std::collections::BTreeMap;

pub mod attrib;
pub mod energy;
pub mod timeseries;

/// The timeline track a trace event belongs to.
///
/// The Perfetto exporter renders one track per `(core, category)`
/// pair, so categories are the vertical structure of the timeline
/// view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceCategory {
    /// NIC interrupt activity: fire / mask / unmask instants.
    Irq,
    /// NAPI interrupt-vs-polling mode residency spans.
    NapiMode,
    /// Individual NAPI poll batches (instants, arg = Rx packets).
    Poll,
    /// ksoftirqd run intervals (wake → sleep spans).
    Ksoftirqd,
    /// P-state residency spans (arg = state index).
    PState,
    /// C-state residency spans (arg = state depth).
    CState,
    /// Application request service spans (arg = flow id).
    Request,
    /// Governor decisions and NI notifications (instants).
    Governor,
    /// SLO watchdog: online percentile counters, violation /
    /// recovery instants, attribution stage shares.
    Slo,
    /// Injected faults: one instant per applied injection
    /// (arg = applications so far), plus degradation marks.
    Fault,
    /// Energy attribution: per-core cumulative microjoule counters
    /// and end-of-run component totals.
    Energy,
    /// Governor flight recorder: one instant per recorded decision
    /// (arg = `from_pstate << 8 | to_pstate`).
    Gov,
    /// Telemetry timeline: one counter per core per
    /// [`timeseries::Gauge`], replayed from the retained sample rows.
    Timeline,
}

/// Number of categories (track layout tables).
pub const CATEGORIES: usize = 13;

impl TraceCategory {
    /// All categories, in track display order.
    pub const ALL: [TraceCategory; CATEGORIES] = [
        TraceCategory::Irq,
        TraceCategory::NapiMode,
        TraceCategory::Poll,
        TraceCategory::Ksoftirqd,
        TraceCategory::PState,
        TraceCategory::CState,
        TraceCategory::Request,
        TraceCategory::Governor,
        TraceCategory::Slo,
        TraceCategory::Fault,
        TraceCategory::Energy,
        TraceCategory::Gov,
        TraceCategory::Timeline,
    ];

    /// Stable track label (also the Perfetto thread name).
    pub fn label(self) -> &'static str {
        match self {
            TraceCategory::Irq => "irq",
            TraceCategory::NapiMode => "napi-mode",
            TraceCategory::Poll => "poll",
            TraceCategory::Ksoftirqd => "ksoftirqd",
            TraceCategory::PState => "pstate",
            TraceCategory::CState => "cstate",
            TraceCategory::Request => "requests",
            TraceCategory::Governor => "governor",
            TraceCategory::Slo => "slo",
            TraceCategory::Fault => "fault",
            TraceCategory::Energy => "energy",
            TraceCategory::Gov => "gov",
            TraceCategory::Timeline => "timeline",
        }
    }
}

/// The shape of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A span opens at this time (Chrome-trace phase `B`).
    SpanBegin,
    /// The most recent span of this name on this track closes
    /// (phase `E`).
    SpanEnd,
    /// A point event (phase `i`).
    Instant,
    /// A sampled counter value (phase `C`, value in `arg`).
    Counter,
}

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Span/instant/counter discriminator.
    pub kind: TraceKind,
    /// Track category.
    pub category: TraceCategory,
    /// Core the event happened on (track grouping).
    pub core: u32,
    /// Event name (span or instant label).
    pub name: &'static str,
    /// Free-form argument: packet count, state index, flow id, …
    pub arg: i64,
}

/// A bounded buffer of [`TraceEvent`]s with an explicit overflow
/// counter.
///
/// A capacity of zero means recording is off entirely (the cheap
/// steady state for runs that never export a timeline); overflow of a
/// non-zero capacity is counted in [`dropped`](TraceBuffer::dropped)
/// so truncation is never silent. Without the `obs` feature this is a
/// zero-sized no-op.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    #[cfg(feature = "obs")]
    events: Vec<TraceEvent>,
    #[cfg(feature = "obs")]
    capacity: usize,
    #[cfg(feature = "obs")]
    dropped: u64,
}

impl TraceBuffer {
    /// True when the crate was built with the `obs` feature and
    /// buffers actually record.
    pub const ENABLED: bool = cfg!(feature = "obs");

    /// A disabled buffer (capacity zero): every record is skipped.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A buffer that records up to `capacity` events, then counts
    /// drops.
    pub fn with_capacity(capacity: usize) -> Self {
        #[cfg(feature = "obs")]
        {
            TraceBuffer {
                events: Vec::new(),
                capacity,
                dropped: 0,
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = capacity;
            TraceBuffer {}
        }
    }

    /// The configured capacity (0 without the feature or when
    /// disabled).
    pub fn capacity(&self) -> usize {
        #[cfg(feature = "obs")]
        {
            self.capacity
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// True if this buffer can record anything at all.
    #[inline]
    pub fn is_recording(&self) -> bool {
        Self::ENABLED && self.capacity() > 0
    }

    /// Records one event; counts a drop if the buffer is full.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        #[cfg(feature = "obs")]
        {
            if self.capacity == 0 {
                return; // recording off, not an overflow
            }
            if self.events.len() >= self.capacity {
                self.dropped += 1;
                return;
            }
            self.events.push(event);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = event;
        }
    }

    /// Records a span-begin event.
    #[inline]
    pub fn begin(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        core: u32,
        name: &'static str,
        arg: i64,
    ) {
        self.record(TraceEvent {
            time,
            kind: TraceKind::SpanBegin,
            category,
            core,
            name,
            arg,
        });
    }

    /// Records a span-end event.
    #[inline]
    pub fn end(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        core: u32,
        name: &'static str,
        arg: i64,
    ) {
        self.record(TraceEvent {
            time,
            kind: TraceKind::SpanEnd,
            category,
            core,
            name,
            arg,
        });
    }

    /// Records an instant event.
    #[inline]
    pub fn instant(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        core: u32,
        name: &'static str,
        arg: i64,
    ) {
        self.record(TraceEvent {
            time,
            kind: TraceKind::Instant,
            category,
            core,
            name,
            arg,
        });
    }

    /// Records a counter sample.
    #[inline]
    pub fn counter(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        core: u32,
        name: &'static str,
        value: i64,
    ) {
        self.record(TraceEvent {
            time,
            kind: TraceKind::Counter,
            category,
            core,
            name,
            arg: value,
        });
    }

    /// Moves every event (and the drop count) of `other` into this
    /// buffer, respecting this buffer's capacity. Lets a collector
    /// replay bounded summary logs into a fresh buffer first, then
    /// absorb the high-volume live stream so overflow falls on the
    /// latter.
    pub fn absorb(&mut self, other: TraceBuffer) {
        #[cfg(feature = "obs")]
        {
            self.dropped += other.dropped;
            for event in other.events {
                self.record(event);
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = other;
        }
    }

    /// Events recorded so far, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        #[cfg(feature = "obs")]
        {
            &self.events
        }
        #[cfg(not(feature = "obs"))]
        {
            &[]
        }
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events().is_empty()
    }

    /// Events refused because the buffer was full (never counts while
    /// the capacity is zero, i.e. recording off).
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.dropped
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }
}

/// A log₂-bucketed histogram of `u64` samples.
#[cfg(feature = "obs")]
#[derive(Debug, Clone, PartialEq)]
struct ObsHistogram {
    /// `buckets[i]` counts samples with `bit_width == i` (bucket 0 is
    /// the value 0).
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

#[cfg(feature = "obs")]
impl Default for ObsHistogram {
    fn default() -> Self {
        ObsHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

#[cfg(feature = "obs")]
impl ObsHistogram {
    fn observe(&mut self, value: u64) {
        self.buckets[u64::BITS as usize - value.leading_zeros() as usize] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }
}

/// The frozen form of one histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty log₂ buckets as `(bit_width, count)`, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// Deterministically ordered counters, gauges, and histograms.
///
/// Keys iterate in lexicographic order, so a snapshot taken at the
/// same simulation point of two same-seed runs compares equal. A
/// zero-sized no-op without the `obs` feature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    #[cfg(feature = "obs")]
    counters: BTreeMap<String, u64>,
    #[cfg(feature = "obs")]
    gauges: BTreeMap<String, f64>,
    #[cfg(feature = "obs")]
    histograms: BTreeMap<String, ObsHistogram>,
}

impl MetricsRegistry {
    /// True when the crate was built with the `obs` feature and
    /// registries actually record.
    pub const ENABLED: bool = cfg!(feature = "obs");

    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `key`.
    #[inline]
    pub fn bump(&mut self, key: &str, n: u64) {
        #[cfg(feature = "obs")]
        {
            if let Some(v) = self.counters.get_mut(key) {
                *v += n;
            } else {
                self.counters.insert(key.to_string(), n);
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (key, n);
        }
    }

    /// Sets the counter `key` to an absolute value (end-of-run totals
    /// copied from component bookkeeping).
    #[inline]
    pub fn set_counter(&mut self, key: &str, value: u64) {
        #[cfg(feature = "obs")]
        {
            self.counters.insert(key.to_string(), value);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (key, value);
        }
    }

    /// Sets the gauge `key`.
    #[inline]
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        #[cfg(feature = "obs")]
        {
            self.gauges.insert(key.to_string(), value);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (key, value);
        }
    }

    /// Adds one sample to the histogram `key`.
    #[inline]
    pub fn observe(&mut self, key: &str, value: u64) {
        #[cfg(feature = "obs")]
        {
            if let Some(h) = self.histograms.get_mut(key) {
                h.observe(value);
            } else {
                let mut h = ObsHistogram::default();
                h.observe(value);
                self.histograms.insert(key.to_string(), h);
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (key, value);
        }
    }

    /// The current value of a counter (0 if absent or feature off).
    pub fn counter(&self, key: &str) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.counters.get(key).copied().unwrap_or(0)
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = key;
            0
        }
    }

    /// Freezes the registry into a deterministic snapshot (empty
    /// without the feature).
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(feature = "obs")]
        {
            MetricsSnapshot {
                counters: self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
                gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
                histograms: self
                    .histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            HistogramSnapshot {
                                count: h.count,
                                sum: h.sum,
                                max: h.max,
                                buckets: h
                                    .buckets
                                    .iter()
                                    .enumerate()
                                    .filter(|&(_, &c)| c > 0)
                                    .map(|(i, &c)| (i as u32, c))
                                    .collect(),
                            },
                        )
                    })
                    .collect(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            MetricsSnapshot::default()
        }
    }
}

/// The frozen, ordered form of a [`MetricsRegistry`].
///
/// Every collection is sorted by key, and every value is either an
/// integer or a deterministically computed float, so two same-seed
/// runs produce snapshots that compare (and render) identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, value)` counters, key-ascending.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` gauges, key-ascending.
    pub gauges: Vec<(String, f64)>,
    /// `(key, histogram)` pairs, key-ascending.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// True if the snapshot carries no data (feature off, or nothing
    /// recorded).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter by key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Looks up a histogram by key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Renders the snapshot as stable `key=value` lines (floats carry
    /// their exact bit pattern alongside the readable value).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k}={v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k}={v} bits={:#018x}", v.to_bits());
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {k} count={} sum={} max={}",
                h.count, h.sum, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            kind: TraceKind::Instant,
            category: TraceCategory::Irq,
            core: 0,
            name,
            arg: 0,
        }
    }

    #[test]
    fn overflow_counts_drops_and_keeps_order() {
        let mut buf = TraceBuffer::with_capacity(2);
        buf.record(ev(1, "a"));
        buf.record(ev(2, "b"));
        buf.record(ev(3, "c"));
        buf.record(ev(4, "d"));
        if TraceBuffer::ENABLED {
            assert_eq!(buf.len(), 2);
            assert_eq!(buf.dropped(), 2);
            let names: Vec<_> = buf.events().iter().map(|e| e.name).collect();
            assert_eq!(names, vec!["a", "b"], "retained events keep order");
        } else {
            assert_eq!(buf.len(), 0);
            assert_eq!(buf.dropped(), 0);
        }
    }

    #[test]
    fn absorb_merges_events_and_drop_counts() {
        let mut src = TraceBuffer::with_capacity(2);
        src.record(ev(1, "a"));
        src.record(ev(2, "b"));
        src.record(ev(3, "c")); // dropped in src
        let mut dst = TraceBuffer::with_capacity(3);
        dst.record(ev(0, "x"));
        dst.record(ev(0, "y"));
        dst.absorb(src);
        if TraceBuffer::ENABLED {
            assert_eq!(dst.len(), 3, "absorb respects dst capacity");
            let names: Vec<_> = dst.events().iter().map(|e| e.name).collect();
            assert_eq!(names, vec!["x", "y", "a"]);
            // 1 carried over from src + 1 refused by dst's capacity.
            assert_eq!(dst.dropped(), 2);
        } else {
            assert_eq!(dst.len(), 0);
            assert_eq!(dst.dropped(), 0);
        }
    }

    #[test]
    fn disabled_buffer_never_records_or_counts() {
        let mut buf = TraceBuffer::disabled();
        assert!(!buf.is_recording());
        buf.record(ev(1, "a"));
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.dropped(), 0, "capacity 0 is off, not overflow");
    }

    #[test]
    fn span_helpers_tag_kinds() {
        let mut buf = TraceBuffer::with_capacity(16);
        buf.begin(SimTime::ZERO, TraceCategory::Request, 1, "request", 9);
        buf.end(
            SimTime::from_nanos(5),
            TraceCategory::Request,
            1,
            "request",
            9,
        );
        buf.instant(
            SimTime::from_nanos(6),
            TraceCategory::Governor,
            1,
            "set_pstate",
            0,
        );
        buf.counter(
            SimTime::from_nanos(7),
            TraceCategory::Irq,
            1,
            "occupancy",
            3,
        );
        if TraceBuffer::ENABLED {
            let kinds: Vec<_> = buf.events().iter().map(|e| e.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    TraceKind::SpanBegin,
                    TraceKind::SpanEnd,
                    TraceKind::Instant,
                    TraceKind::Counter,
                ]
            );
        }
    }

    #[test]
    fn category_labels_are_unique() {
        let mut labels: Vec<_> = TraceCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CATEGORIES);
    }

    #[test]
    fn metrics_snapshot_is_ordered_and_deterministic() {
        let mut m = MetricsRegistry::new();
        m.bump("z.last", 1);
        m.bump("a.first", 2);
        m.bump("a.first", 3);
        m.set_gauge("power_w", 17.25);
        m.observe("batch", 0);
        m.observe("batch", 64);
        m.observe("batch", 64);
        let snap = m.snapshot();
        assert_eq!(snap, m.snapshot());
        if MetricsRegistry::ENABLED {
            assert_eq!(
                snap.counters,
                vec![("a.first".to_string(), 5), ("z.last".to_string(), 1)]
            );
            assert_eq!(snap.counter("a.first"), Some(5));
            let (_, h) = &snap.histograms[0];
            assert_eq!(h.count, 3);
            assert_eq!(h.sum, 128);
            assert_eq!(h.max, 64);
            assert_eq!(h.buckets, vec![(0, 1), (7, 2)]);
            assert!(snap.render().contains("counter a.first=5"));
        } else {
            assert!(snap.is_empty());
        }
    }

    #[test]
    fn zero_cost_shapes_when_disabled() {
        if !TraceBuffer::ENABLED {
            assert_eq!(std::mem::size_of::<TraceBuffer>(), 0);
            assert_eq!(std::mem::size_of::<MetricsRegistry>(), 0);
        }
    }
}
