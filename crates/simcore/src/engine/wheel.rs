//! Hierarchical timing wheel — the default scheduler backend.
//!
//! Eight levels of 64 slots each, with a 1 ns tick at level 0. Level
//! `l` buckets aggregate aligned `64^l`-nanosecond blocks, so the
//! wheel spans `64^8` ns (≈ 3.3 days of virtual time) from the
//! current cursor's top-level block; anything beyond that parks in an
//! insertion-ordered overflow list (the calendar-queue fallback) and
//! is pulled in when the wheel drains and rebases.
//!
//! Design notes (also see DESIGN.md §"Event core"):
//!
//! * **Exactness.** This is not a quantizing wheel: level-0 buckets
//!   hold events of one exact nanosecond, so pop order is the strict
//!   `(time, seq)` order the engine documents. Higher-level buckets
//!   hold *blocks* of time; their contents cascade down a level at a
//!   time as the cursor reaches them, preserving list order.
//! * **Occupancy bitmaps.** One `u64` per level marks non-empty
//!   buckets; finding the next event is a handful of
//!   `trailing_zeros` calls, never a scan over empty slots, so
//!   sparse schedules (microsecond gaps between nanosecond-resolution
//!   events) cost nothing to skip across.
//! * **FIFO preservation.** Bucket lists only ever (a) append a
//!   freshly scheduled event, whose `seq` is globally maximal, or
//!   (b) receive a cascaded/rebased list in its existing order into
//!   levels that are empty at that moment — so every bucket list is
//!   `seq`-sorted at all times and same-timestamp FIFO needs no
//!   explicit sort.
//! * **Bounded advance.** [`pop_within`](WheelQueue::pop_within)
//!   never moves the cursor past `bound`, so a `run_until(deadline)`
//!   that stops short leaves the wheel able to accept events
//!   scheduled at any `time >= deadline` (the engine clamps schedule
//!   times to its clock, which ends at the deadline).
//! * **Cancellation.** Cancelled events are husks (their arena slot
//!   is dead); they are purged and released when a pop or cascade
//!   next touches their bucket, costing O(1) amortized.

use super::arena::{Arena, NIL};
use super::{SchedQueue, SimTime};

/// log2 of the per-level fan-out.
const BITS: u32 = 6;
/// Buckets per level.
const SLOTS: usize = 1 << BITS;
/// Number of wheel levels; beyond `64^LEVELS` ns lies the overflow
/// list.
const LEVELS: usize = 8;
/// Shift that isolates the top-level block of an absolute time.
const TOP_SHIFT: u32 = BITS * LEVELS as u32;

/// An intrusive FIFO list of arena slots (head/tail indices).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        head: NIL,
        tail: NIL,
    };
}

/// The hierarchical timing wheel. See the module docs for layout and
/// invariants.
pub struct WheelQueue {
    /// Current wheel position in absolute nanoseconds. Invariant: no
    /// pending event fires before `cur`, and `cur` never exceeds the
    /// engine's clock by more than the bound passed to `pop_within`.
    /// Advancement is committed only on behalf of *live* events (a
    /// pop, or a cascade/rebase of a bucket holding at least one);
    /// buckets that turn out to be all cancelled husks are purged
    /// with the cursor untouched, so a pop that drains to `None`
    /// never strands `cur` ahead of times the engine may still
    /// schedule.
    cur: u64,
    /// Per-level occupancy bitmaps (bit *i* ⇔ bucket *i* non-empty).
    occ: [u64; LEVELS],
    /// The bucket lists, boxed to keep `Simulator` cheap to move.
    buckets: Box<[[Bucket; SLOTS]; LEVELS]>,
    /// Events beyond the wheel span, in insertion (= `seq`) order.
    overflow: Vec<u32>,
}

impl Default for WheelQueue {
    fn default() -> Self {
        WheelQueue {
            cur: 0,
            occ: [0; LEVELS],
            buckets: Box::new([[Bucket::EMPTY; SLOTS]; LEVELS]),
            overflow: Vec::new(),
        }
    }
}

impl WheelQueue {
    /// Appends `slot` to bucket `(lvl, idx)`, maintaining FIFO order
    /// and the occupancy bitmap.
    fn push_bucket(&mut self, arena: &mut Arena, lvl: usize, idx: usize, slot: u32) {
        if let Some(m) = arena.meta.get_mut(slot as usize) {
            m.next = NIL;
        }
        let b = &mut self.buckets[lvl][idx];
        if b.head == NIL {
            b.head = slot;
        } else if let Some(tail) = arena.meta.get_mut(b.tail as usize) {
            tail.next = slot;
        }
        b.tail = slot;
        self.occ[lvl] |= 1u64 << idx;
    }

    /// Routes `slot` to its level/bucket relative to the current
    /// cursor: the *lowest* level whose aligned window contains both
    /// the cursor and the event's time. Far-future events go to the
    /// overflow list.
    fn place(&mut self, arena: &mut Arena, slot: u32) {
        let t = arena.get(slot).map_or(0, |m| m.time.as_nanos());
        debug_assert!(t >= self.cur, "event scheduled before wheel cursor");
        if (t >> TOP_SHIFT) != (self.cur >> TOP_SHIFT) {
            if let Some(m) = arena.meta.get_mut(slot as usize) {
                m.next = NIL;
            }
            self.overflow.push(slot);
            return;
        }
        let diff = t ^ self.cur;
        let lvl = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        };
        let idx = ((t >> (BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.push_bucket(arena, lvl, idx, slot);
    }

    /// Detaches bucket `(lvl, idx)` and redistributes its events into
    /// lower levels relative to the (already advanced) cursor,
    /// releasing cancelled husks along the way. List order — and
    /// therefore `seq` order — is preserved.
    fn cascade(&mut self, arena: &mut Arena, lvl: usize, idx: usize) {
        let mut node = self.buckets[lvl][idx].head;
        self.buckets[lvl][idx] = Bucket::EMPTY;
        self.occ[lvl] &= !(1u64 << idx);
        while node != NIL {
            let next = arena.get(node).map_or(NIL, |m| m.next);
            if arena.is_live(node) {
                self.place(arena, node);
            } else {
                arena.release(node);
            }
            node = next;
        }
    }

    /// True if bucket `(lvl, idx)` holds at least one live (not
    /// cancelled) event.
    fn bucket_has_live(&self, arena: &Arena, lvl: usize, idx: usize) -> bool {
        let mut node = self.buckets[lvl][idx].head;
        while node != NIL {
            if arena.is_live(node) {
                return true;
            }
            node = arena.get(node).map_or(NIL, |m| m.next);
        }
        false
    }

    /// Empties bucket `(lvl, idx)` and releases every entry back to
    /// the arena. Only called on buckets known to hold no live events.
    fn purge_bucket(&mut self, arena: &mut Arena, lvl: usize, idx: usize) {
        let mut node = self.buckets[lvl][idx].head;
        self.buckets[lvl][idx] = Bucket::EMPTY;
        self.occ[lvl] &= !(1u64 << idx);
        while node != NIL {
            let next = arena.get(node).map_or(NIL, |m| m.next);
            arena.release(node);
            node = next;
        }
    }

    /// Drops cancelled husks from the overflow list and returns the
    /// earliest live overflow time, if any.
    fn overflow_min(&mut self, arena: &mut Arena) -> Option<u64> {
        let mut min = None;
        let mut kept = 0;
        for i in 0..self.overflow.len() {
            let slot = self.overflow[i];
            if arena.is_live(slot) {
                let t = arena.get(slot).map_or(0, |m| m.time.as_nanos());
                min = Some(min.map_or(t, |m: u64| m.min(t)));
                self.overflow[kept] = slot;
                kept += 1;
            } else {
                arena.release(slot);
            }
        }
        self.overflow.truncate(kept);
        min
    }
}

impl super::sealed::Sealed for WheelQueue {}

impl SchedQueue for WheelQueue {
    fn insert(&mut self, arena: &mut Arena, slot: u32) {
        self.place(arena, slot);
    }

    fn pop_within(&mut self, arena: &mut Arena, bound: SimTime) -> Option<u32> {
        let bound = bound.as_nanos();
        loop {
            // Level 0 first: one bucket = one exact nanosecond, so the
            // lowest occupied bucket's head is the earliest event.
            if self.occ[0] != 0 {
                let idx = self.occ[0].trailing_zeros() as usize;
                // Purge cancelled husks at the head of the list.
                loop {
                    let head = self.buckets[0][idx].head;
                    if head == NIL || arena.is_live(head) {
                        break;
                    }
                    self.buckets[0][idx].head = arena.get(head).map_or(NIL, |m| m.next);
                    arena.release(head);
                }
                let slot = self.buckets[0][idx].head;
                if slot == NIL {
                    self.buckets[0][idx] = Bucket::EMPTY;
                    self.occ[0] &= !(1u64 << idx);
                    continue;
                }
                let t = arena.get(slot).map_or(0, |m| m.time.as_nanos());
                if t > bound {
                    return None;
                }
                self.buckets[0][idx].head = arena.get(slot).map_or(NIL, |m| m.next);
                if self.buckets[0][idx].head == NIL {
                    self.buckets[0][idx] = Bucket::EMPTY;
                    self.occ[0] &= !(1u64 << idx);
                }
                self.cur = t;
                return Some(slot);
            }

            // Cascade the earliest block of the lowest occupied level.
            // Every event at level `l` lies in the cursor's aligned
            // `64^(l+1)` window *after* the cursor, so the lowest set
            // bit is the earliest block and levels below are empty.
            if let Some(lvl) = (1..LEVELS).find(|&l| self.occ[l] != 0) {
                let idx = self.occ[lvl].trailing_zeros() as usize;
                // A bucket holding only cancelled husks must not move
                // the cursor: nothing in it will pop, so committing
                // `cur` to the husks' block would strand the wheel
                // ahead of the engine clock, and a later schedule at a
                // legal time (>= now, < cur) would land *behind* the
                // cursor — tripping place()'s invariant in debug
                // builds and livelocking the cascade arm in release.
                // Purge the husks in place and retry, cursor untouched.
                if !self.bucket_has_live(arena, lvl, idx) {
                    self.purge_bucket(arena, lvl, idx);
                    continue;
                }
                let span_mask = (1u64 << (BITS * (lvl as u32 + 1))) - 1;
                let base = (self.cur & !span_mask) | ((idx as u64) << (BITS * lvl as u32));
                if base > bound {
                    // The earliest pending event fires after `bound`;
                    // leave the cursor untouched so later schedules
                    // at `>= bound` stay valid.
                    return None;
                }
                debug_assert!(base >= self.cur, "cascade moved the wheel backwards");
                self.cur = self.cur.max(base);
                self.cascade(arena, lvl, idx);
                continue;
            }

            // Wheel empty: rebase onto the overflow list, if it holds
            // anything live within the bound.
            let min = self.overflow_min(arena)?;
            if min > bound {
                return None;
            }
            self.cur = min;
            // Re-route every parked event; those still beyond the new
            // top-level block simply re-enter the overflow list, in
            // order.
            let parked = std::mem::take(&mut self.overflow);
            for slot in parked {
                self.place(arena, slot);
            }
        }
    }
}

#[cfg(test)]
impl WheelQueue {
    /// True when no entries (live or husk) remain anywhere.
    fn is_empty(&self) -> bool {
        self.occ.iter().all(|&o| o == 0) && self.overflow.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_at(arena: &mut Arena, t: u64, seq: u64) -> u32 {
        arena.alloc(SimTime::from_nanos(t), seq)
    }

    fn drain(q: &mut WheelQueue, arena: &mut Arena) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(slot) = q.pop_within(arena, SimTime::MAX) {
            out.push(arena.get(slot).map(|m| m.seq).expect("live slot"));
            arena.release(slot);
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut arena = Arena::default();
        let mut q = WheelQueue::default();
        // Deliberately straddle several levels and include ties.
        let times = [5u64, 5, 63, 64, 65, 4095, 4096, 4097, 262_144, 5];
        for (seq, &t) in times.iter().enumerate() {
            let slot = alloc_at(&mut arena, t, seq as u64);
            q.insert(&mut arena, slot);
        }
        assert_eq!(
            drain(&mut q, &mut arena),
            vec![0, 1, 9, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn far_future_goes_to_overflow_and_comes_back() {
        let mut arena = Arena::default();
        let mut q = WheelQueue::default();
        let far = 1u64 << (TOP_SHIFT + 3); // beyond the wheel span
        let a = alloc_at(&mut arena, far, 0);
        let b = alloc_at(&mut arena, 10, 1);
        q.insert(&mut arena, a);
        q.insert(&mut arena, b);
        assert_eq!(q.overflow.len(), 1);
        assert_eq!(drain(&mut q, &mut arena), vec![1, 0]);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_pop_does_not_advance_past_bound() {
        let mut arena = Arena::default();
        let mut q = WheelQueue::default();
        let slot = alloc_at(&mut arena, 1_000_000, 0);
        q.insert(&mut arena, slot);
        assert_eq!(q.pop_within(&mut arena, SimTime::from_nanos(500)), None);
        assert!(q.cur <= 500, "cursor ran past the bound: {}", q.cur);
        // A later event scheduled after the bound must still be
        // insertable and pop first if earlier.
        let early = alloc_at(&mut arena, 600, 1);
        q.insert(&mut arena, early);
        assert_eq!(drain(&mut q, &mut arena), vec![1, 0]);
    }

    /// Regression (REVIEW: high): draining a cascade that holds only
    /// cancelled husks must not commit the cursor to the husks'
    /// bucket base — a later insert at a legal earlier time would
    /// land behind the cursor (debug panic / release livelock).
    #[test]
    fn husk_only_cascade_leaves_cursor_for_earlier_reschedule() {
        let mut arena = Arena::default();
        let mut q = WheelQueue::default();
        // 10_000 ns sits at wheel level 2; cancel it so the cascade
        // finds nothing live.
        let dead = alloc_at(&mut arena, 10_000, 0);
        q.insert(&mut arena, dead);
        arena.kill(dead);
        assert_eq!(q.pop_within(&mut arena, SimTime::MAX), None);
        assert_eq!(q.cur, 0, "husk-only drain moved the cursor");
        // An earlier (still legal: engine clock never advanced) time
        // must insert and pop cleanly.
        let live = alloc_at(&mut arena, 100, 1);
        q.insert(&mut arena, live);
        assert_eq!(drain(&mut q, &mut arena), vec![1]);
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_husks_are_released_lazily() {
        let mut arena = Arena::default();
        let mut q = WheelQueue::default();
        let a = alloc_at(&mut arena, 100, 0);
        let b = alloc_at(&mut arena, 100, 1);
        let c = alloc_at(&mut arena, 1 << (TOP_SHIFT + 1), 2);
        q.insert(&mut arena, a);
        q.insert(&mut arena, b);
        q.insert(&mut arena, c);
        arena.kill(a);
        arena.kill(c);
        assert_eq!(drain(&mut q, &mut arena), vec![1]);
        assert!(q.is_empty());
        // Both husks were released back to the free list: allocating
        // twice reuses them (in LIFO order) with bumped generations.
        let g_a = arena.gen(a);
        let reused = arena.alloc(SimTime::from_nanos(1), 3);
        assert!(reused == a || reused == c);
        if reused == a {
            assert_eq!(arena.gen(a), g_a);
        }
    }
}
