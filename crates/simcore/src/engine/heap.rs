//! Binary-heap scheduler backend — the differential-testing oracle.
//!
//! This is the engine's original `BinaryHeap` core (a max-heap with
//! inverted `(time, seq)` ordering and lazy purging of cancelled
//! entries), retained verbatim in spirit behind the `heap-sched`
//! feature. Its pop order is trivially the documented `(time, seq)`
//! total order, which makes it the oracle the differential property
//! suite (`tests/scheduler.rs`) and the `--features heap-sched` CI
//! lane compare the timing wheel against.

use super::arena::Arena;
use super::{SchedQueue, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One heap entry: ordering metadata plus the arena slot it ranks.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, with FIFO order among equal timestamps.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The heap-ordered oracle backend. O(log n) schedule/pop, lazy
/// cancellation.
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Entry>,
}

impl super::sealed::Sealed for HeapQueue {}

impl SchedQueue for HeapQueue {
    fn insert(&mut self, arena: &mut Arena, slot: u32) {
        let Some(m) = arena.get(slot) else { return };
        self.heap.push(Entry {
            time: m.time,
            seq: m.seq,
            slot,
        });
    }

    fn pop_within(&mut self, arena: &mut Arena, bound: SimTime) -> Option<u32> {
        loop {
            let ev = *self.heap.peek()?;
            if !arena.is_live(ev.slot) {
                // Cancelled husk: release its slot and keep looking.
                self.heap.pop();
                arena.release(ev.slot);
                continue;
            }
            if ev.time > bound {
                return None;
            }
            self.heap.pop();
            return Some(ev.slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order_with_lazy_cancel() {
        let mut arena = Arena::default();
        let mut q = HeapQueue::default();
        let times = [30u64, 10, 10, 20];
        let slots: Vec<u32> = times
            .iter()
            .enumerate()
            .map(|(seq, &t)| {
                let s = arena.alloc(SimTime::from_nanos(t), seq as u64);
                q.insert(&mut arena, s);
                s
            })
            .collect();
        arena.kill(slots[2]);
        let mut seqs = Vec::new();
        while let Some(slot) = q.pop_within(&mut arena, SimTime::MAX) {
            seqs.push(arena.get(slot).map(|m| m.seq).expect("live"));
            arena.release(slot);
        }
        assert_eq!(seqs, vec![1, 3, 0]);
    }

    #[test]
    fn bounded_pop_leaves_later_events() {
        let mut arena = Arena::default();
        let mut q = HeapQueue::default();
        let s = arena.alloc(SimTime::from_nanos(100), 0);
        q.insert(&mut arena, s);
        assert_eq!(q.pop_within(&mut arena, SimTime::from_nanos(50)), None);
        assert_eq!(q.pop_within(&mut arena, SimTime::from_nanos(100)), Some(s));
    }
}
