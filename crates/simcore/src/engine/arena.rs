//! Slot arena backing the event queue.
//!
//! Every scheduled event owns one arena slot holding its ordering
//! metadata (`time`, `seq`), its liveness flag, a generation counter,
//! and an intrusive `next` link the scheduler backends use to chain
//! slots into bucket lists. The boxed action itself lives in a
//! parallel `Vec` inside [`Simulator`](crate::Simulator) so the arena
//! — and therefore both scheduler backends — stays non-generic.
//!
//! Slots are recycled through a free list; each release bumps the
//! slot's generation, so a stale [`EventId`](crate::EventId) (slot +
//! generation captured at schedule time) can never cancel a later
//! event that happens to reuse the same slot.

use crate::time::SimTime;

/// Sentinel "null" slot index terminating bucket lists.
pub(crate) const NIL: u32 = u32::MAX;

/// Per-event ordering metadata and list linkage.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotMeta {
    /// Absolute firing time.
    pub time: SimTime,
    /// Monotone schedule sequence number — the FIFO tie-break.
    pub seq: u64,
    /// Bumped on every release; half of the `EventId` handle.
    pub gen: u32,
    /// True from `schedule` until the event runs or is cancelled.
    pub live: bool,
    /// Intrusive link for whatever list a backend threads through.
    pub next: u32,
}

/// The slot store shared by [`Simulator`](crate::Simulator) and its
/// scheduler backend. Public only because it appears in the sealed
/// [`SchedQueue`](crate::engine::SchedQueue) method signatures.
#[derive(Debug, Default)]
#[doc(hidden)]
pub struct Arena {
    pub(crate) meta: Vec<SlotMeta>,
    free: Vec<u32>,
}

impl Arena {
    /// Claims a slot for an event firing at `time` with FIFO rank
    /// `seq`. Reuses a released slot when one is available (keeping
    /// its bumped generation), otherwise grows the arena.
    pub(crate) fn alloc(&mut self, time: SimTime, seq: u64) -> u32 {
        if let Some(slot) = self.free.pop() {
            if let Some(m) = self.meta.get_mut(slot as usize) {
                m.time = time;
                m.seq = seq;
                m.live = true;
                m.next = NIL;
            }
            return slot;
        }
        let slot = self.meta.len();
        // 2^32-1 simultaneously-pending events would need hundreds of
        // gigabytes of actions; treat overflow as a hard logic error.
        assert!(slot < NIL as usize, "event arena exhausted");
        self.meta.push(SlotMeta {
            time,
            seq,
            gen: 0,
            live: true,
            next: NIL,
        });
        slot as u32
    }

    /// Returns a slot to the free list once its event has run or its
    /// cancelled husk has been purged from a bucket. Bumps the
    /// generation so any outstanding handle to the old event goes
    /// stale.
    pub(crate) fn release(&mut self, slot: u32) {
        if let Some(m) = self.meta.get_mut(slot as usize) {
            m.live = false;
            m.gen = m.gen.wrapping_add(1);
            m.next = NIL;
            self.free.push(slot);
        }
    }

    /// The slot's current generation (0 for a never-recycled slot).
    pub(crate) fn gen(&self, slot: u32) -> u32 {
        self.meta.get(slot as usize).map_or(0, |m| m.gen)
    }

    /// True if the slot currently holds a scheduled, uncancelled
    /// event.
    pub(crate) fn is_live(&self, slot: u32) -> bool {
        self.meta.get(slot as usize).is_some_and(|m| m.live)
    }

    /// Marks a live slot cancelled. The slot stays in whatever bucket
    /// list holds it; backends purge and release it lazily. Returns
    /// false if the slot was not live.
    pub(crate) fn kill(&mut self, slot: u32) -> bool {
        match self.meta.get_mut(slot as usize) {
            Some(m) if m.live => {
                m.live = false;
                true
            }
            _ => false,
        }
    }

    /// Ordering metadata for a slot; `None` for an out-of-range index.
    pub(crate) fn get(&self, slot: u32) -> Option<&SlotMeta> {
        self.meta.get(slot as usize)
    }
}
