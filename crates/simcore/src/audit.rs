//! simaudit — conservation ledgers for end-to-end accounting.
//!
//! The simulation's value rests on the claim that nothing leaks:
//! every packet generated is delivered, dropped, or demonstrably in
//! flight; every joule the RAPL counter reports is the sum of
//! per-core power×time integrals; every latency sample corresponds to
//! exactly one received response. [`ConservationLedger`] is the
//! event-path side of that audit: components *credit* accounts at the
//! moment the corresponding event happens, and an audit pass compares
//! the ledger against each component's internal bookkeeping (ring
//! counters, NAPI per-mode totals, client statistics, energy
//! integrals). Drift in either accounting path surfaces as an
//! [`AuditCheck`] violation.
//!
//! # Zero cost when disabled
//!
//! The whole module is gated on the `audit` cargo feature. With the
//! feature off, [`ConservationLedger`] is a zero-sized type whose
//! methods are empty `#[inline]` bodies — call sites compile to
//! nothing, so models can credit unconditionally without `cfg` noise.
//! [`ConservationLedger::ENABLED`] tells audit passes whether a
//! report is meaningful.
//!
//! # Examples
//!
//! ```
//! use simcore::audit::{Account, AuditReport, ConservationLedger};
//!
//! let mut ledger = ConservationLedger::new();
//! ledger.credit(Account::RequestsSent, 3);
//! ledger.credit(Account::ResponsesReceived, 3);
//! if ConservationLedger::ENABLED {
//!     assert_eq!(ledger.balance(Account::RequestsSent), 3);
//! }
//!
//! let mut report = AuditReport::new();
//! report.check_exact(
//!     "requests answered",
//!     ledger.balance(Account::RequestsSent),
//!     ledger.balance(Account::ResponsesReceived),
//! );
//! assert!(report.is_balanced());
//! ```

use std::fmt;

/// The conserved quantities the simulation stack tracks.
///
/// Accounts are credited by the component that *observes* the event:
/// the client credits request/response/latency accounts, the server
/// glue credits the NIC- and delivery-path accounts as it drives the
/// device models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Account {
    /// Application requests the client put on the wire.
    RequestsSent,
    /// Request packets that arrived at the NIC (accepted or dropped).
    RequestsArrivedAtNic,
    /// Request packets tail-dropped by a full Rx ring.
    RequestsDroppedAtNic,
    /// Request packets handed to a socket backlog by a NAPI poll.
    RequestsDelivered,
    /// Requests whose service completed (response put on the wire).
    RequestsCompleted,
    /// Responses that arrived back at the client.
    ResponsesReceived,
    /// End-to-end latency samples recorded by the client.
    LatencySamples,
    /// Wire packets (requests + ACK companions) accepted into Rx rings.
    RxWireEnqueued,
    /// Wire packets tail-dropped by full Rx rings (any kind).
    RxWireDropped,
    /// Wire packets drained from Rx rings by NAPI polls.
    RxWirePolled,
    /// Tx completion descriptors queued by transmits.
    TxCompletionsQueued,
    /// Tx completion descriptors cleaned by NAPI polls.
    TxCompletionsCleaned,
    /// End-to-end latency nanoseconds measured at the client.
    LatencyNanosMeasured,
    /// Latency nanoseconds attributed to pipeline stages by the
    /// attribution profiler (must equal the measured total).
    LatencyNanosAttributed,
    /// Wire packets (either direction, any kind) dropped or corrupted
    /// by injected faults — explicitly accounted so packet
    /// conservation still closes under fault injection.
    PacketsFaultDropped,
    /// Request packets lost to injected wire faults (subset of
    /// [`PacketsFaultDropped`](Account::PacketsFaultDropped)).
    RequestsFaultDropped,
    /// Response packets lost to injected wire faults (subset of
    /// [`PacketsFaultDropped`](Account::PacketsFaultDropped)).
    ResponsesFaultDropped,
    /// Package microjoules measured by the fixed-point energy meters
    /// (core segments plus uncore), credited at sample boundaries.
    EnergyMeasuredUj,
    /// Package microjoules attributed to energy components by the
    /// attribution profiler (must equal the measured total).
    EnergyAttributedUj,
    /// Fleet tier: requests admitted by the front-end load balancer.
    FleetRequestsAdmitted,
    /// Fleet tier: requests that returned a response to the client
    /// (first winning attempt only).
    FleetRequestsCompleted,
    /// Fleet tier: requests abandoned after exhausting their retry
    /// budget.
    FleetRequestsTimedOut,
    /// Fleet tier: individual attempts dispatched to servers
    /// (originals + retries + hedges).
    FleetAttemptsDispatched,
    /// Fleet tier: attempts whose response won its request.
    FleetAttemptsCompleted,
    /// Fleet tier: attempts lost to crashes, partitions, or timeouts.
    FleetAttemptsFailed,
    /// Fleet tier: late or hedged duplicate responses suppressed after
    /// their request already closed.
    FleetHedgesSuppressed,
    /// Request packets shed by the server's admission policy before
    /// entering a socket backlog (bounded-queue overload control).
    PacketsShed,
    /// Fleet tier: arrivals shed by LB-side brownout before dispatch
    /// (counted as admitted, closed immediately as shed).
    FleetRequestsShed,
    /// Fleet tier: attempts rejected by a saturated server's admission
    /// gate (subset of
    /// [`FleetAttemptsFailed`](Account::FleetAttemptsFailed)).
    FleetAttemptsShed,
}

/// Number of accounts (array-backed ledger storage).
const ACCOUNTS: usize = 29;

impl Account {
    /// All accounts, in declaration order.
    pub const ALL: [Account; ACCOUNTS] = [
        Account::RequestsSent,
        Account::RequestsArrivedAtNic,
        Account::RequestsDroppedAtNic,
        Account::RequestsDelivered,
        Account::RequestsCompleted,
        Account::ResponsesReceived,
        Account::LatencySamples,
        Account::RxWireEnqueued,
        Account::RxWireDropped,
        Account::RxWirePolled,
        Account::TxCompletionsQueued,
        Account::TxCompletionsCleaned,
        Account::LatencyNanosMeasured,
        Account::LatencyNanosAttributed,
        Account::PacketsFaultDropped,
        Account::RequestsFaultDropped,
        Account::ResponsesFaultDropped,
        Account::EnergyMeasuredUj,
        Account::EnergyAttributedUj,
        Account::FleetRequestsAdmitted,
        Account::FleetRequestsCompleted,
        Account::FleetRequestsTimedOut,
        Account::FleetAttemptsDispatched,
        Account::FleetAttemptsCompleted,
        Account::FleetAttemptsFailed,
        Account::FleetHedgesSuppressed,
        Account::PacketsShed,
        Account::FleetRequestsShed,
        Account::FleetAttemptsShed,
    ];
}

/// Event-path counters for conserved quantities.
///
/// See the [module docs](self) for the design; with the `audit`
/// feature disabled this is a zero-sized no-op.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConservationLedger {
    #[cfg(feature = "audit")]
    counts: [u64; ACCOUNTS],
}

impl ConservationLedger {
    /// True when the crate was built with the `audit` feature and
    /// ledgers actually count.
    pub const ENABLED: bool = cfg!(feature = "audit");

    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `account`. No-op without the `audit` feature.
    ///
    /// Saturates rather than overflowing: a pinned counter shows up
    /// as a conservation imbalance in the audit report instead of a
    /// debug-build panic (or a silent release-build wrap) mid-run.
    #[inline]
    pub fn credit(&mut self, account: Account, n: u64) {
        #[cfg(feature = "audit")]
        {
            let slot = &mut self.counts[account as usize];
            *slot = slot.saturating_add(n);
        }
        #[cfg(not(feature = "audit"))]
        {
            let _ = (account, n);
        }
    }

    /// The current balance of `account` (0 without the feature).
    #[inline]
    pub fn balance(&self, account: Account) -> u64 {
        #[cfg(feature = "audit")]
        {
            self.counts[account as usize]
        }
        #[cfg(not(feature = "audit"))]
        {
            let _ = account;
            0
        }
    }

    /// Snapshot of every account balance, in [`Account::ALL`] order.
    pub fn snapshot(&self) -> [u64; ACCOUNTS] {
        let mut out = [0u64; ACCOUNTS];
        for (slot, account) in out.iter_mut().zip(Account::ALL) {
            *slot = self.balance(account);
        }
        out
    }
}

/// One conservation identity evaluated by an audit pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditCheck {
    /// What the identity asserts (e.g. `"rx wire conservation"`).
    pub name: String,
    /// Left-hand side of the identity.
    pub lhs: f64,
    /// Right-hand side of the identity.
    pub rhs: f64,
    /// Allowed relative error (0 for exact integer identities).
    pub rel_tolerance: f64,
}

impl AuditCheck {
    /// True if the identity holds within its tolerance.
    pub fn holds(&self) -> bool {
        if self.lhs == self.rhs {
            return true;
        }
        let scale = self.lhs.abs().max(self.rhs.abs()).max(f64::MIN_POSITIVE);
        (self.lhs - self.rhs).abs() / scale <= self.rel_tolerance
    }
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: lhs={} rhs={} (rel tolerance {})",
            self.name, self.lhs, self.rhs, self.rel_tolerance
        )
    }
}

/// The outcome of one audit pass: a list of evaluated identities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Every identity the pass evaluated.
    pub checks: Vec<AuditCheck>,
}

impl AuditReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an exact integer identity `lhs == rhs`.
    pub fn check_exact(&mut self, name: &str, lhs: u64, rhs: u64) {
        self.checks.push(AuditCheck {
            name: name.to_string(),
            lhs: lhs as f64,
            rhs: rhs as f64,
            rel_tolerance: 0.0,
        });
    }

    /// Records a floating-point identity `lhs ≈ rhs` within
    /// `rel_tolerance` relative error.
    pub fn check_close(&mut self, name: &str, lhs: f64, rhs: f64, rel_tolerance: f64) {
        self.checks.push(AuditCheck {
            name: name.to_string(),
            lhs,
            rhs,
            rel_tolerance,
        });
    }

    /// The identities that do not hold.
    pub fn violations(&self) -> Vec<&AuditCheck> {
        self.checks.iter().filter(|c| !c.holds()).collect()
    }

    /// True if every identity holds.
    pub fn is_balanced(&self) -> bool {
        self.checks.iter().all(|c| c.holds())
    }

    /// Panics with a readable listing if any identity is violated.
    ///
    /// # Panics
    ///
    /// Panics if [`is_balanced`](Self::is_balanced) is false.
    pub fn assert_balanced(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "conservation audit failed ({} of {} checks):\n{}",
            violations.len(),
            self.checks.len(),
            violations
                .iter()
                .map(|c| format!("  {c}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_and_balance_roundtrip() {
        let mut l = ConservationLedger::new();
        l.credit(Account::RxWireEnqueued, 5);
        l.credit(Account::RxWireEnqueued, 2);
        if ConservationLedger::ENABLED {
            assert_eq!(l.balance(Account::RxWireEnqueued), 7);
            assert_eq!(l.balance(Account::RxWireDropped), 0);
        } else {
            assert_eq!(l.balance(Account::RxWireEnqueued), 0);
        }
    }

    #[test]
    fn snapshot_covers_every_account() {
        let mut l = ConservationLedger::new();
        for account in Account::ALL {
            l.credit(account, 1);
        }
        let snap = l.snapshot();
        assert_eq!(snap.len(), Account::ALL.len());
        if ConservationLedger::ENABLED {
            assert!(snap.iter().all(|&v| v == 1));
        }
    }

    #[test]
    fn exact_check_flags_imbalance() {
        let mut r = AuditReport::new();
        r.check_exact("ok", 4, 4);
        r.check_exact("bad", 4, 5);
        assert!(!r.is_balanced());
        assert_eq!(r.violations().len(), 1);
        assert_eq!(r.violations()[0].name, "bad");
    }

    #[test]
    fn close_check_respects_relative_tolerance() {
        let mut r = AuditReport::new();
        r.check_close("within", 1.0, 1.0 + 5e-7, 1e-6);
        r.check_close("outside", 1.0, 1.0 + 5e-5, 1e-6);
        assert!(r.checks[0].holds());
        assert!(!r.checks[1].holds());
    }

    #[test]
    fn zero_lhs_and_rhs_balance() {
        let mut r = AuditReport::new();
        r.check_close("zeros", 0.0, 0.0, 1e-6);
        assert!(r.is_balanced());
    }

    #[test]
    #[should_panic(expected = "conservation audit failed")]
    fn assert_balanced_panics_with_listing() {
        let mut r = AuditReport::new();
        r.check_exact("packets lost", 10, 9);
        r.assert_balanced();
    }
}
