//! Typed event logs for timeline figures.
//!
//! An [`EventLog<T>`] records `(time, T)` markers — ksoftirqd
//! wake-ups, C-state entries, mode transitions — preserving the exact
//! times the paper's timeline figures (Fig 2, 7, 9) plot as marks.

use crate::time::{SimDuration, SimTime};

/// An append-only log of timestamped markers.
///
/// # Examples
///
/// ```
/// use simcore::{EventLog, SimTime};
/// let mut log: EventLog<&str> = EventLog::new();
/// log.push(SimTime::from_micros(3), "wake");
/// log.push(SimTime::from_micros(9), "sleep");
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.iter().next().unwrap().1, "wake");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog<T> {
    entries: Vec<(SimTime, T)>,
}

impl<T> Default for EventLog<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventLog<T> {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog {
            entries: Vec::new(),
        }
    }

    /// Appends a marker at time `t`.
    pub fn push(&mut self, t: SimTime, marker: T) {
        self.entries.push((t, marker));
    }

    /// Number of markers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log holds no markers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(SimTime, T)] {
        &self.entries
    }

    /// Iterator over `(time, marker)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.entries.iter()
    }

    /// Entries with time in `[start, end)`.
    pub fn window(&self, start: SimTime, end: SimTime) -> impl Iterator<Item = &(SimTime, T)> {
        self.entries
            .iter()
            .filter(move |(t, _)| *t >= start && *t < end)
    }

    /// Number of markers per fixed-width bin over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `end < start`.
    pub fn binned_count(&self, start: SimTime, end: SimTime, width: SimDuration) -> Vec<u64> {
        assert!(!width.is_zero(), "bin width must be positive");
        assert!(end >= start, "window must be non-negative");
        let nbins = end
            .saturating_since(start)
            .as_nanos()
            .div_ceil(width.as_nanos());
        let mut bins = vec![0u64; nbins as usize];
        for (t, _) in &self.entries {
            if *t >= start && *t < end {
                let idx = (t.saturating_since(start) / width) as usize;
                if idx < bins.len() {
                    bins[idx] += 1;
                }
            }
        }
        bins
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T> FromIterator<(SimTime, T)> for EventLog<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        EventLog {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<T> Extend<(SimTime, T)> for EventLog<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_filters() {
        let log: EventLog<u32> = [
            (SimTime::from_micros(1), 1),
            (SimTime::from_micros(5), 2),
            (SimTime::from_micros(9), 3),
        ]
        .into_iter()
        .collect();
        let hits: Vec<u32> = log
            .window(SimTime::from_micros(2), SimTime::from_micros(9))
            .map(|&(_, m)| m)
            .collect();
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn binned_counts() {
        let log: EventLog<()> = [
            (SimTime::from_millis(0), ()),
            (SimTime::from_millis(0), ()),
            (SimTime::from_millis(2), ()),
        ]
        .into_iter()
        .collect();
        let bins = log.binned_count(
            SimTime::ZERO,
            SimTime::from_millis(3),
            SimDuration::from_millis(1),
        );
        assert_eq!(bins, vec![2, 0, 1]);
    }

    #[test]
    fn clear_empties() {
        let mut log: EventLog<u8> = EventLog::new();
        log.push(SimTime::ZERO, 1);
        log.clear();
        assert!(log.is_empty());
    }
}
