//! Typed simulation errors.
//!
//! The library crates are panic-free on arbitrary inputs: degenerate
//! configurations surface as [`SimError::InvalidConfig`] from a
//! `validate()` entry point before any model is built, and runaway
//! cells are aborted by the engine's step/wall-clock budget guard as
//! [`SimError::BudgetExceeded`] instead of hanging a sweep. The sweep
//! supervisor in `experiments` keys its retry/quarantine policy on
//! these variants.

use crate::time::SimTime;
use std::fmt;

/// Which budget dimension a run exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The executed-event count crossed the configured ceiling — the
    /// signature of a livelocked or degenerate cell (e.g. a
    /// zero-interval self-perpetuating event chain).
    Events,
    /// Host wall-clock time crossed the configured ceiling.
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Events => write!(f, "event-count"),
            BudgetKind::WallClock => write!(f, "wall-clock"),
        }
    }
}

/// A typed, non-panicking simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration field failed validation before the run started.
    InvalidConfig {
        /// Dotted path of the offending field, e.g. `"load.avg_rps"`.
        field: &'static str,
        /// Human-readable explanation of the constraint it violated.
        reason: String,
    },
    /// The engine's step or wall-clock budget guard aborted the run.
    BudgetExceeded {
        /// Which budget was exhausted.
        kind: BudgetKind,
        /// The configured limit (events, or whole milliseconds for
        /// wall-clock budgets).
        limit: u64,
        /// Events executed when the guard fired.
        events_executed: u64,
        /// Virtual time when the guard fired.
        sim_time: SimTime,
    },
    /// A conservation or accounting invariant failed in a way the
    /// library converted to an error instead of panicking (e.g. a
    /// counter overflow in the ledger).
    Accounting {
        /// Short context, e.g. `"ledger.credit"`.
        context: &'static str,
        /// What went wrong.
        reason: String,
    },
}

impl SimError {
    /// Shorthand for an [`SimError::InvalidConfig`].
    pub fn invalid(field: &'static str, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// True for configuration errors (retrying cannot help).
    pub fn is_config(&self) -> bool {
        matches!(self, SimError::InvalidConfig { .. })
    }

    /// True for budget aborts (a retry with a bigger budget may help;
    /// a retry with the same budget will not, since runs are
    /// deterministic in virtual time — only the wall-clock dimension
    /// is host-dependent).
    pub fn is_budget(&self) -> bool {
        matches!(self, SimError::BudgetExceeded { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            SimError::BudgetExceeded {
                kind,
                limit,
                events_executed,
                sim_time,
            } => write!(
                f,
                "{kind} budget exceeded (limit {limit}) after {events_executed} events \
                 at sim time {sim_time:?}"
            ),
            SimError::Accounting { context, reason } => {
                write!(f, "accounting error in {context}: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SimError::invalid("load.avg_rps", "must be finite and positive");
        assert!(e.to_string().contains("load.avg_rps"));
        assert!(e.is_config());
        assert!(!e.is_budget());
    }

    #[test]
    fn budget_display_names_the_kind() {
        let e = SimError::BudgetExceeded {
            kind: BudgetKind::Events,
            limit: 100,
            events_executed: 100,
            sim_time: SimTime::from_micros(3),
        };
        assert!(e.to_string().contains("event-count"));
        assert!(e.is_budget());
    }
}
