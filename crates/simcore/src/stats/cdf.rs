//! Exact empirical CDFs for the paper's Fig 4 / Fig 11 latency plots.
//!
//! Unlike [`Histogram`](crate::Histogram), a [`Cdf`] keeps every
//! sample, so it can report exact fractions ("18.1 % of requests were
//! under 1 ms") and export the full curve for plotting. Use it for
//! bounded experiment windows; use the histogram for long runs.

use crate::time::SimDuration;

/// A builder/holder for an exact empirical distribution.
///
/// # Examples
///
/// ```
/// use simcore::Cdf;
/// let mut cdf = Cdf::new();
/// for v in [1u64, 2, 3, 4, 100] {
///     cdf.record(v);
/// }
/// assert_eq!(cdf.fraction_at_or_below(4), 0.8);
/// assert_eq!(cdf.quantile(0.5), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<u64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Fraction of samples ≤ `value` (0.0 for an empty CDF).
    pub fn fraction_at_or_below(&mut self, value: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= value);
        idx as f64 / self.samples.len() as f64
    }

    /// Fraction of samples strictly above `value`.
    pub fn fraction_above(&mut self, value: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_at_or_below(value)
    }

    /// Exact empirical quantile: the smallest sample `x` such that at
    /// least `q·n` samples are ≤ `x`. Returns 0 for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// P99 as a duration.
    pub fn p99(&mut self) -> SimDuration {
        SimDuration::from_nanos(self.quantile(0.99))
    }

    /// Exports `points` evenly spaced (value, cumulative-fraction)
    /// pairs for plotting. Returns an empty vector if no samples.
    pub fn curve(&mut self, points: usize) -> Vec<(u64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let rank = ((i * n) / points).max(1);
                (self.samples[rank - 1], rank as f64 / n as f64)
            })
            .collect()
    }

    /// Iterates over the raw samples in insertion order is not
    /// guaranteed; sorts first and returns the sorted slice.
    pub fn sorted_samples(&mut self) -> &[u64] {
        self.ensure_sorted();
        &self.samples
    }
}

impl FromIterator<u64> for Cdf {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let samples: Vec<u64> = iter.into_iter().collect();
        Cdf {
            samples,
            sorted: false,
        }
    }
}

impl Extend<u64> for Cdf {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_safe() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.99), 0);
        assert_eq!(c.fraction_at_or_below(10), 0.0);
        assert!(c.curve(10).is_empty());
    }

    #[test]
    fn exact_fractions() {
        let mut c: Cdf = (1..=100u64).collect();
        assert_eq!(c.len(), 100);
        assert_eq!(c.fraction_at_or_below(50), 0.5);
        assert!((c.fraction_above(99) - 0.01).abs() < 1e-12);
        assert_eq!(c.quantile(0.99), 99);
        assert_eq!(c.quantile(1.0), 100);
        assert_eq!(c.quantile(0.0), 1);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut c = Cdf::new();
        for v in [5u64, 1, 9, 3, 7] {
            c.record(v);
        }
        assert_eq!(c.quantile(0.5), 5);
        assert_eq!(c.sorted_samples(), &[1, 3, 5, 7, 9]);
    }

    #[test]
    fn curve_is_monotone() {
        let mut c: Cdf = (0..1000u64).map(|i| i * 3).collect();
        let curve = c.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extend_and_duration_recording() {
        let mut c = Cdf::new();
        c.extend([10u64, 20, 30]);
        c.record_duration(SimDuration::from_nanos(40));
        assert_eq!(c.len(), 4);
        assert_eq!(c.quantile(1.0), 40);
    }

    #[test]
    fn duplicates() {
        let mut c: Cdf = [5u64; 10].into_iter().collect();
        assert_eq!(c.quantile(0.5), 5);
        assert_eq!(c.fraction_at_or_below(5), 1.0);
        assert_eq!(c.fraction_at_or_below(4), 0.0);
    }
}
