//! Statistics toolkit used by the experiment harness: latency
//! histograms with percentile queries, exact CDFs, running
//! mean/stdev, and time-series recording for the paper's timeline
//! figures.

pub mod cdf;
pub mod histogram;
pub mod running;
pub mod streaming;
pub mod timeseries;
