//! Log-bucketed latency histogram with percentile queries.
//!
//! The layout follows the HdrHistogram idea: values are grouped by
//! binary magnitude, with `1 << SUB_BITS` linear sub-buckets per
//! magnitude, giving a bounded relative error (< 1/64 ≈ 1.6 % with
//! the default 6 sub-bucket bits) across the full `u64` range. That
//! is plenty for P99 comparisons against millisecond-scale SLOs while
//! staying allocation-free after construction.

use crate::time::SimDuration;

const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
// Block 0 holds values < SUB_COUNT; blocks 1..=58 hold binary
// magnitudes 6..=63, covering the whole u64 range.
const BLOCKS: usize = 64 - SUB_BITS as usize + 1;

/// A histogram of non-negative integer samples (typically nanoseconds).
///
/// # Examples
///
/// ```
/// use simcore::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.value_at_quantile(0.50);
/// assert!((490..=515).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BLOCKS * SUB_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_COUNT as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS
        let shift = magnitude - SUB_BITS;
        let sub = (value >> shift) as usize & (SUB_COUNT - 1);
        ((magnitude - SUB_BITS + 1) as usize) * SUB_COUNT + sub
    }

    /// The lowest value that maps to `index` (used to report
    /// percentiles as representative values).
    fn value_of(index: usize) -> u64 {
        let magnitude = index / SUB_COUNT;
        let sub = index % SUB_COUNT;
        if magnitude == 0 {
            return sub as u64;
        }
        let shift = (magnitude - 1) as u32;
        ((SUB_COUNT + sub) as u64) << shift
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The representative value at quantile `q` in `[0, 1]`: the
    /// smallest bucket value such that at least `q * count` samples
    /// are ≤ it. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the true max to avoid overshooting from
                // bucket granularity at the top quantiles.
                return Self::value_of(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// P99 as a duration (the paper's SLO metric).
    pub fn p99(&self) -> SimDuration {
        SimDuration::from_nanos(self.value_at_quantile(0.99))
    }

    /// P50 (median) as a duration.
    pub fn p50(&self) -> SimDuration {
        SimDuration::from_nanos(self.value_at_quantile(0.50))
    }

    /// Fraction of samples strictly greater than `threshold` —
    /// "x % of requests exceed the SLO" in the paper's wording.
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Count buckets fully above the threshold; the bucket holding
        // the threshold itself is attributed below it (consistent with
        // value_at_quantile's "≤" convention).
        let idx = Self::index_of(threshold);
        let above: u64 = self.buckets[idx + 1..].iter().sum();
        above as f64 / self.count as f64
    }

    /// Fraction of samples ≤ `threshold`.
    pub fn fraction_at_or_below(&self, threshold: u64) -> f64 {
        1.0 - self.fraction_above(threshold)
    }

    /// The representative value at quantile `q` of this histogram
    /// merged with `other`, computed without materializing the merged
    /// bucket array (the streaming estimators query a rotating window
    /// pair this way on every rotation).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn merged_quantile(&self, other: &Histogram, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let count = self.count + other.count;
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).max(1);
        // `min` is u64::MAX only for an empty side, which the other
        // side's real minimum then dominates (count > 0 here).
        let max = self.max.max(other.max);
        let min = self.min.min(other.min);
        let mut seen = 0;
        for (i, (&a, &b)) in self.buckets.iter().zip(&other.buckets).enumerate() {
            seen += a + b;
            if seen >= target {
                return Self::value_of(i).min(max).max(min);
            }
        }
        max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Resets to empty.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(123_456);
        assert_eq!(h.count(), 1);
        let p99 = h.value_at_quantile(0.99);
        assert!(relative_error(p99, 123_456) < 0.02, "p99 {p99}");
        assert_eq!(h.min(), 123_456);
        assert_eq!(h.max(), 123_456);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000)] {
            let got = h.value_at_quantile(q);
            assert!(
                relative_error(got, expect) < 0.02,
                "q={q}: got {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn fraction_above_threshold() {
        let mut h = Histogram::new();
        // 99 fast samples, 1 slow.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000_000);
        assert!((h.fraction_above(1_000_000) - 0.01).abs() < 1e-9);
        assert!((h.fraction_at_or_below(1_000_000) - 0.99).abs() < 1e-9);
    }

    #[test]
    fn merged_quantile_matches_materialized_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v * 100);
        }
        for v in 1..=500u64 {
            b.record(v * 1_000);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                a.merged_quantile(&b, q),
                merged.value_at_quantile(q),
                "q={q}"
            );
            assert_eq!(
                b.merged_quantile(&a, q),
                merged.value_at_quantile(q),
                "merged quantile must be symmetric at q={q}"
            );
        }
    }

    #[test]
    fn merged_quantile_with_one_empty_side() {
        let mut a = Histogram::new();
        a.record(777);
        let empty = Histogram::new();
        assert_eq!(
            a.merged_quantile(&empty, 0.5),
            empty.merged_quantile(&a, 0.5)
        );
        assert!(
            a.merged_quantile(&empty, 0.99) >= 768,
            "bucket floor of 777"
        );
        assert_eq!(empty.merged_quantile(&Histogram::new(), 0.99), 0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn index_value_roundtrip_error_bounded() {
        for &v in &[
            1u64,
            63,
            64,
            65,
            100,
            1_000,
            123_456,
            1_000_000,
            u32::MAX as u64,
            1 << 40,
        ] {
            let idx = Histogram::index_of(v);
            let rep = Histogram::value_of(idx);
            assert!(rep <= v, "representative must not exceed value");
            assert!(relative_error(rep, v) < 1.0 / 32.0, "v={v} rep={rep}");
        }
    }

    #[test]
    fn extremes_do_not_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
    }

    fn relative_error(got: u64, expect: u64) -> f64 {
        if expect == 0 {
            return got as f64;
        }
        ((got as f64) - (expect as f64)).abs() / expect as f64
    }
}
