//! Streaming mean/variance (Welford) — used for Table 1 and Table 2,
//! which report mean ± stdev over 10 000 / 100 trials.

/// Numerically stable running mean and standard deviation.
///
/// # Examples
///
/// ```
/// use simcore::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stdev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0.0 if fewer than 1 sample).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stdev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by n-1; 0.0 if fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_stdev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_stdev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s: RunningStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_stdev(), 0.0);
        assert_eq!(s.sample_stdev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_values() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a: RunningStats = (0..100).map(|i| i as f64).collect();
        let b: RunningStats = (100..250).map(|i| (i as f64) * 1.5).collect();
        let all: RunningStats = (0..100)
            .map(|i| i as f64)
            .chain((100..250).map(|i| (i as f64) * 1.5))
            .collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-6);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = RunningStats::new();
        let b: RunningStats = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: RunningStats = [3.0].into_iter().collect();
        c.merge(&RunningStats::new());
        assert_eq!(c.count(), 1);
    }
}
