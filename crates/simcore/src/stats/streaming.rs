//! Streaming percentile estimation and the online SLO watchdog.
//!
//! The post-hoc [`Cdf`](crate::Cdf)/[`Histogram`](crate::Histogram)
//! pipeline answers "what was P99 over the run" — after the run. The
//! paper's argument, though, is about *reaction time*: how long a
//! governor lets the tail sit above the SLO before its signal catches
//! up (§3's bursts, Fig 16's load steps). Answering that needs online
//! estimators:
//!
//! * [`StreamingQuantiles`] — a rotating pair of log-bucketed
//!   [`Histogram`] windows. Inserts are O(1); quantile queries scan a
//!   fixed bucket array; the estimate always covers between one and
//!   two windows of trailing samples (the classic two-bucket sliding
//!   window). Merging two streams is deterministic, so sharded runs
//!   can combine estimators without ordering sensitivity.
//! * [`SloWatchdog`] — per-core and global streams plus an episode
//!   detector: the watchdog flags the moment the trailing window's
//!   P99 crosses the SLO (time-to-detect, measured from the first
//!   over-SLO sample of the episode) and the moment it recovers
//!   (time-to-recover). Detection uses exact integer counting — "more
//!   than 1 % of windowed samples above the SLO" is precisely
//!   "windowed P99 above the SLO" — so no float comparisons are
//!   involved and same-seed runs report identical episodes.

use crate::stats::histogram::Histogram;
use crate::time::{SimDuration, SimTime};

/// A sliding-window quantile estimator built from two rotating
/// [`Histogram`] buckets.
///
/// Samples land in the *current* window; queries merge the current
/// and *previous* windows, so the estimate covers between `window`
/// and `2 × window` of trailing time. Rotation happens lazily on
/// insert, keyed to the sample's timestamp — fully deterministic.
///
/// # Examples
///
/// ```
/// use simcore::{SimDuration, SimTime, StreamingQuantiles};
///
/// let mut s = StreamingQuantiles::new(SimDuration::from_millis(1));
/// for i in 0..100u64 {
///     s.record(SimTime::from_micros(i * 10), 100 + i);
/// }
/// assert_eq!(s.count(), 100);
/// assert!(s.quantile(0.5) >= 100);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingQuantiles {
    window: SimDuration,
    epoch_start: SimTime,
    cur: Histogram,
    prev: Histogram,
}

impl StreamingQuantiles {
    /// Creates an estimator with the given rotation window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "streaming window must be non-zero");
        StreamingQuantiles {
            window,
            epoch_start: SimTime::ZERO,
            cur: Histogram::new(),
            prev: Histogram::new(),
        }
    }

    /// The configured rotation window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records one sample at `now`. Returns how many whole windows
    /// elapsed since the previous epoch (0 = no rotation; values ≥ 2
    /// mean the stream went quiet long enough that both windows were
    /// reset).
    pub fn record(&mut self, now: SimTime, value: u64) -> u64 {
        let advanced = self.advance_to(now);
        self.cur.record(value);
        advanced
    }

    /// Rotates the windows up to `now` without recording (lets a
    /// caller force a fresh estimate at a known boundary). Returns the
    /// number of whole windows advanced, as [`record`] does.
    ///
    /// [`record`]: StreamingQuantiles::record
    pub fn advance_to(&mut self, now: SimTime) -> u64 {
        let w = self.window.as_nanos();
        let elapsed = now.saturating_since(self.epoch_start).as_nanos();
        let k = elapsed / w;
        if k == 0 {
            return 0;
        }
        if k == 1 {
            std::mem::swap(&mut self.prev, &mut self.cur);
            self.cur.clear();
        } else {
            self.prev.clear();
            self.cur.clear();
        }
        self.epoch_start += self.window * k;
        k
    }

    /// Samples currently covered (current + previous window).
    pub fn count(&self) -> u64 {
        self.cur.count() + self.prev.count()
    }

    /// The windowed quantile estimate (0 when no samples are held).
    pub fn quantile(&self, q: f64) -> u64 {
        self.cur.merged_quantile(&self.prev, q)
    }

    /// The windowed P99 in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The windowed P50 in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Merges another estimator into this one, window by window. Both
    /// must use the same window length. The result is independent of
    /// merge order (histogram merges are commutative bucket sums), so
    /// sharded collectors combine deterministically; the later epoch
    /// wins as the merged rotation anchor.
    ///
    /// # Panics
    ///
    /// Panics if the window lengths differ.
    pub fn merge(&mut self, other: &StreamingQuantiles) {
        assert_eq!(
            self.window, other.window,
            "cannot merge streams with different windows"
        );
        self.cur.merge(&other.cur);
        self.prev.merge(&other.prev);
        self.epoch_start = self.epoch_start.max(other.epoch_start);
    }
}

/// What the watchdog observed while absorbing one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogEvent {
    /// The global sliding window rotated: fresh online percentiles
    /// are available (trace-counter material).
    WindowRotated {
        /// Windowed global P99, nanoseconds.
        p99_ns: u64,
        /// Windowed global P50, nanoseconds.
        p50_ns: u64,
    },
    /// A per-core sliding window rotated.
    CoreWindow {
        /// The core whose window rotated.
        core: u32,
        /// That core's windowed P99, nanoseconds.
        p99_ns: u64,
    },
    /// The windowed P99 crossed above the SLO.
    ViolationDetected {
        /// Detection lag: time since the episode's first over-SLO
        /// sample.
        since_first_bad: SimDuration,
    },
    /// The windowed P99 dropped back to or below the SLO.
    Recovered {
        /// How long the episode lasted, detection to recovery.
        violated_for: SimDuration,
    },
}

/// End-of-run watchdog summary: episode counts and mean reaction
/// times. All integer nanoseconds, so same-seed runs compare equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Latency samples absorbed.
    pub samples: u64,
    /// SLO-violation episodes detected (including one still open).
    pub episodes: u32,
    /// True if the run ended inside a violation episode.
    pub open_episode: bool,
    /// When the first episode was detected (ns since run start), or
    /// `u64::MAX` if none.
    pub first_detect_ns: u64,
    /// Total time spent inside detected episodes, nanoseconds (an
    /// open episode counts up to the report time).
    pub total_violation_ns: u64,
    /// Mean time-to-detect across episodes (first over-SLO sample →
    /// detection), nanoseconds.
    pub mean_detect_ns: u64,
    /// Mean time-to-recover across *closed* episodes (detection →
    /// recovery), nanoseconds.
    pub mean_recover_ns: u64,
}

impl WatchdogReport {
    /// Mean time-to-detect as a duration.
    pub fn mean_detect(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean_detect_ns)
    }

    /// Mean time-to-recover as a duration.
    pub fn mean_recover(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean_recover_ns)
    }
}

/// Online per-core P99 tracking plus SLO crossing/recovery detection.
///
/// Feed it every end-to-end latency sample; it maintains one
/// [`StreamingQuantiles`] per serving core and one global, counts
/// over-SLO samples exactly, and emits [`WatchdogEvent`]s the caller
/// can turn into trace instants and counters. See the [module
/// docs](self) for the detection rule.
///
/// # Examples
///
/// ```
/// use simcore::{SimDuration, SimTime, SloWatchdog};
///
/// let slo = SimDuration::from_millis(1);
/// let mut wd = SloWatchdog::new(slo, SimDuration::from_millis(5), 2);
/// let mut events = Vec::new();
/// for i in 0..200u64 {
///     // A burst of 5x-SLO samples must trip the watchdog.
///     wd.record(0, 5_000_000, SimTime::from_micros(i * 20), &mut events);
/// }
/// let report = wd.report(SimTime::from_millis(4));
/// assert_eq!(report.episodes, 1);
/// assert!(report.open_episode);
/// ```
#[derive(Debug, Clone)]
pub struct SloWatchdog {
    slo_ns: u64,
    min_samples: u64,
    global: StreamingQuantiles,
    per_core: Vec<StreamingQuantiles>,
    /// Exact over-SLO counters mirroring the global window pair.
    cur_total: u64,
    cur_above: u64,
    prev_total: u64,
    prev_above: u64,
    samples: u64,
    in_violation: bool,
    /// First over-SLO sample since the last recovery (episode anchor).
    first_bad: Option<SimTime>,
    detect_at: SimTime,
    episodes: u32,
    first_detect_ns: u64,
    closed_violation_ns: u64,
    total_detect_ns: u64,
    total_recover_ns: u64,
    /// Per-episode `(first_bad_ns, recovered_ns)` anchors, with
    /// `u64::MAX` marking a still-open episode — the join input for
    /// fault-recovery attribution (`simcore::fault::join_recovery`).
    episode_log: Vec<(u64, u64)>,
}

impl SloWatchdog {
    /// Creates a watchdog for `cores` serving cores.
    ///
    /// `window` is the rotation window of the underlying streams;
    /// `min_samples` is the minimum number of windowed samples before
    /// the detector is willing to call a violation (guards against
    /// flapping on a handful of samples right after rotation).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(slo: SimDuration, window: SimDuration, cores: usize) -> Self {
        SloWatchdog {
            slo_ns: slo.as_nanos(),
            min_samples: 64,
            global: StreamingQuantiles::new(window),
            per_core: (0..cores)
                .map(|_| StreamingQuantiles::new(window))
                .collect(),
            cur_total: 0,
            cur_above: 0,
            prev_total: 0,
            prev_above: 0,
            samples: 0,
            in_violation: false,
            first_bad: None,
            detect_at: SimTime::ZERO,
            episodes: 0,
            first_detect_ns: u64::MAX,
            closed_violation_ns: 0,
            total_detect_ns: 0,
            total_recover_ns: 0,
            episode_log: Vec::new(),
        }
    }

    /// Overrides the minimum windowed sample count for detection.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// The SLO threshold in nanoseconds.
    pub fn slo_ns(&self) -> u64 {
        self.slo_ns
    }

    /// The current windowed global P99 estimate, nanoseconds.
    pub fn online_p99_ns(&self) -> u64 {
        self.global.p99_ns()
    }

    /// The windowed P99 of one core, nanoseconds (0 for out-of-range
    /// cores).
    pub fn core_p99_ns(&self, core: usize) -> u64 {
        self.per_core.get(core).map_or(0, |s| s.p99_ns())
    }

    /// Absorbs one end-to-end latency sample served by `core`,
    /// appending any state changes to `events`.
    pub fn record(
        &mut self,
        core: usize,
        latency_ns: u64,
        now: SimTime,
        events: &mut Vec<WatchdogEvent>,
    ) {
        self.samples += 1;
        // Rotate the global stream and the mirrored exact counters in
        // lock-step.
        let advanced = self.global.record(now, latency_ns);
        if advanced >= 1 {
            if advanced == 1 {
                self.prev_total = self.cur_total;
                self.prev_above = self.cur_above;
            } else {
                self.prev_total = 0;
                self.prev_above = 0;
            }
            self.cur_total = 0;
            self.cur_above = 0;
            events.push(WatchdogEvent::WindowRotated {
                p99_ns: self.global.p99_ns(),
                p50_ns: self.global.p50_ns(),
            });
        }
        self.cur_total += 1;
        let above = latency_ns > self.slo_ns;
        if above {
            self.cur_above += 1;
            if self.first_bad.is_none() && !self.in_violation {
                self.first_bad = Some(now);
            }
        }
        if let Some(stream) = self.per_core.get_mut(core) {
            if stream.record(now, latency_ns) >= 1 {
                events.push(WatchdogEvent::CoreWindow {
                    core: core as u32,
                    p99_ns: stream.p99_ns(),
                });
            }
        }
        // P99 > SLO over the sliding window ⇔ strictly more than 1 %
        // of windowed samples sit above the SLO (exact integers).
        let total = self.cur_total + self.prev_total;
        let above_n = self.cur_above + self.prev_above;
        let violating = total >= self.min_samples && above_n * 100 > total;
        if !self.in_violation && violating {
            self.in_violation = true;
            self.episodes += 1;
            self.detect_at = now;
            self.first_detect_ns = self.first_detect_ns.min(now.as_nanos());
            let lag = now.saturating_since(self.first_bad.unwrap_or(now));
            self.total_detect_ns += lag.as_nanos();
            self.episode_log
                .push((self.first_bad.unwrap_or(now).as_nanos(), u64::MAX));
            events.push(WatchdogEvent::ViolationDetected {
                since_first_bad: lag,
            });
        } else if self.in_violation && !violating {
            self.in_violation = false;
            self.first_bad = None;
            let held = now.saturating_since(self.detect_at);
            self.closed_violation_ns += held.as_nanos();
            self.total_recover_ns += held.as_nanos();
            if let Some(open) = self.episode_log.last_mut() {
                open.1 = now.as_nanos();
            }
            events.push(WatchdogEvent::Recovered { violated_for: held });
        }
    }

    /// Per-episode `(first_bad_ns, recovered_ns)` anchors in episode
    /// order; a still-open episode carries `u64::MAX` as its end.
    pub fn episode_log(&self) -> &[(u64, u64)] {
        &self.episode_log
    }

    /// Summarizes everything observed so far. `end` closes the open
    /// episode's violation time (the episode itself stays open).
    pub fn report(&self, end: SimTime) -> WatchdogReport {
        let mut total_violation_ns = self.closed_violation_ns;
        if self.in_violation {
            total_violation_ns += end.saturating_since(self.detect_at).as_nanos();
        }
        let closed = self.episodes - self.in_violation as u32;
        WatchdogReport {
            samples: self.samples,
            episodes: self.episodes,
            open_episode: self.in_violation,
            first_detect_ns: self.first_detect_ns,
            total_violation_ns,
            mean_detect_ns: if self.episodes == 0 {
                0
            } else {
                self.total_detect_ns / self.episodes as u64
            },
            mean_recover_ns: if closed == 0 {
                0
            } else {
                self.total_recover_ns / closed as u64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn windowed_quantiles_track_recent_samples() {
        let mut s = StreamingQuantiles::new(SimDuration::from_millis(1));
        // Old slow samples...
        for i in 0..100u64 {
            s.record(SimTime::from_nanos(i * 1_000), 10 * MS);
        }
        // ...age out after two rotations of fast samples.
        for i in 0..200u64 {
            s.record(SimTime::from_nanos(2 * MS + i * 10_000), 100_000);
        }
        let p99 = s.p99_ns();
        assert!(p99 < MS, "stale window must age out, p99 {p99}");
    }

    #[test]
    fn rotation_counts_whole_windows() {
        let mut s = StreamingQuantiles::new(SimDuration::from_millis(1));
        assert_eq!(s.record(SimTime::from_micros(10), 5), 0);
        assert_eq!(s.record(SimTime::from_micros(1_200), 6), 1);
        // A long quiet gap clears both windows.
        assert!(s.record(SimTime::from_micros(9_700), 7) >= 2);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let w = SimDuration::from_millis(1);
        let build = |vals: &[u64]| {
            let mut s = StreamingQuantiles::new(w);
            for (i, &v) in vals.iter().enumerate() {
                s.record(SimTime::from_micros(i as u64 * 7), v);
            }
            s
        };
        let a = build(&[10, 20, 30, 40]);
        let b = build(&[1_000, 2_000]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            assert_eq!(ab.quantile(q), ba.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn merge_rejects_mismatched_windows() {
        let mut a = StreamingQuantiles::new(SimDuration::from_millis(1));
        let b = StreamingQuantiles::new(SimDuration::from_millis(2));
        a.merge(&b);
    }

    fn feed(wd: &mut SloWatchdog, from_us: u64, n: u64, latency_ns: u64) -> Vec<WatchdogEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            wd.record(
                0,
                latency_ns,
                SimTime::from_micros(from_us + i * 10),
                &mut events,
            );
        }
        events
    }

    #[test]
    fn watchdog_detects_and_recovers() {
        let slo = SimDuration::from_millis(1);
        let mut wd = SloWatchdog::new(slo, SimDuration::from_millis(5), 1).with_min_samples(10);
        // Healthy traffic: no episode.
        let evs = feed(&mut wd, 0, 100, 200_000);
        assert!(!evs
            .iter()
            .any(|e| matches!(e, WatchdogEvent::ViolationDetected { .. })));
        // Sustained over-SLO burst: detected once.
        let evs = feed(&mut wd, 1_000, 100, 5 * MS);
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(e, WatchdogEvent::ViolationDetected { .. }))
                .count(),
            1
        );
        // Recovery needs the bad samples to age out of both windows.
        let evs = feed(&mut wd, 12_000, 600, 200_000);
        assert_eq!(
            evs.iter()
                .filter(|e| matches!(e, WatchdogEvent::Recovered { .. }))
                .count(),
            1
        );
        let report = wd.report(SimTime::from_millis(20));
        assert_eq!(report.episodes, 1);
        assert!(!report.open_episode);
        assert!(report.total_violation_ns > 0);
        assert!(report.mean_recover_ns > 0);
        assert_ne!(report.first_detect_ns, u64::MAX);
    }

    #[test]
    fn detect_lag_measured_from_first_bad_sample() {
        let slo = SimDuration::from_millis(1);
        let mut wd = SloWatchdog::new(slo, SimDuration::from_millis(5), 1).with_min_samples(50);
        let mut events = Vec::new();
        // 49 bad samples cannot trip the detector (min_samples)...
        for i in 0..49u64 {
            wd.record(0, 5 * MS, SimTime::from_micros(i * 10), &mut events);
        }
        assert!(events
            .iter()
            .all(|e| !matches!(e, WatchdogEvent::ViolationDetected { .. })));
        // ...the 50th does, and the lag spans back to sample #1.
        wd.record(0, 5 * MS, SimTime::from_micros(490), &mut events);
        let lag = events
            .iter()
            .find_map(|e| match e {
                WatchdogEvent::ViolationDetected { since_first_bad } => Some(*since_first_bad),
                _ => None,
            })
            .expect("detection fired");
        assert_eq!(lag, SimDuration::from_micros(490));
    }

    #[test]
    fn per_core_windows_rotate_independently() {
        let slo = SimDuration::from_millis(1);
        let mut wd = SloWatchdog::new(slo, SimDuration::from_millis(1), 2);
        let mut events = Vec::new();
        wd.record(1, 100, SimTime::from_micros(10), &mut events);
        wd.record(1, 200, SimTime::from_micros(1_500), &mut events);
        assert!(events
            .iter()
            .any(|e| matches!(e, WatchdogEvent::CoreWindow { core: 1, .. })));
        assert!(wd.core_p99_ns(1) > 0);
        assert_eq!(wd.core_p99_ns(7), 0, "out-of-range core reads as 0");
    }

    #[test]
    fn empty_report_is_all_zero() {
        let wd = SloWatchdog::new(SimDuration::from_millis(1), SimDuration::from_millis(5), 4);
        let r = wd.report(SimTime::from_millis(1));
        assert_eq!(r.samples, 0);
        assert_eq!(r.episodes, 0);
        assert!(!r.open_episode);
        assert_eq!(r.first_detect_ns, u64::MAX, "no detection sentinel");
        assert_eq!(r.total_violation_ns, 0);
        assert_eq!(r.mean_detect_ns, 0);
        assert_eq!(r.mean_recover_ns, 0);
    }
}
