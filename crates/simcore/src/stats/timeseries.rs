//! Time-series recording for the paper's timeline figures
//! (Fig 2/7/9/16: P-state traces, per-millisecond packet counts,
//! ksoftirqd wake-up marks).

use crate::time::{SimDuration, SimTime};

/// An append-only series of `(time, value)` points.
///
/// # Examples
///
/// ```
/// use simcore::{TimeSeries, SimTime, SimDuration};
/// let mut ts = TimeSeries::new();
/// ts.push(SimTime::from_millis(1), 2.0);
/// ts.push(SimTime::from_millis(3), 4.0);
/// // Bin into 1 ms buckets, summing values per bucket:
/// let bins = ts.binned_sum(SimTime::ZERO, SimTime::from_millis(4), SimDuration::from_millis(1));
/// assert_eq!(bins, vec![0.0, 2.0, 0.0, 4.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point. Times should be non-decreasing; out-of-order
    /// appends are accepted but binning assumes rough order.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Iterator over the points.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, f64)> {
        self.points.iter()
    }

    /// Sums point values into fixed-width bins over `[start, end)`.
    /// Points outside the window are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `end < start`.
    pub fn binned_sum(&self, start: SimTime, end: SimTime, width: SimDuration) -> Vec<f64> {
        assert!(!width.is_zero(), "bin width must be positive");
        assert!(end >= start, "window must be non-negative");
        let nbins = end
            .saturating_since(start)
            .as_nanos()
            .div_ceil(width.as_nanos());
        let mut bins = vec![0.0; nbins as usize];
        for &(t, v) in &self.points {
            if t >= start && t < end {
                let idx = (t.saturating_since(start) / width) as usize;
                if idx < bins.len() {
                    bins[idx] += v;
                }
            }
        }
        bins
    }

    /// Counts points per bin (ignores values) — packet counts per
    /// millisecond in Fig 2.
    pub fn binned_count(&self, start: SimTime, end: SimTime, width: SimDuration) -> Vec<u64> {
        assert!(!width.is_zero(), "bin width must be positive");
        assert!(end >= start, "window must be non-negative");
        let nbins = end
            .saturating_since(start)
            .as_nanos()
            .div_ceil(width.as_nanos());
        let mut bins = vec![0u64; nbins as usize];
        for &(t, _) in &self.points {
            if t >= start && t < end {
                let idx = (t.saturating_since(start) / width) as usize;
                if idx < bins.len() {
                    bins[idx] += 1;
                }
            }
        }
        bins
    }

    /// Interprets the series as a step function (value holds until the
    /// next point) and samples it at `at`. Returns `default` before
    /// the first point.
    pub fn step_value_at(&self, at: SimTime, default: f64) -> f64 {
        let mut current = default;
        for &(t, v) in &self.points {
            if t <= at {
                current = v;
            } else {
                break;
            }
        }
        current
    }

    /// Time-weighted average of the step function over `[start, end)`,
    /// starting from `initial` before the first point.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn step_time_average(&self, start: SimTime, end: SimTime, initial: f64) -> f64 {
        assert!(end > start, "window must be positive");
        let mut acc = 0.0;
        let mut cur_t = start;
        let mut cur_v = self.step_value_at(start, initial);
        for &(t, v) in &self.points {
            if t <= start {
                continue;
            }
            if t >= end {
                break;
            }
            acc += cur_v * (t - cur_t).as_secs_f64();
            cur_t = t;
            cur_v = v;
        }
        acc += cur_v * (end - cur_t).as_secs_f64();
        acc / (end - start).as_secs_f64()
    }

    /// Clears all points.
    pub fn clear(&mut self) {
        self.points.clear();
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        TimeSeries {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn binned_sum_basics() {
        let ts: TimeSeries = [(ms(0), 1.0), (ms(1), 2.0), (ms(1), 3.0), (ms(5), 4.0)]
            .into_iter()
            .collect();
        let bins = ts.binned_sum(ms(0), ms(6), SimDuration::from_millis(1));
        assert_eq!(bins, vec![1.0, 5.0, 0.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn binned_sum_ignores_outside_window() {
        let ts: TimeSeries = [(ms(0), 1.0), (ms(10), 1.0)].into_iter().collect();
        let bins = ts.binned_sum(ms(1), ms(5), SimDuration::from_millis(1));
        assert_eq!(bins.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn binned_count_counts_points() {
        let ts: TimeSeries = [(ms(0), 9.0), (ms(0), 9.0), (ms(2), 9.0)]
            .into_iter()
            .collect();
        let counts = ts.binned_count(ms(0), ms(3), SimDuration::from_millis(1));
        assert_eq!(counts, vec![2, 0, 1]);
    }

    #[test]
    fn step_sampling() {
        let ts: TimeSeries = [(ms(2), 10.0), (ms(4), 20.0)].into_iter().collect();
        assert_eq!(ts.step_value_at(ms(1), 0.0), 0.0);
        assert_eq!(ts.step_value_at(ms(2), 0.0), 10.0);
        assert_eq!(ts.step_value_at(ms(3), 0.0), 10.0);
        assert_eq!(ts.step_value_at(ms(9), 0.0), 20.0);
    }

    #[test]
    fn step_time_average() {
        // value 0 on [0,2), 10 on [2,4), 20 on [4,6) → avg over [0,6) = (0*2+10*2+20*2)/6 = 10
        let ts: TimeSeries = [(ms(2), 10.0), (ms(4), 20.0)].into_iter().collect();
        let avg = ts.step_time_average(ms(0), ms(6), 0.0);
        assert!((avg - 10.0).abs() < 1e-9);
    }

    #[test]
    fn step_average_with_no_points_is_initial() {
        let ts = TimeSeries::new();
        assert!((ts.step_time_average(ms(0), ms(5), 7.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn partial_final_bin() {
        let ts: TimeSeries = [(SimTime::from_micros(2500), 1.0)].into_iter().collect();
        let bins = ts.binned_sum(
            SimTime::ZERO,
            SimTime::from_micros(2600),
            SimDuration::from_millis(1),
        );
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[2], 1.0);
    }
}
