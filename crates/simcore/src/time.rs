//! Virtual time: absolute instants ([`SimTime`]) and spans
//! ([`SimDuration`]) in integer nanoseconds.
//!
//! Integer nanoseconds keep the simulation deterministic (no
//! floating-point drift in the event queue ordering) while covering
//! the full range the paper needs — from the NIC's 10 µs interrupt
//! moderation window up to multi-second experiment runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant in virtual time, counted in nanoseconds from
/// the start of the simulation.
///
/// # Examples
///
/// ```
/// use simcore::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
/// assert_eq!(SimDuration::from_micros(10) * 3, SimDuration::from_micros(30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the origin,
    /// saturating at [`SimTime::MAX`].
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(1_000))
    }

    /// Creates an instant `millis` milliseconds after the origin,
    /// saturating at [`SimTime::MAX`].
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(1_000_000))
    }

    /// Creates an instant `secs` seconds after the origin, saturating
    /// at [`SimTime::MAX`].
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000_000))
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the origin (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds, saturating at
    /// [`SimDuration::MAX`].
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Creates a span of `millis` milliseconds, saturating at
    /// [`SimDuration::MAX`].
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Creates a span of `secs` seconds, saturating at
    /// [`SimDuration::MAX`].
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Checked addition; `None` on overflow (use where a degenerate
    /// configuration could push a horizon past the representable
    /// range).
    pub const fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(other.0) {
            Some(n) => Some(SimDuration(n)),
            None => None,
        }
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "duration must be non-negative and finite"
        );
        SimDuration((secs * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a span from fractional microseconds (common for service
    /// times), rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or NaN.
    pub fn from_micros_f64(micros: f64) -> Self {
        assert!(
            micros >= 0.0 && micros.is_finite(),
            "duration must be non-negative and finite"
        );
        SimDuration((micros * 1e3).round().min(u64::MAX as f64) as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span as fractional seconds (for reporting and rate math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// nanosecond. Useful for scaling work by a frequency ratio.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "factor must be non-negative and finite"
        );
        SimDuration((self.0 as f64 * factor).round().min(u64::MAX as f64) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "subtracting a later SimTime");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer ratio of two spans (how many `rhs` fit into `self`).
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(40);
        assert_eq!((t + d).as_micros(), 140);
        assert_eq!((t - d).as_micros(), 60);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_micros(120));
        assert_eq!(d / 2, SimDuration::from_micros(20));
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(1));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1_500);
        let e = SimDuration::from_micros_f64(2.25);
        assert_eq!(e.as_nanos(), 2_250);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_ratio_and_rem() {
        let a = SimDuration::from_micros(105);
        let b = SimDuration::from_micros(10);
        assert_eq!(a / b, 10);
        assert_eq!(a % b, SimDuration::from_micros(5));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 1500);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
