//! A small property-testing harness over [`RngStream`].
//!
//! The workspace builds without network access, so instead of
//! `proptest` the property suites draw their arbitrary inputs from
//! the simulator's own deterministic RNG: every case is derived from
//! `(label, case index)`, so a failure report pinpoints a single
//! reproducible case and re-runs are bit-identical.
//!
//! # Examples
//!
//! ```
//! use simcore::check::forall;
//!
//! forall("addition commutes", 64, |rng| {
//!     let a = rng.below(1_000);
//!     let b = rng.below(1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::RngStream;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Master seed all property streams derive from. Changing it reshapes
/// every generated case, so keep it stable.
pub const PROPERTY_SEED: u64 = 0x5eed_cafe_f00d_0001;

/// Runs `property` against `cases` independently derived random
/// streams. On failure, reports the label and case index (enough to
/// reproduce: the stream is `RngStream::derive(PROPERTY_SEED, label,
/// case)`) and re-raises the original panic.
///
/// # Panics
///
/// Propagates the first failing case's panic.
pub fn forall(label: &str, cases: u64, mut property: impl FnMut(&mut RngStream)) {
    for case in 0..cases {
        let mut rng = RngStream::derive(PROPERTY_SEED, label, case);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(cause) = result {
            eprintln!(
                "property '{label}' failed at case {case}/{cases} \
                 (stream = derive({PROPERTY_SEED:#x}, \"{label}\", {case}))"
            );
            resume_unwind(cause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_deterministically() {
        let mut draws = Vec::new();
        forall("collect", 5, |rng| draws.push(rng.next_u64()));
        let mut again = Vec::new();
        forall("collect", 5, |rng| again.push(rng.next_u64()));
        assert_eq!(draws.len(), 5);
        assert_eq!(draws, again);
        // Distinct cases use distinct streams.
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        forall("fails", 3, |rng| {
            if rng.next_u64() % 2 < 2 {
                panic!("boom");
            }
        });
    }
}
