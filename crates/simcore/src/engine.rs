//! The event queue and simulation loop.
//!
//! [`Simulator<W>`] is generic over a user-supplied *world* type `W`
//! holding all model state (cores, NIC, queues, governors…). Events
//! are boxed closures receiving `(&mut W, &mut Simulator<W>)`, so an
//! event can both mutate the world and schedule or cancel further
//! events. Determinism is guaranteed by FIFO tie-breaking on equal
//! timestamps (a monotone sequence number).

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable with [`Simulator::cancel`].
///
/// Ids are unique for the lifetime of a simulator and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Action<W> = Box<dyn FnOnce(&mut W, &mut Simulator<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    id: EventId,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, with FIFO order among equal timestamps.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulator.
///
/// # Examples
///
/// ```
/// use simcore::{Simulator, SimTime, SimDuration};
///
/// let mut hits: Vec<u64> = Vec::new();
/// let mut sim: Simulator<Vec<u64>> = Simulator::new();
/// for i in 0..3 {
///     sim.schedule_at(SimTime::from_micros(10 - i), move |w, _| w.push(i));
/// }
/// sim.run_until(&mut hits, SimTime::from_millis(1));
/// assert_eq!(hits, vec![2, 1, 0]); // time order, not insertion order
/// ```
pub struct Simulator<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    next_seq: u64,
    /// Ids scheduled but not yet executed or cancelled.
    live: HashSet<EventId>,
    executed: u64,
    cancelled: u64,
    max_pending: usize,
}

/// Engine self-profiling counters, cheap enough to always collect.
///
/// Everything here is a function of the event sequence alone, so two
/// same-seed runs report identical profiles — wall-clock timing is
/// deliberately *not* part of this struct (the experiment runner
/// measures it separately, outside anything determinism suites
/// compare).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Events ever scheduled (executed + cancelled + still pending).
    pub events_scheduled: u64,
    /// Events whose action ran.
    pub events_executed: u64,
    /// Events cancelled before running.
    pub events_cancelled: u64,
    /// High-water mark of simultaneously pending events (heap depth).
    pub max_pending: usize,
}

impl<W> Default for Simulator<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Simulator<W> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            live: HashSet::new(),
            executed: 0,
            cancelled: 0,
            max_pending: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (cancelled events excluded).
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Deterministic self-profiling counters for this simulator.
    pub fn profile(&self) -> EngineProfile {
        EngineProfile {
            events_scheduled: self.next_seq,
            events_executed: self.executed,
            events_cancelled: self.cancelled,
            max_pending: self.max_pending,
        }
    }

    /// Schedules `action` to run at absolute time `time`.
    ///
    /// Events scheduled in the past run "now": they are clamped to the
    /// current time and execute before the simulator advances, which
    /// keeps model code free of re-entrancy special cases.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) -> EventId {
        let time = time.max(self.now);
        let id = EventId(self.next_seq);
        self.queue.push(Scheduled {
            time,
            seq: self.next_seq,
            id,
            action: Box::new(action),
        });
        self.live.insert(id);
        self.next_seq += 1;
        self.max_pending = self.max_pending.max(self.live.len());
        id
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (i.e. this call prevented it from running).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id absent from `live` was never issued, already executed,
        // or already cancelled; all of those report false.
        let removed = self.live.remove(&id);
        self.cancelled += removed as u64;
        removed
    }

    /// Runs a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            if !self.live.remove(&ev.id) {
                continue; // cancelled
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.executed += 1;
            (ev.action)(world, self);
            return true;
        }
    }

    /// Runs events until the queue is exhausted or `deadline` is
    /// reached; the simulator clock ends at exactly `deadline` unless
    /// the queue drains earlier. Returns the number of events executed.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start = self.executed;
        loop {
            // Peek past cancelled events to find the next live one.
            let next_time = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(ev) if !self.live.contains(&ev.id) => {
                        self.queue.pop();
                    }
                    Some(ev) => break Some(ev.time),
                }
            };
            match next_time {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.executed - start
    }

    /// Runs until the queue drains, or until `max_events` have run.
    /// Returns the number of events executed.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let start = self.executed;
        while self.executed - start < max_events {
            if !self.step(world) {
                break;
            }
        }
        self.executed - start
    }
}

impl<W> std::fmt::Debug for Simulator<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_in_time_order() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        let mut w = Vec::new();
        sim.schedule_at(SimTime::from_nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_ties() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        let mut w = Vec::new();
        for i in 0..5 {
            sim.schedule_at(SimTime::from_nanos(7), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, sim| {
            *w += 1;
            sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, sim| {
                *w += 10;
                sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, _| *w += 100);
            });
        });
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 111);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel must report false");
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 0);
    }

    #[test]
    fn cancel_after_run_is_false() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 1);
        assert!(!sim.cancel(id));
    }

    #[test]
    fn run_until_stops_at_deadline_and_clamps_clock() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_micros(10), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_micros(30), |w: &mut u32, _| *w += 1);
        let n = sim.run_until(&mut w, SimTime::from_micros(20));
        assert_eq!(n, 1);
        assert_eq!(w, 1);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        // The later event still runs on the next call.
        sim.run_until(&mut w, SimTime::from_micros(40));
        assert_eq!(w, 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_micros(10), |_, sim| {
            // schedule "in the past" — must run at now, not violate order
            sim.schedule_at(SimTime::from_micros(1), |w: &mut u32, _| *w += 1);
        });
        sim.run_until(&mut w, SimTime::from_micros(20));
        assert_eq!(w, 1);
    }

    #[test]
    fn run_to_completion_respects_cap() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        // Self-perpetuating event chain.
        fn tick(w: &mut u64, sim: &mut Simulator<u64>) {
            *w += 1;
            sim.schedule_in(SimDuration::from_nanos(1), tick);
        }
        sim.schedule_in(SimDuration::from_nanos(1), tick);
        let n = sim.run_to_completion(&mut w, 100);
        assert_eq!(n, 100);
        assert_eq!(w, 100);
    }

    #[test]
    fn pending_count_excludes_cancelled() {
        let mut sim: Simulator<u32> = Simulator::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), |_, _| {});
        let _b = sim.schedule_at(SimTime::from_nanos(2), |_, _| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn unknown_id_cancel_is_false() {
        let mut sim: Simulator<u32> = Simulator::new();
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn profile_counts_scheduled_executed_cancelled_and_depth() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let a = sim.schedule_at(SimTime::from_nanos(1), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(2), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(3), |w: &mut u32, _| *w += 1);
        sim.cancel(a);
        sim.cancel(a); // double cancel must not double count
        sim.run_until(&mut w, SimTime::from_micros(1));
        let p = sim.profile();
        assert_eq!(p.events_scheduled, 3);
        assert_eq!(p.events_executed, 2);
        assert_eq!(p.events_cancelled, 1);
        assert_eq!(p.max_pending, 3);
    }
}
