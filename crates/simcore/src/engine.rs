//! The event queue and simulation loop.
//!
//! [`Simulator<W>`] is generic over a user-supplied *world* type `W`
//! holding all model state (cores, NIC, queues, governors…). Events
//! are boxed closures receiving `(&mut W, &mut Simulator<W>)`, so an
//! event can both mutate the world and schedule or cancel further
//! events. Determinism is guaranteed by FIFO tie-breaking on equal
//! timestamps (a monotone sequence number).

use crate::error::{BudgetKind, SimError};
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// How often [`Simulator::run_until_budgeted`] consults the host
/// clock: every this-many executed events. Event budgets are exact;
/// wall-clock budgets have this much slack by design, so the guard
/// costs one `Instant::now()` per few thousand events.
const WALL_CHECK_INTERVAL: u64 = 8_192;

/// A per-run abort guard for [`Simulator::run_until_budgeted`].
///
/// Both limits are optional; [`StepBudget::unlimited`] disables the
/// guard entirely. The event limit counts *total* events executed by
/// the simulator (cells own their simulator, so this is per-cell),
/// which makes the guard robust against livelocked event chains that
/// never advance virtual time. The wall limit catches everything
/// else — pathological heap growth, host contention, or model code
/// that is merely catastrophically slow.
///
/// # Examples
///
/// ```
/// use simcore::{Simulator, SimTime, SimDuration, StepBudget, SimError};
///
/// let mut sim: Simulator<u64> = Simulator::new();
/// fn tick(w: &mut u64, sim: &mut Simulator<u64>) {
///     *w += 1;
///     sim.schedule_in(SimDuration::from_nanos(1), tick);
/// }
/// sim.schedule_in(SimDuration::from_nanos(1), tick);
/// let mut w = 0u64;
/// let budget = StepBudget::unlimited().with_max_events(1_000);
/// let err = sim
///     .run_until_budgeted(&mut w, SimTime::MAX, &budget)
///     .unwrap_err();
/// assert!(matches!(err, SimError::BudgetExceeded { .. }));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StepBudget {
    /// Abort once this many events have executed in total.
    pub max_events: Option<u64>,
    /// Abort once this much host wall-clock time has elapsed, counted
    /// from the first budgeted call on the simulator.
    pub max_wall: Option<std::time::Duration>,
}

impl StepBudget {
    /// No limits: `run_until_budgeted` behaves like `run_until`.
    pub fn unlimited() -> Self {
        StepBudget::default()
    }

    /// Sets the total executed-event ceiling.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Sets the host wall-clock ceiling.
    pub fn with_max_wall(mut self, max_wall: std::time::Duration) -> Self {
        self.max_wall = Some(max_wall);
        self
    }

    /// True if neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_wall.is_none()
    }
}

/// Handle to a scheduled event, usable with [`Simulator::cancel`].
///
/// Ids are unique for the lifetime of a simulator and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Action<W> = Box<dyn FnOnce(&mut W, &mut Simulator<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    id: EventId,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, with FIFO order among equal timestamps.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulator.
///
/// # Examples
///
/// ```
/// use simcore::{Simulator, SimTime, SimDuration};
///
/// let mut hits: Vec<u64> = Vec::new();
/// let mut sim: Simulator<Vec<u64>> = Simulator::new();
/// for i in 0..3 {
///     sim.schedule_at(SimTime::from_micros(10 - i), move |w, _| w.push(i));
/// }
/// sim.run_until(&mut hits, SimTime::from_millis(1));
/// assert_eq!(hits, vec![2, 1, 0]); // time order, not insertion order
/// ```
pub struct Simulator<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    next_seq: u64,
    /// Ids scheduled but not yet executed or cancelled.
    live: HashSet<EventId>,
    executed: u64,
    cancelled: u64,
    max_pending: usize,
    /// Epoch of the first budgeted call; wall-clock budgets count
    /// from here so a budget spans multiple `run_until_budgeted`
    /// calls on the same simulator (warm-up + measured window).
    budget_epoch: Option<std::time::Instant>,
}

/// Engine self-profiling counters, cheap enough to always collect.
///
/// Everything here is a function of the event sequence alone, so two
/// same-seed runs report identical profiles — wall-clock timing is
/// deliberately *not* part of this struct (the experiment runner
/// measures it separately, outside anything determinism suites
/// compare).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Events ever scheduled (executed + cancelled + still pending).
    pub events_scheduled: u64,
    /// Events whose action ran.
    pub events_executed: u64,
    /// Events cancelled before running.
    pub events_cancelled: u64,
    /// High-water mark of simultaneously pending events (heap depth).
    pub max_pending: usize,
}

impl<W> Default for Simulator<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Simulator<W> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            live: HashSet::new(),
            executed: 0,
            cancelled: 0,
            max_pending: 0,
            budget_epoch: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (cancelled events excluded).
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Deterministic self-profiling counters for this simulator.
    pub fn profile(&self) -> EngineProfile {
        EngineProfile {
            events_scheduled: self.next_seq,
            events_executed: self.executed,
            events_cancelled: self.cancelled,
            max_pending: self.max_pending,
        }
    }

    /// Schedules `action` to run at absolute time `time`.
    ///
    /// Events scheduled in the past run "now": they are clamped to the
    /// current time and execute before the simulator advances, which
    /// keeps model code free of re-entrancy special cases.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) -> EventId {
        let time = time.max(self.now);
        let id = EventId(self.next_seq);
        self.queue.push(Scheduled {
            time,
            seq: self.next_seq,
            id,
            action: Box::new(action),
        });
        self.live.insert(id);
        self.next_seq += 1;
        self.max_pending = self.max_pending.max(self.live.len());
        id
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (i.e. this call prevented it from running).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id absent from `live` was never issued, already executed,
        // or already cancelled; all of those report false.
        let removed = self.live.remove(&id);
        self.cancelled += removed as u64;
        removed
    }

    /// Runs a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            if !self.live.remove(&ev.id) {
                continue; // cancelled
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.executed += 1;
            (ev.action)(world, self);
            return true;
        }
    }

    /// Runs events until the queue is exhausted or `deadline` is
    /// reached; the simulator clock ends at exactly `deadline` unless
    /// the queue drains earlier. Returns the number of events executed.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start = self.executed;
        loop {
            // Peek past cancelled events to find the next live one.
            let next_time = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(ev) if !self.live.contains(&ev.id) => {
                        self.queue.pop();
                    }
                    Some(ev) => break Some(ev.time),
                }
            };
            match next_time {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.executed - start
    }

    /// Like [`run_until`](Simulator::run_until), but aborts with
    /// [`SimError::BudgetExceeded`] once `budget`'s event or
    /// wall-clock ceiling is crossed, instead of hanging the caller
    /// on a runaway world.
    ///
    /// The event ceiling counts *total* events this simulator has
    /// executed (across calls), so a budget naturally spans a
    /// warm-up phase plus a measured window. The wall-clock ceiling
    /// is measured from the first budgeted call and checked every
    /// few thousand events; see [`StepBudget`].
    pub fn run_until_budgeted(
        &mut self,
        world: &mut W,
        deadline: SimTime,
        budget: &StepBudget,
    ) -> Result<u64, SimError> {
        if budget.is_unlimited() {
            return Ok(self.run_until(world, deadline));
        }
        let epoch = *self
            .budget_epoch
            .get_or_insert_with(std::time::Instant::now);
        let start = self.executed;
        let mut next_wall_check = self
            .executed
            .saturating_add(WALL_CHECK_INTERVAL.min(budget.max_events.unwrap_or(u64::MAX)));
        loop {
            if let Some(max_events) = budget.max_events {
                if self.executed >= max_events {
                    return Err(SimError::BudgetExceeded {
                        kind: BudgetKind::Events,
                        limit: max_events,
                        events_executed: self.executed,
                        sim_time: self.now,
                    });
                }
            }
            if let Some(max_wall) = budget.max_wall {
                if self.executed >= next_wall_check {
                    next_wall_check = self.executed.saturating_add(WALL_CHECK_INTERVAL);
                    if epoch.elapsed() > max_wall {
                        return Err(SimError::BudgetExceeded {
                            kind: BudgetKind::WallClock,
                            limit: max_wall.as_millis().min(u64::MAX as u128) as u64,
                            events_executed: self.executed,
                            sim_time: self.now,
                        });
                    }
                }
            }
            // Peek past cancelled events to find the next live one.
            let next_time = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(ev) if !self.live.contains(&ev.id) => {
                        self.queue.pop();
                    }
                    Some(ev) => break Some(ev.time),
                }
            };
            match next_time {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        Ok(self.executed - start)
    }

    /// Runs until the queue drains, or until `max_events` have run.
    /// Returns the number of events executed.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let start = self.executed;
        while self.executed - start < max_events {
            if !self.step(world) {
                break;
            }
        }
        self.executed - start
    }
}

impl<W> std::fmt::Debug for Simulator<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_in_time_order() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        let mut w = Vec::new();
        sim.schedule_at(SimTime::from_nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_ties() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        let mut w = Vec::new();
        for i in 0..5 {
            sim.schedule_at(SimTime::from_nanos(7), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, sim| {
            *w += 1;
            sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, sim| {
                *w += 10;
                sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, _| *w += 100);
            });
        });
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 111);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel must report false");
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 0);
    }

    #[test]
    fn cancel_after_run_is_false() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 1);
        assert!(!sim.cancel(id));
    }

    #[test]
    fn run_until_stops_at_deadline_and_clamps_clock() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_micros(10), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_micros(30), |w: &mut u32, _| *w += 1);
        let n = sim.run_until(&mut w, SimTime::from_micros(20));
        assert_eq!(n, 1);
        assert_eq!(w, 1);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        // The later event still runs on the next call.
        sim.run_until(&mut w, SimTime::from_micros(40));
        assert_eq!(w, 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_micros(10), |_, sim| {
            // schedule "in the past" — must run at now, not violate order
            sim.schedule_at(SimTime::from_micros(1), |w: &mut u32, _| *w += 1);
        });
        sim.run_until(&mut w, SimTime::from_micros(20));
        assert_eq!(w, 1);
    }

    #[test]
    fn run_to_completion_respects_cap() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        // Self-perpetuating event chain.
        fn tick(w: &mut u64, sim: &mut Simulator<u64>) {
            *w += 1;
            sim.schedule_in(SimDuration::from_nanos(1), tick);
        }
        sim.schedule_in(SimDuration::from_nanos(1), tick);
        let n = sim.run_to_completion(&mut w, 100);
        assert_eq!(n, 100);
        assert_eq!(w, 100);
    }

    #[test]
    fn pending_count_excludes_cancelled() {
        let mut sim: Simulator<u32> = Simulator::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), |_, _| {});
        let _b = sim.schedule_at(SimTime::from_nanos(2), |_, _| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn unknown_id_cancel_is_false() {
        let mut sim: Simulator<u32> = Simulator::new();
        assert!(!sim.cancel(EventId(42)));
    }

    fn perpetual(w: &mut u64, sim: &mut Simulator<u64>) {
        *w += 1;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
    }

    #[test]
    fn event_budget_aborts_runaway_chain() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
        let budget = StepBudget::unlimited().with_max_events(250);
        let err = sim
            .run_until_budgeted(&mut w, SimTime::MAX, &budget)
            .unwrap_err();
        match err {
            SimError::BudgetExceeded {
                kind: BudgetKind::Events,
                limit,
                events_executed,
                ..
            } => {
                assert_eq!(limit, 250);
                assert_eq!(events_executed, 250);
            }
            other => panic!("expected event budget abort, got {other:?}"),
        }
        assert_eq!(w, 250);
    }

    #[test]
    fn event_budget_spans_multiple_calls() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
        let budget = StepBudget::unlimited().with_max_events(100);
        // First call stops at a virtual-time deadline, under budget.
        sim.run_until_budgeted(&mut w, SimTime::from_nanos(60), &budget)
            .expect("within budget");
        assert_eq!(w, 60);
        // Second call hits the *total* ceiling, not a fresh one.
        let err = sim
            .run_until_budgeted(&mut w, SimTime::MAX, &budget)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::Events,
                ..
            }
        ));
        assert_eq!(w, 100);
    }

    #[test]
    fn wall_budget_aborts_runaway_chain() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
        let budget = StepBudget::unlimited().with_max_wall(std::time::Duration::ZERO);
        let err = sim
            .run_until_budgeted(&mut w, SimTime::MAX, &budget)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::WallClock,
                ..
            }
        ));
    }

    #[test]
    fn unlimited_budget_matches_run_until() {
        let mut a: Simulator<u64> = Simulator::new();
        let mut b: Simulator<u64> = Simulator::new();
        let (mut wa, mut wb) = (0u64, 0u64);
        a.schedule_in(SimDuration::from_nanos(1), perpetual);
        b.schedule_in(SimDuration::from_nanos(1), perpetual);
        let deadline = SimTime::from_nanos(500);
        let na = a.run_until(&mut wa, deadline);
        let nb = b
            .run_until_budgeted(&mut wb, deadline, &StepBudget::unlimited())
            .expect("unlimited never aborts");
        assert_eq!(na, nb);
        assert_eq!(wa, wb);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn budgeted_run_under_limit_completes() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        let budget = StepBudget::unlimited()
            .with_max_events(1_000)
            .with_max_wall(std::time::Duration::from_secs(60));
        let n = sim
            .run_until_budgeted(&mut w, SimTime::from_micros(1), &budget)
            .expect("tiny run fits any sane budget");
        assert_eq!(n, 1);
        assert_eq!(w, 1);
        assert_eq!(sim.now(), SimTime::from_micros(1));
    }

    #[test]
    fn profile_counts_scheduled_executed_cancelled_and_depth() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let a = sim.schedule_at(SimTime::from_nanos(1), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(2), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(3), |w: &mut u32, _| *w += 1);
        sim.cancel(a);
        sim.cancel(a); // double cancel must not double count
        sim.run_until(&mut w, SimTime::from_micros(1));
        let p = sim.profile();
        assert_eq!(p.events_scheduled, 3);
        assert_eq!(p.events_executed, 2);
        assert_eq!(p.events_cancelled, 1);
        assert_eq!(p.max_pending, 3);
    }
}
