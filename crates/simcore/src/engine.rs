//! The event queue and simulation loop.
//!
//! [`Simulator<W>`] is generic over a user-supplied *world* type `W`
//! holding all model state (cores, NIC, queues, governors…). Events
//! are boxed closures receiving `(&mut W, &mut Simulator<W>)`, so an
//! event can both mutate the world and schedule or cancel further
//! events.
//!
//! # Ordering invariant
//!
//! Events execute in strict `(time, seq)` order, where `seq` is a
//! monotone sequence number assigned at schedule time: earlier
//! virtual times first, and **FIFO among equal timestamps** —
//! whichever event was scheduled first runs first. This tie-break is
//! a documented contract, not an implementation accident: every model
//! in the workspace and every golden fixture depends on it, and both
//! scheduler backends (see below) must agree on it bit-for-bit.
//!
//! # Scheduler backends
//!
//! The simulator is additionally generic over a [`SchedQueue`]
//! backend ordering the pending-event set:
//!
//! * [`WheelQueue`] — a hierarchical timing wheel with arena-
//!   allocated event slots, generation-tagged [`EventId`] handles for
//!   O(1) cancellation, occupancy bitmaps to skip empty time, and an
//!   insertion-ordered overflow list for far-future events. This is
//!   the default: O(1) schedule/pop versus the heap's O(log n).
//! * [`HeapQueue`] — the original `BinaryHeap` core, kept as the
//!   differential-testing oracle. Building with the `heap-sched`
//!   feature flips [`DefaultQueue`] to it, so the entire workspace
//!   (golden fixtures included) can be replayed on the oracle.
//!
//! Both backends share the arena and the `(time, seq)` contract; the
//! differential property suite (`tests/scheduler.rs`) drives them
//! with identical randomized schedule/cancel/run workloads and
//! asserts identical pop order, tie-breaks, and cancellation
//! semantics.

use crate::error::{BudgetKind, SimError};
use crate::time::{SimDuration, SimTime};

mod arena;
mod heap;
mod wheel;

#[doc(hidden)]
pub use arena::Arena;
pub use heap::HeapQueue;
pub use wheel::WheelQueue;

mod sealed {
    /// Closes [`SchedQueue`](super::SchedQueue) to outside
    /// implementations: the engine's determinism contract is only
    /// proven for the two in-tree backends.
    pub trait Sealed {}
}

/// A scheduler backend: orders pending events by `(time, seq)` over
/// slots living in the engine's arena. Sealed — implemented only by
/// [`WheelQueue`] and [`HeapQueue`].
pub trait SchedQueue: Default + sealed::Sealed {
    /// Enqueues an arena slot (its time/seq metadata is already in
    /// the arena).
    #[doc(hidden)]
    fn insert(&mut self, arena: &mut Arena, slot: u32);

    /// Pops the earliest live slot whose time is `<= bound`, lazily
    /// releasing cancelled husks it encounters. Returns `None` —
    /// without observably advancing past `bound` — when the earliest
    /// pending event (if any) fires later than `bound`.
    #[doc(hidden)]
    fn pop_within(&mut self, arena: &mut Arena, bound: SimTime) -> Option<u32>;
}

/// The scheduler backend [`Simulator`] defaults to: the timing wheel,
/// or the heap oracle when the `heap-sched` feature is enabled.
#[cfg(not(feature = "heap-sched"))]
pub type DefaultQueue = WheelQueue;
/// The scheduler backend [`Simulator`] defaults to: the timing wheel,
/// or the heap oracle when the `heap-sched` feature is enabled.
#[cfg(feature = "heap-sched")]
pub type DefaultQueue = HeapQueue;

/// A simulator pinned to the timing-wheel backend, independent of the
/// `heap-sched` feature. Used by differential tests and benches.
pub type WheelSimulator<W> = Simulator<W, WheelQueue>;
/// A simulator pinned to the heap-oracle backend, independent of the
/// `heap-sched` feature. Used by differential tests and benches.
pub type HeapSimulator<W> = Simulator<W, HeapQueue>;

/// How often [`Simulator::run_until_budgeted`] consults the host
/// clock: every this-many executed events. Event budgets are exact;
/// wall-clock budgets have this much slack by design, so the guard
/// costs one `Instant::now()` per few thousand events.
const WALL_CHECK_INTERVAL: u64 = 8_192;

/// A per-run abort guard for [`Simulator::run_until_budgeted`].
///
/// Both limits are optional; [`StepBudget::unlimited`] disables the
/// guard entirely. The event limit counts *total* events executed by
/// the simulator (cells own their simulator, so this is per-cell),
/// which makes the guard robust against livelocked event chains that
/// never advance virtual time. The wall limit catches everything
/// else — pathological queue growth, host contention, or model code
/// that is merely catastrophically slow.
///
/// # Examples
///
/// ```
/// use simcore::{Simulator, SimTime, SimDuration, StepBudget, SimError};
///
/// let mut sim: Simulator<u64> = Simulator::new();
/// fn tick(w: &mut u64, sim: &mut Simulator<u64>) {
///     *w += 1;
///     sim.schedule_in(SimDuration::from_nanos(1), tick);
/// }
/// sim.schedule_in(SimDuration::from_nanos(1), tick);
/// let mut w = 0u64;
/// let budget = StepBudget::unlimited().with_max_events(1_000);
/// let err = sim
///     .run_until_budgeted(&mut w, SimTime::MAX, &budget)
///     .unwrap_err();
/// assert!(matches!(err, SimError::BudgetExceeded { .. }));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StepBudget {
    /// Abort once this many events have executed in total.
    pub max_events: Option<u64>,
    /// Abort once this much host wall-clock time has elapsed, counted
    /// from the first budgeted call on the simulator.
    pub max_wall: Option<std::time::Duration>,
}

impl StepBudget {
    /// No limits: `run_until_budgeted` behaves like `run_until`.
    pub fn unlimited() -> Self {
        StepBudget::default()
    }

    /// Sets the total executed-event ceiling.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Sets the host wall-clock ceiling.
    pub fn with_max_wall(mut self, max_wall: std::time::Duration) -> Self {
        self.max_wall = Some(max_wall);
        self
    }

    /// True if neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_wall.is_none()
    }
}

/// Handle to a scheduled event, usable with [`Simulator::cancel`].
///
/// The handle packs the event's arena slot and the slot's generation
/// at schedule time, so cancellation is O(1): a slot lookup and a
/// generation compare, no hashing. Once the event runs or is
/// cancelled its generation goes stale, so a retained handle can
/// never cancel a later event that reuses the slot — handles are
/// effectively unique for the lifetime of a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn pack(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

type Action<W, Q> = Box<dyn FnOnce(&mut W, &mut Simulator<W, Q>)>;

/// A deterministic discrete-event simulator.
///
/// # Examples
///
/// ```
/// use simcore::{Simulator, SimTime, SimDuration};
///
/// let mut hits: Vec<u64> = Vec::new();
/// let mut sim: Simulator<Vec<u64>> = Simulator::new();
/// for i in 0..3 {
///     sim.schedule_at(SimTime::from_micros(10 - i), move |w, _| w.push(i));
/// }
/// sim.run_until(&mut hits, SimTime::from_millis(1));
/// assert_eq!(hits, vec![2, 1, 0]); // time order, not insertion order
/// ```
pub struct Simulator<W, Q: SchedQueue = DefaultQueue> {
    now: SimTime,
    queue: Q,
    arena: Arena,
    /// Boxed actions, parallel to the arena's slots. `None` for free
    /// slots and cancelled husks.
    actions: Vec<Option<Action<W, Q>>>,
    next_seq: u64,
    /// Events scheduled but not yet executed or cancelled.
    pending: usize,
    executed: u64,
    cancelled: u64,
    max_pending: usize,
    /// Epoch of the first budgeted call; wall-clock budgets count
    /// from here so a budget spans multiple `run_until_budgeted`
    /// calls on the same simulator (warm-up + measured window).
    budget_epoch: Option<std::time::Instant>,
}

/// Engine self-profiling counters, cheap enough to always collect.
///
/// Everything here is a function of the event sequence alone, so two
/// same-seed runs report identical profiles — wall-clock timing is
/// deliberately *not* part of this struct (the experiment runner
/// measures it separately, outside anything determinism suites
/// compare).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Events ever scheduled (executed + cancelled + still pending).
    pub events_scheduled: u64,
    /// Events whose action ran.
    pub events_executed: u64,
    /// Events cancelled before running.
    pub events_cancelled: u64,
    /// High-water mark of simultaneously pending events (queue depth).
    pub max_pending: usize,
}

impl<W, Q: SchedQueue> Default for Simulator<W, Q> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, Q: SchedQueue> Simulator<W, Q> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: Q::default(),
            arena: Arena::default(),
            actions: Vec::new(),
            next_seq: 0,
            pending: 0,
            executed: 0,
            cancelled: 0,
            max_pending: 0,
            budget_epoch: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (cancelled events excluded).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Deterministic self-profiling counters for this simulator.
    pub fn profile(&self) -> EngineProfile {
        EngineProfile {
            events_scheduled: self.next_seq,
            events_executed: self.executed,
            events_cancelled: self.cancelled,
            max_pending: self.max_pending,
        }
    }

    /// Schedules `action` to run at absolute time `time`.
    ///
    /// Events scheduled in the past run "now": they are clamped to the
    /// current time and execute before the simulator advances, which
    /// keeps model code free of re-entrancy special cases. Among
    /// equal timestamps, events run in schedule order (see the
    /// [ordering invariant](self)).
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        action: impl FnOnce(&mut W, &mut Simulator<W, Q>) + 'static,
    ) -> EventId {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.arena.alloc(time, seq);
        let boxed: Option<Action<W, Q>> = Some(Box::new(action));
        if (slot as usize) < self.actions.len() {
            self.actions[slot as usize] = boxed;
        } else {
            self.actions.push(boxed);
        }
        self.queue.insert(&mut self.arena, slot);
        self.pending += 1;
        self.max_pending = self.max_pending.max(self.pending);
        EventId::pack(slot, self.arena.gen(slot))
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Simulator<W, Q>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (i.e. this call prevented it from running).
    ///
    /// O(1): the generation tag in the handle is compared against the
    /// arena slot's; a handle whose event already ran, was already
    /// cancelled, or was never issued reports `false`. The dead entry
    /// is purged from the queue lazily.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.arena.gen(id.slot()) != id.gen() || !self.arena.kill(id.slot()) {
            return false;
        }
        // Drop the action eagerly; the queue releases the slot when
        // it next touches the husk.
        if let Some(a) = self.actions.get_mut(id.slot() as usize) {
            *a = None;
        }
        self.cancelled += 1;
        self.pending -= 1;
        true
    }

    /// Pops and executes the earliest event with time `<= bound`.
    /// Returns `false` if there is none.
    fn dispatch_next(&mut self, world: &mut W, bound: SimTime) -> bool {
        let Some(slot) = self.queue.pop_within(&mut self.arena, bound) else {
            return false;
        };
        let time = self.arena.get(slot).map_or(self.now, |m| m.time);
        let action = self.actions.get_mut(slot as usize).and_then(Option::take);
        self.arena.release(slot);
        debug_assert!(time >= self.now, "event queue went backwards");
        debug_assert!(action.is_some(), "live slot without an action");
        self.now = time;
        self.executed += 1;
        self.pending -= 1;
        if let Some(action) = action {
            action(world, self);
        }
        true
    }

    /// Runs a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        self.dispatch_next(world, SimTime::MAX)
    }

    /// Runs events until the queue is exhausted or `deadline` is
    /// reached; the simulator clock ends at exactly `deadline` unless
    /// the queue drains earlier. Returns the number of events executed.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start = self.executed;
        while self.dispatch_next(world, deadline) {}
        if self.now < deadline {
            self.now = deadline;
        }
        self.executed - start
    }

    /// Like [`run_until`](Simulator::run_until), but aborts with
    /// [`SimError::BudgetExceeded`] once `budget`'s event or
    /// wall-clock ceiling is crossed, instead of hanging the caller
    /// on a runaway world.
    ///
    /// The event ceiling counts *total* events this simulator has
    /// executed (across calls), so a budget naturally spans a
    /// warm-up phase plus a measured window. The wall-clock ceiling
    /// is measured from the first budgeted call and checked every
    /// few thousand events; see [`StepBudget`].
    pub fn run_until_budgeted(
        &mut self,
        world: &mut W,
        deadline: SimTime,
        budget: &StepBudget,
    ) -> Result<u64, SimError> {
        if budget.is_unlimited() {
            return Ok(self.run_until(world, deadline));
        }
        let epoch = *self
            .budget_epoch
            .get_or_insert_with(std::time::Instant::now);
        let start = self.executed;
        let mut next_wall_check = self
            .executed
            .saturating_add(WALL_CHECK_INTERVAL.min(budget.max_events.unwrap_or(u64::MAX)));
        loop {
            if let Some(max_events) = budget.max_events {
                if self.executed >= max_events {
                    return Err(SimError::BudgetExceeded {
                        kind: BudgetKind::Events,
                        limit: max_events,
                        events_executed: self.executed,
                        sim_time: self.now,
                    });
                }
            }
            if let Some(max_wall) = budget.max_wall {
                if self.executed >= next_wall_check {
                    next_wall_check = self.executed.saturating_add(WALL_CHECK_INTERVAL);
                    if epoch.elapsed() > max_wall {
                        return Err(SimError::BudgetExceeded {
                            kind: BudgetKind::WallClock,
                            limit: max_wall.as_millis().min(u64::MAX as u128) as u64,
                            events_executed: self.executed,
                            sim_time: self.now,
                        });
                    }
                }
            }
            if !self.dispatch_next(world, deadline) {
                break;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        Ok(self.executed - start)
    }

    /// Runs until the queue drains, or until `max_events` have run.
    /// Returns the number of events executed.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let start = self.executed;
        while self.executed - start < max_events {
            if !self.step(world) {
                break;
            }
        }
        self.executed - start
    }
}

impl<W, Q: SchedQueue> std::fmt::Debug for Simulator<W, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_in_time_order() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        let mut w = Vec::new();
        sim.schedule_at(SimTime::from_nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_ties() {
        let mut sim: Simulator<Vec<u32>> = Simulator::new();
        let mut w = Vec::new();
        for i in 0..5 {
            sim.schedule_at(SimTime::from_nanos(7), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, vec![0, 1, 2, 3, 4]);
    }

    /// The documented ordering invariant — `(time, seq)` with FIFO
    /// tie-breaks surviving interleaved cancellation — holds
    /// identically on *both* scheduler backends.
    #[test]
    fn fifo_tie_break_invariant_on_both_backends() {
        fn ordering_on<Q: SchedQueue>() -> Vec<u32> {
            let mut sim: Simulator<Vec<u32>, Q> = Simulator::new();
            let mut w = Vec::new();
            // Three timestamps, interleaved schedule order, one
            // cancellation inside a tie group.
            let t = |n| SimTime::from_nanos(n);
            sim.schedule_at(t(20), |w: &mut Vec<u32>, _| w.push(0));
            sim.schedule_at(t(10), |w: &mut Vec<u32>, _| w.push(1));
            let dead = sim.schedule_at(t(10), |w: &mut Vec<u32>, _| w.push(2));
            sim.schedule_at(t(10), |w: &mut Vec<u32>, _| w.push(3));
            sim.schedule_at(t(20), |w: &mut Vec<u32>, _| w.push(4));
            assert!(sim.cancel(dead));
            // A same-timestamp event scheduled *during* the tie group
            // runs after the group's survivors (its seq is larger).
            sim.schedule_at(t(10), |w: &mut Vec<u32>, sim| {
                w.push(5);
                let now = sim.now();
                sim.schedule_at(now, |w: &mut Vec<u32>, _| w.push(6));
            });
            sim.run_until(&mut w, SimTime::from_micros(1));
            w
        }
        let wheel = ordering_on::<WheelQueue>();
        let heap = ordering_on::<HeapQueue>();
        assert_eq!(wheel, vec![1, 3, 5, 6, 0, 4]);
        assert_eq!(wheel, heap);
    }

    /// Regression (REVIEW: high): stepping a queue whose only content
    /// is a cancelled far event must leave the scheduler able to
    /// accept — and run — a later schedule at an earlier virtual
    /// time. The wheel backend used to strand its cursor at the
    /// cancelled event's bucket base, panicking in debug builds and
    /// livelocking in release on the second `step`.
    #[test]
    fn step_over_cancelled_event_accepts_earlier_reschedule_on_both_backends() {
        fn check<Q: SchedQueue>() {
            let mut sim: Simulator<Vec<u64>, Q> = Simulator::new();
            let mut w = Vec::new();
            let dead = sim.schedule_at(SimTime::from_nanos(10_000), |w: &mut Vec<u64>, _| {
                w.push(10_000)
            });
            assert!(sim.cancel(dead));
            assert!(!sim.step(&mut w), "only a husk pending");
            assert_eq!(sim.now(), SimTime::ZERO, "nothing ran, clock stays");
            sim.schedule_at(SimTime::from_nanos(100), |w: &mut Vec<u64>, _| w.push(100));
            assert!(sim.step(&mut w), "earlier reschedule must run");
            assert_eq!(w, vec![100]);
            assert_eq!(sim.now(), SimTime::from_nanos(100));
            assert!(!sim.step(&mut w));
        }
        check::<WheelQueue>();
        check::<HeapQueue>();
    }

    #[test]
    fn nested_scheduling() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, sim| {
            *w += 1;
            sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, sim| {
                *w += 10;
                sim.schedule_in(SimDuration::from_nanos(1), |w: &mut u32, _| *w += 100);
            });
        });
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 111);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel must report false");
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 0);
    }

    #[test]
    fn cancel_after_run_is_false() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        sim.run_until(&mut w, SimTime::from_micros(1));
        assert_eq!(w, 1);
        assert!(!sim.cancel(id));
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuser() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let stale = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        sim.run_until(&mut w, SimTime::from_micros(1));
        // The next event reuses the released arena slot; the stale
        // handle's generation no longer matches, so it must not be
        // able to cancel it.
        let fresh = sim.schedule_at(SimTime::from_micros(2), |w: &mut u32, _| *w += 10);
        assert_ne!(stale, fresh, "handles are never reused");
        assert!(!sim.cancel(stale));
        sim.run_until(&mut w, SimTime::from_micros(3));
        assert_eq!(w, 11, "slot reuser must still run");
    }

    #[test]
    fn run_until_stops_at_deadline_and_clamps_clock() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_micros(10), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_micros(30), |w: &mut u32, _| *w += 1);
        let n = sim.run_until(&mut w, SimTime::from_micros(20));
        assert_eq!(n, 1);
        assert_eq!(w, 1);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        // The later event still runs on the next call.
        sim.run_until(&mut w, SimTime::from_micros(40));
        assert_eq!(w, 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_micros(10), |_, sim| {
            // schedule "in the past" — must run at now, not violate order
            sim.schedule_at(SimTime::from_micros(1), |w: &mut u32, _| *w += 1);
        });
        sim.run_until(&mut w, SimTime::from_micros(20));
        assert_eq!(w, 1);
    }

    #[test]
    fn run_to_completion_respects_cap() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        // Self-perpetuating event chain.
        fn tick(w: &mut u64, sim: &mut Simulator<u64>) {
            *w += 1;
            sim.schedule_in(SimDuration::from_nanos(1), tick);
        }
        sim.schedule_in(SimDuration::from_nanos(1), tick);
        let n = sim.run_to_completion(&mut w, 100);
        assert_eq!(n, 100);
        assert_eq!(w, 100);
    }

    #[test]
    fn pending_count_excludes_cancelled() {
        let mut sim: Simulator<u32> = Simulator::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), |_, _| {});
        let _b = sim.schedule_at(SimTime::from_nanos(2), |_, _| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn unknown_id_cancel_is_false() {
        let mut sim: Simulator<u32> = Simulator::new();
        assert!(!sim.cancel(EventId(42)));
        assert!(!sim.cancel(EventId::pack(7, 3)));
    }

    fn perpetual(w: &mut u64, sim: &mut Simulator<u64>) {
        *w += 1;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
    }

    #[test]
    fn event_budget_aborts_runaway_chain() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
        let budget = StepBudget::unlimited().with_max_events(250);
        let err = sim
            .run_until_budgeted(&mut w, SimTime::MAX, &budget)
            .unwrap_err();
        match err {
            SimError::BudgetExceeded {
                kind: BudgetKind::Events,
                limit,
                events_executed,
                ..
            } => {
                assert_eq!(limit, 250);
                assert_eq!(events_executed, 250);
            }
            other => panic!("expected event budget abort, got {other:?}"),
        }
        assert_eq!(w, 250);
    }

    #[test]
    fn event_budget_spans_multiple_calls() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
        let budget = StepBudget::unlimited().with_max_events(100);
        // First call stops at a virtual-time deadline, under budget.
        sim.run_until_budgeted(&mut w, SimTime::from_nanos(60), &budget)
            .expect("within budget");
        assert_eq!(w, 60);
        // Second call hits the *total* ceiling, not a fresh one.
        let err = sim
            .run_until_budgeted(&mut w, SimTime::MAX, &budget)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::Events,
                ..
            }
        ));
        assert_eq!(w, 100);
    }

    #[test]
    fn wall_budget_aborts_runaway_chain() {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut w = 0u64;
        sim.schedule_in(SimDuration::from_nanos(1), perpetual);
        let budget = StepBudget::unlimited().with_max_wall(std::time::Duration::ZERO);
        let err = sim
            .run_until_budgeted(&mut w, SimTime::MAX, &budget)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::WallClock,
                ..
            }
        ));
    }

    #[test]
    fn unlimited_budget_matches_run_until() {
        let mut a: Simulator<u64> = Simulator::new();
        let mut b: Simulator<u64> = Simulator::new();
        let (mut wa, mut wb) = (0u64, 0u64);
        a.schedule_in(SimDuration::from_nanos(1), perpetual);
        b.schedule_in(SimDuration::from_nanos(1), perpetual);
        let deadline = SimTime::from_nanos(500);
        let na = a.run_until(&mut wa, deadline);
        let nb = b
            .run_until_budgeted(&mut wb, deadline, &StepBudget::unlimited())
            .expect("unlimited never aborts");
        assert_eq!(na, nb);
        assert_eq!(wa, wb);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn budgeted_run_under_limit_completes() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        let budget = StepBudget::unlimited()
            .with_max_events(1_000)
            .with_max_wall(std::time::Duration::from_secs(60));
        let n = sim
            .run_until_budgeted(&mut w, SimTime::from_micros(1), &budget)
            .expect("tiny run fits any sane budget");
        assert_eq!(n, 1);
        assert_eq!(w, 1);
        assert_eq!(sim.now(), SimTime::from_micros(1));
    }

    #[test]
    fn profile_counts_scheduled_executed_cancelled_and_depth() {
        let mut sim: Simulator<u32> = Simulator::new();
        let mut w = 0;
        let a = sim.schedule_at(SimTime::from_nanos(1), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(2), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(3), |w: &mut u32, _| *w += 1);
        sim.cancel(a);
        sim.cancel(a); // double cancel must not double count
        sim.run_until(&mut w, SimTime::from_micros(1));
        let p = sim.profile();
        assert_eq!(p.events_scheduled, 3);
        assert_eq!(p.events_executed, 2);
        assert_eq!(p.events_cancelled, 1);
        assert_eq!(p.max_pending, 3);
    }
}
