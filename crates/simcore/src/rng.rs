//! Deterministic random-number streams.
//!
//! Every stochastic component (arrival process, service-time sampler,
//! RSS hash, …) draws from its own [`RngStream`], derived from a
//! master seed plus a component label. Runs with the same master seed
//! are bit-for-bit reproducible regardless of event interleaving,
//! which the experiment harness relies on for paper-figure
//! regeneration.

/// A named, seeded random stream.
///
/// Internally a xoshiro256++ generator (the same family `rand`'s
/// `SmallRng` uses on 64-bit targets), seeded through splitmix64 so
/// that even adjacent seeds produce decorrelated streams. The
/// implementation is local to keep the simulator free of external
/// dependencies and bit-stable across toolchain upgrades.
///
/// # Examples
///
/// ```
/// use simcore::RngStream;
/// let mut a = RngStream::derive(42, "client", 0);
/// let mut b = RngStream::derive(42, "client", 0);
/// assert_eq!(a.next_u64(), b.next_u64()); // same derivation → same stream
/// let mut c = RngStream::derive(42, "client", 1);
/// assert_ne!(a.next_u64(), c.next_u64()); // different index → different stream
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    state: [u64; 4],
}

/// splitmix64 step — expands a 64-bit seed into the xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngStream {
    /// Creates a stream directly from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        RngStream {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives a stream from a master seed, a component label, and an
    /// instance index (e.g. a queue or core id). The derivation is a
    /// stable FNV-1a hash, so streams never collide accidentally
    /// between components.
    pub fn derive(master: u64, label: &str, index: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for b in master.to_le_bytes() {
            mix(b);
        }
        for b in label.bytes() {
            mix(b);
        }
        for b in index.to_le_bytes() {
            mix(b);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`, from the top 53 bits of one draw.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Debiased multiply-shift (Lemire): rejection keeps the
        // distribution exactly uniform for any n.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - U avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal variate via Box–Muller (one value per call;
    /// the twin is discarded to keep the stream stateless).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with mean `mu` and standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        mu + sigma * self.standard_normal()
    }

    /// Log-normal variate parameterized by the *target* mean and the
    /// sigma of the underlying normal. Used for heavy-tailed service
    /// times: the returned distribution has mean `mean` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive or `sigma` is negative.
    pub fn lognormal_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean
        let mu = mean.ln() - sigma * sigma / 2.0;
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Pareto variate with minimum `xm` and shape `alpha` (bounded
    /// heavy tail for burst sizes).
    ///
    /// # Panics
    ///
    /// Panics if `xm` or `alpha` is not positive.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        xm / (1.0 - self.uniform()).powf(1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stable_and_distinct() {
        let mut a = RngStream::derive(1, "nic", 3);
        let mut b = RngStream::derive(1, "nic", 3);
        let mut c = RngStream::derive(1, "nic", 4);
        let mut d = RngStream::derive(1, "app", 3);
        let va = a.next_u64();
        assert_eq!(va, b.next_u64());
        assert_ne!(va, c.next_u64());
        assert_ne!(va, d.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = RngStream::from_seed(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = RngStream::from_seed(11);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.05 * mean, "estimated {est}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = RngStream::from_seed(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_mean_is_calibrated() {
        let mut r = RngStream::from_seed(17);
        let n = 400_000;
        let target = 2.2;
        let sum: f64 = (0..n).map(|_| r.lognormal_mean(target, 0.5)).sum();
        let est = sum / n as f64;
        assert!((est - target).abs() < 0.03 * target, "estimated {est}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = RngStream::from_seed(19);
        for _ in 0..10_000 {
            assert!(r.pareto(3.0, 2.0) >= 3.0);
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = RngStream::from_seed(23);
        for _ in 0..1_000 {
            assert!(r.below(8) < 8);
        }
    }
}
