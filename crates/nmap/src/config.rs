//! NMAP configuration: the two thresholds and the monitor timer.

use simcore::SimDuration;

/// NMAP tunables (§4.2, §6.1).
///
/// The thresholds are per-application, obtained by the offline
/// profiling of [`ThresholdProfiler`](crate::ThresholdProfiler); they
/// do **not** need re-tuning when the load level changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NmapConfig {
    /// `NI_TH`: polling-mode packets within one interrupt episode
    /// above which the core enters Network Intensive Mode
    /// (Algorithm 1 line 4).
    pub ni_threshold: u64,
    /// `CU_TH`: polling-to-interrupt packet ratio below which the
    /// core falls back to CPU Utilization based Mode
    /// (Algorithm 2 line 8).
    pub cu_threshold: f64,
    /// The periodic monitor timer (§6.1: 10 ms).
    pub timer_interval: SimDuration,
}

impl NmapConfig {
    /// Creates a config with the paper's 10 ms timer.
    ///
    /// # Panics
    ///
    /// Panics if `cu_threshold` is not positive and finite.
    pub fn new(ni_threshold: u64, cu_threshold: f64) -> Self {
        assert!(
            cu_threshold > 0.0 && cu_threshold.is_finite(),
            "CU_TH must be positive and finite"
        );
        NmapConfig {
            ni_threshold,
            cu_threshold,
            timer_interval: SimDuration::from_millis(10),
        }
    }

    /// Overrides the monitor timer (interval ablation).
    pub fn with_timer(mut self, interval: SimDuration) -> Self {
        self.timer_interval = interval;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_paper_timer() {
        let c = NmapConfig::new(64, 1.5);
        assert_eq!(c.timer_interval, SimDuration::from_millis(10));
        assert_eq!(c.ni_threshold, 64);
    }

    #[test]
    #[should_panic(expected = "CU_TH must be positive")]
    fn rejects_bad_cu_threshold() {
        let _ = NmapConfig::new(64, 0.0);
    }

    #[test]
    fn timer_override() {
        let c = NmapConfig::new(64, 1.5).with_timer(SimDuration::from_millis(1));
        assert_eq!(c.timer_interval, SimDuration::from_millis(1));
    }
}
