//! NMAP configuration: the two thresholds and the monitor timer.

use simcore::SimDuration;

/// NMAP tunables (§4.2, §6.1).
///
/// The thresholds are per-application, obtained by the offline
/// profiling of [`ThresholdProfiler`](crate::ThresholdProfiler); they
/// do **not** need re-tuning when the load level changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NmapConfig {
    /// `NI_TH`: polling-mode packets within one interrupt episode
    /// above which the core enters Network Intensive Mode
    /// (Algorithm 1 line 4).
    pub ni_threshold: u64,
    /// `CU_TH`: polling-to-interrupt packet ratio below which the
    /// core falls back to CPU Utilization based Mode
    /// (Algorithm 2 line 8).
    pub cu_threshold: f64,
    /// The periodic monitor timer (§6.1: 10 ms).
    pub timer_interval: SimDuration,
    /// Graceful-degradation tunables (robustness extension, not in the
    /// paper): when the monitor's notifications look stale or absent,
    /// the governor abandons Network Intensive Mode for the embedded
    /// ondemand path instead of staying wedged at maximum V/F.
    pub degradation: DegradationConfig,
}

/// When the NMAP governor distrusts its notification channel.
///
/// Two independent triggers degrade a core that sits in Network
/// Intensive Mode (both checked on the periodic timer):
///
/// * **absent signals** — no poll-batch signal for `signal_timeout`:
///   the notification path is dead, fall back immediately (the
///   bounded-time guarantee);
/// * **stale signals** — signals keep arriving but the core's measured
///   busy fraction stayed under `busy_floor` for `stale_windows`
///   consecutive timer windows: the signals no longer reflect real
///   work (e.g. a stuck NAPI-state replay), so pinning P0 burns power
///   for nothing.
///
/// Recovery is hysteretic: a degraded core re-arms normal operation
/// only after `recovery_windows` consecutive healthy windows (fresh
/// signals *and* busy ≥ `busy_floor`), preventing flapping between
/// the degraded and normal paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Longest tolerated gap without any monitor signal while in NI
    /// mode before falling back (trigger 1).
    pub signal_timeout: SimDuration,
    /// Busy fraction below which a window counts as stale (trigger 2).
    pub busy_floor: f64,
    /// Consecutive stale windows before degrading (trigger 2).
    pub stale_windows: u32,
    /// Consecutive healthy windows before a degraded core recovers.
    pub recovery_windows: u32,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            signal_timeout: SimDuration::from_millis(30),
            busy_floor: 0.02,
            stale_windows: 3,
            recovery_windows: 2,
        }
    }
}

impl NmapConfig {
    /// Creates a config with the paper's 10 ms timer.
    ///
    /// # Panics
    ///
    /// Panics if `cu_threshold` is not positive and finite.
    pub fn new(ni_threshold: u64, cu_threshold: f64) -> Self {
        assert!(
            cu_threshold > 0.0 && cu_threshold.is_finite(),
            "CU_TH must be positive and finite"
        );
        NmapConfig {
            ni_threshold,
            cu_threshold,
            timer_interval: SimDuration::from_millis(10),
            degradation: DegradationConfig::default(),
        }
    }

    /// Overrides the monitor timer (interval ablation).
    pub fn with_timer(mut self, interval: SimDuration) -> Self {
        self.timer_interval = interval;
        self
    }

    /// Overrides the graceful-degradation tunables.
    pub fn with_degradation(mut self, degradation: DegradationConfig) -> Self {
        self.degradation = degradation;
        self
    }

    /// Validates the config, for callers that build one by struct
    /// literal or mutation (the [`NmapConfig::new`] constructor
    /// asserts the same CU_TH constraint): a degenerate threshold,
    /// a zero monitor timer (which would livelock the event queue),
    /// or inverted degradation windows become typed errors.
    pub fn validate(&self) -> Result<(), simcore::SimError> {
        use simcore::SimError;
        if !self.cu_threshold.is_finite() || self.cu_threshold <= 0.0 {
            return Err(SimError::invalid(
                "nmap.cu_threshold",
                format!("must be positive and finite (got {})", self.cu_threshold),
            ));
        }
        if self.ni_threshold == 0 {
            return Err(SimError::invalid(
                "nmap.ni_threshold",
                "NI_TH of 0 would enter Network Intensive Mode on any packet; \
                 use at least 1"
                    .to_string(),
            ));
        }
        if self.timer_interval.is_zero() {
            return Err(SimError::invalid(
                "nmap.timer_interval",
                "a zero monitor timer would livelock the event queue".to_string(),
            ));
        }
        let d = &self.degradation;
        if !d.busy_floor.is_finite() || !(0.0..=1.0).contains(&d.busy_floor) {
            return Err(SimError::invalid(
                "nmap.degradation.busy_floor",
                format!("must be within [0, 1] (got {})", d.busy_floor),
            ));
        }
        if d.stale_windows == 0 || d.recovery_windows == 0 {
            return Err(SimError::invalid(
                "nmap.degradation.windows",
                "stale_windows and recovery_windows must be at least 1".to_string(),
            ));
        }
        if d.signal_timeout.is_zero() {
            return Err(SimError::invalid(
                "nmap.degradation.signal_timeout",
                "a zero signal timeout marks every window stale, so the governor \
                 would never leave degraded mode"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_paper_timer() {
        let c = NmapConfig::new(64, 1.5);
        assert_eq!(c.timer_interval, SimDuration::from_millis(10));
        assert_eq!(c.ni_threshold, 64);
    }

    #[test]
    #[should_panic(expected = "CU_TH must be positive")]
    fn rejects_bad_cu_threshold() {
        let _ = NmapConfig::new(64, 0.0);
    }

    #[test]
    fn timer_override() {
        let c = NmapConfig::new(64, 1.5).with_timer(SimDuration::from_millis(1));
        assert_eq!(c.timer_interval, SimDuration::from_millis(1));
    }

    #[test]
    fn validate_accepts_defaults() {
        NmapConfig::new(64, 1.5)
            .validate()
            .expect("defaults are valid");
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = NmapConfig::new(64, 1.5);
        let bad = [
            NmapConfig {
                cu_threshold: f64::NAN,
                ..ok
            },
            NmapConfig {
                cu_threshold: -1.0,
                ..ok
            },
            NmapConfig {
                ni_threshold: 0,
                ..ok
            },
            NmapConfig {
                timer_interval: SimDuration::ZERO,
                ..ok
            },
            ok.with_degradation(DegradationConfig {
                busy_floor: 1.5,
                ..DegradationConfig::default()
            }),
            ok.with_degradation(DegradationConfig {
                stale_windows: 0,
                ..DegradationConfig::default()
            }),
            ok.with_degradation(DegradationConfig {
                recovery_windows: 0,
                ..DegradationConfig::default()
            }),
            // A zero timeout marks every window stale forever.
            ok.with_degradation(DegradationConfig {
                signal_timeout: SimDuration::ZERO,
                ..DegradationConfig::default()
            }),
        ];
        for (i, cfg) in bad.iter().enumerate() {
            assert!(
                cfg.validate().is_err(),
                "case {i} must be rejected: {cfg:?}"
            );
        }
    }
}
