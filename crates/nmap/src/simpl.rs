//! NMAP-simpl (§4.1): the simplified policy driven purely by
//! ksoftirqd scheduling events.
//!
//! ksoftirqd wakes only when the softirq handler is overwhelmed
//! (§2.1), so its wake-up is a ready-made "excessive packet
//! processing" signal that needs no application knowledge and no
//! thresholds. NMAP-simpl maximizes the core's V/F while ksoftirqd is
//! awake and falls back to ondemand when it sleeps. The paper shows
//! this satisfies SLOs at low/medium load but reacts too late at high
//! load (§6.2) — reproduced in Fig 12/14.

use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::{CoreId, PState};
use governors::{Action, Ondemand, PStateGovernor};
use simcore::{SimDuration, SimTime};

/// The ksoftirqd-driven simplified NMAP.
pub struct NmapSimpl {
    fallback: Ondemand,
    ksoftirqd_awake: Vec<bool>,
    wake_events: u64,
}

impl NmapSimpl {
    /// Creates NMAP-simpl for `cores` cores.
    pub fn new(table: PStateTable, cores: usize) -> Self {
        NmapSimpl {
            fallback: Ondemand::new(table, cores),
            ksoftirqd_awake: vec![false; cores],
            wake_events: 0,
        }
    }

    /// True if `core`'s ksoftirqd is currently considered awake.
    pub fn is_boosted(&self, core: CoreId) -> bool {
        self.ksoftirqd_awake[core.0]
    }

    /// Total ksoftirqd wake events observed.
    pub fn wake_events(&self) -> u64 {
        self.wake_events
    }
}

impl PStateGovernor for NmapSimpl {
    fn name(&self) -> String {
        "NMAP-simpl".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn on_ksoftirqd(
        &mut self,
        core: CoreId,
        awake: bool,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        let was = self.ksoftirqd_awake[core.0];
        self.ksoftirqd_awake[core.0] = awake;
        if awake && !was {
            self.wake_events += 1;
            self.fallback.note_pstate(core, PState::P0);
            actions.push(Action::SetCore(core, PState::P0));
        }
        // On sleep we do nothing immediately; ondemand resumes at the
        // next utilization sample (the paper's "falls back to the CPU
        // utilization based governor").
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        if self.ksoftirqd_awake[core.0] {
            actions.push(Action::SetCore(core, PState::P0));
        } else {
            self.fallback.on_core_sample(core, sample, now, actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn simpl() -> NmapSimpl {
        NmapSimpl::new(ProcessorProfile::xeon_gold_6134().pstates, 8)
    }

    fn sample(busy: f64) -> UtilSample {
        UtilSample {
            busy_frac: busy,
            c0_frac: busy,
            window: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn wake_boosts_immediately() {
        let mut g = simpl();
        let mut actions = Vec::new();
        g.on_ksoftirqd(CoreId(0), true, SimTime::ZERO, &mut actions);
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::P0)]);
        assert!(g.is_boosted(CoreId(0)));
        assert_eq!(g.wake_events(), 1);
    }

    #[test]
    fn repeated_wake_is_idempotent() {
        let mut g = simpl();
        let mut actions = Vec::new();
        g.on_ksoftirqd(CoreId(0), true, SimTime::ZERO, &mut actions);
        actions.clear();
        g.on_ksoftirqd(CoreId(0), true, SimTime::from_millis(1), &mut actions);
        assert!(actions.is_empty());
        assert_eq!(g.wake_events(), 1);
    }

    #[test]
    fn sleep_falls_back_at_next_sample() {
        let mut g = simpl();
        let mut actions = Vec::new();
        g.on_ksoftirqd(CoreId(0), true, SimTime::ZERO, &mut actions);
        g.on_ksoftirqd(CoreId(0), false, SimTime::from_millis(5), &mut actions);
        actions.clear();
        g.on_core_sample(
            CoreId(0),
            sample(0.05),
            SimTime::from_millis(10),
            &mut actions,
        );
        let Action::SetCore(_, p) = actions[0] else {
            panic!()
        };
        assert_ne!(p, PState::P0, "ondemand resumed on low load");
    }

    #[test]
    fn samples_while_awake_hold_p0() {
        let mut g = simpl();
        let mut actions = Vec::new();
        g.on_ksoftirqd(CoreId(0), true, SimTime::ZERO, &mut actions);
        actions.clear();
        g.on_core_sample(
            CoreId(0),
            sample(0.05),
            SimTime::from_millis(10),
            &mut actions,
        );
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::P0)]);
    }

    #[test]
    fn per_core_independence() {
        let mut g = simpl();
        let mut actions = Vec::new();
        g.on_ksoftirqd(CoreId(3), true, SimTime::ZERO, &mut actions);
        assert!(g.is_boosted(CoreId(3)));
        assert!(!g.is_boosted(CoreId(0)));
        actions.clear();
        g.on_core_sample(
            CoreId(0),
            sample(0.0),
            SimTime::from_millis(10),
            &mut actions,
        );
        let Action::SetCore(_, p) = actions[0] else {
            panic!()
        };
        assert_ne!(p, PState::P0);
    }
}
