//! # nmap — Network packet processing Mode-Aware Power management
//!
//! The paper's contribution (§4): a short-term, per-core DVFS policy
//! that piggybacks on NAPI's interrupt↔polling mode transitions.
//!
//! * [`monitor::ModeTransitionMonitor`] — Algorithm 1: per-core
//!   counters of packets processed in polling and interrupt mode,
//!   with a Network-Intensive notification when the polling count in
//!   the current interrupt episode exceeds `NI_TH`.
//! * [`engine::DecisionEngine`] — Algorithm 2: switches between
//!   **Network Intensive Mode** (V/F maximized, utilization governor
//!   suspended) and **CPU Utilization based Mode** (ondemand
//!   decides), falling back when the polling-to-interrupt ratio drops
//!   under `CU_TH`.
//! * [`NmapGovernor`] — the full per-core governor combining both.
//! * [`NmapSimpl`] — §4.1's simplified variant driven purely by
//!   ksoftirqd wake/sleep events.
//! * [`profiling::ThresholdProfiler`] — §4.2's offline, lightweight
//!   profiling that derives `NI_TH` and `CU_TH` from a single burst
//!   at the SLO-defining load.
//! * [`OnlineNmap`] — *beyond the paper*: the on-line threshold
//!   adaptation §4.2 leaves as future work, removing the offline
//!   profiling step entirely.
//!
//! # Examples
//!
//! ```
//! use nmap::{NmapConfig, NmapGovernor};
//! use governors::PStateGovernor;
//! use cpusim::ProcessorProfile;
//!
//! let profile = ProcessorProfile::xeon_gold_6134();
//! let config = NmapConfig::new(64, 1.5);
//! let gov = NmapGovernor::new(profile.pstates.clone(), profile.cores, config);
//! assert_eq!(gov.name(), "NMAP");
//! ```

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod config;
pub mod engine;
pub mod governor;
pub mod monitor;
pub mod online;
pub mod profiling;
pub mod simpl;

pub use config::{DegradationConfig, NmapConfig};
pub use engine::{DecisionEngine, PowerMode};
pub use governor::{NiMark, NmapGovernor, SHED_HOLD_PERMILLE};
pub use monitor::ModeTransitionMonitor;
pub use online::{OnlineConfig, OnlineNmap};
pub use profiling::ThresholdProfiler;
pub use simpl::NmapSimpl;
