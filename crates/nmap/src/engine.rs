//! The Decision Engine (Algorithm 2).
//!
//! Per core, the engine holds one of two power-management modes:
//!
//! * **Network Intensive Mode** — entered on a monitor notification:
//!   the utilization governor is suspended and the core's V/F is
//!   maximized (lines 2-5);
//! * **CPU Utilization based Mode** — entered when the periodic
//!   polling-to-interrupt ratio drops below `CU_TH`: the ondemand
//!   governor resumes (lines 7-13).

use simcore::{EventLog, SimTime};

/// The power-management mode of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerMode {
    /// V/F pinned at maximum; utilization governor suspended.
    NetworkIntensive,
    /// The CPU-utilization governor (ondemand) decides.
    CpuUtilization,
}

/// Per-core Algorithm 2 state.
///
/// # Examples
///
/// ```
/// use nmap::{DecisionEngine, PowerMode};
/// use simcore::SimTime;
///
/// let mut e = DecisionEngine::new(1.5);
/// assert_eq!(e.mode(), PowerMode::CpuUtilization);
/// assert!(e.on_notification(SimTime::ZERO)); // burst! → NI mode
/// assert_eq!(e.mode(), PowerMode::NetworkIntensive);
/// // Ratio fell under CU_TH → fall back.
/// assert!(e.on_timer(0.4, SimTime::from_millis(10)));
/// assert_eq!(e.mode(), PowerMode::CpuUtilization);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    cu_threshold: f64,
    mode: PowerMode,
    mode_log: EventLog<PowerMode>,
}

impl DecisionEngine {
    /// Creates an engine in CPU Utilization based Mode.
    pub fn new(cu_threshold: f64) -> Self {
        DecisionEngine {
            cu_threshold,
            mode: PowerMode::CpuUtilization,
            mode_log: EventLog::new(),
        }
    }

    /// The current mode.
    pub fn mode(&self) -> PowerMode {
        self.mode
    }

    /// A Network-Intensive notification arrived from the monitor.
    /// Returns `true` if this call switched the mode (the caller then
    /// disables ondemand and maximizes V/F — Algorithm 2 lines 3-5).
    pub fn on_notification(&mut self, now: SimTime) -> bool {
        if self.mode == PowerMode::NetworkIntensive {
            return false;
        }
        self.mode = PowerMode::NetworkIntensive;
        self.mode_log.push(now, self.mode);
        true
    }

    /// The periodic timer fired with the window's polling-to-interrupt
    /// ratio. Returns `true` if the engine fell back to CPU
    /// Utilization based Mode (the caller re-enables ondemand and
    /// enforces its decision — lines 8-12).
    pub fn on_timer(&mut self, poll_to_intr_ratio: f64, now: SimTime) -> bool {
        if self.mode == PowerMode::NetworkIntensive && poll_to_intr_ratio < self.cu_threshold {
            self.mode = PowerMode::CpuUtilization;
            self.mode_log.push(now, self.mode);
            true
        } else {
            false
        }
    }

    /// Forces the engine back to CPU Utilization based Mode regardless
    /// of the ratio — the degradation path when the monitor's signals
    /// are suspected stale or lost. Returns `true` if the mode
    /// actually changed.
    pub fn force_fallback(&mut self, now: SimTime) -> bool {
        if self.mode == PowerMode::CpuUtilization {
            return false;
        }
        self.mode = PowerMode::CpuUtilization;
        self.mode_log.push(now, self.mode);
        true
    }

    /// The configured `CU_TH`.
    pub fn cu_threshold(&self) -> f64 {
        self.cu_threshold
    }

    /// Replaces `CU_TH` (online threshold adaptation).
    pub fn set_cu_threshold(&mut self, cu_threshold: f64) {
        self.cu_threshold = cu_threshold;
    }

    /// Log of mode changes `(time, new mode)`.
    pub fn mode_log(&self) -> &EventLog<PowerMode> {
        &self.mode_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_cpu_util_mode() {
        let e = DecisionEngine::new(1.0);
        assert_eq!(e.mode(), PowerMode::CpuUtilization);
    }

    #[test]
    fn notification_is_edge_triggered() {
        let mut e = DecisionEngine::new(1.0);
        assert!(e.on_notification(SimTime::ZERO));
        assert!(!e.on_notification(SimTime::from_millis(1)), "already NI");
        assert_eq!(e.mode_log().len(), 1);
    }

    #[test]
    fn falls_back_only_below_threshold() {
        let mut e = DecisionEngine::new(1.5);
        e.on_notification(SimTime::ZERO);
        assert!(!e.on_timer(2.0, SimTime::from_millis(10)), "still intense");
        assert!(
            !e.on_timer(1.5, SimTime::from_millis(20)),
            "at threshold: hold"
        );
        assert!(e.on_timer(1.49, SimTime::from_millis(30)));
        assert_eq!(e.mode(), PowerMode::CpuUtilization);
    }

    #[test]
    fn timer_in_cpu_mode_is_a_noop() {
        let mut e = DecisionEngine::new(1.5);
        assert!(
            !e.on_timer(100.0, SimTime::ZERO),
            "ratio only matters in NI mode"
        );
        assert_eq!(e.mode(), PowerMode::CpuUtilization);
    }

    #[test]
    fn infinite_ratio_never_falls_back() {
        let mut e = DecisionEngine::new(1.5);
        e.on_notification(SimTime::ZERO);
        assert!(!e.on_timer(f64::INFINITY, SimTime::from_millis(10)));
        assert_eq!(e.mode(), PowerMode::NetworkIntensive);
    }

    #[test]
    fn mode_log_records_both_directions() {
        let mut e = DecisionEngine::new(1.0);
        e.on_notification(SimTime::from_millis(1));
        e.on_timer(0.0, SimTime::from_millis(20));
        let modes: Vec<PowerMode> = e.mode_log().iter().map(|&(_, m)| m).collect();
        assert_eq!(
            modes,
            vec![PowerMode::NetworkIntensive, PowerMode::CpuUtilization]
        );
    }
}
