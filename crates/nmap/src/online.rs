//! Online threshold adaptation — the paper's stated future work
//! (§4.2: "We leave further exploration of on-line profiling
//! techniques as our future work").
//!
//! [`OnlineNmap`] removes the per-application offline profiling step:
//! it continuously re-derives `NI_TH` and `CU_TH` from the episodes
//! it observes in production.
//!
//! * **`NI_TH`** adapts to a high percentile of the per-episode
//!   polling counts observed while the core was in *CPU Utilization
//!   based Mode* — i.e. of "normal" episodes. Crossing well beyond
//!   normal is the burst signal, exactly the role the offline max
//!   played; using only CPU-mode episodes keeps the threshold from
//!   chasing the bursts it reacts to (a feedback runaway).
//! * **`CU_TH`** adapts to an exponential moving average of the
//!   windowed polling-to-interrupt ratio, scaled by the same safety
//!   factor a deployment would apply to the offline value.
//!
//! Adaptation runs on a slow clock (default 1 s) so the inner
//! NMAP's 10 ms dynamics are unaffected within a burst.

use crate::config::NmapConfig;
use crate::engine::PowerMode;
use crate::governor::NmapGovernor;
use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::CoreId;
use governors::{Action, PStateGovernor};
use napisim::PollClass;
use simcore::{SimDuration, SimTime};

/// Tunables for the online adapter.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// How often the thresholds are re-derived.
    pub adaptation_interval: SimDuration,
    /// Percentile of normal-episode polling used for `NI_TH`.
    pub ni_quantile: f64,
    /// Safety factor applied to the ratio EMA for `CU_TH`.
    pub cu_factor: f64,
    /// EMA weight of the newest window ratio.
    pub ema_alpha: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            adaptation_interval: SimDuration::from_secs(1),
            ni_quantile: 0.95,
            cu_factor: 0.5,
            ema_alpha: 0.3,
        }
    }
}

/// NMAP with self-calibrating thresholds.
pub struct OnlineNmap {
    inner: NmapGovernor,
    online: OnlineConfig,
    /// Closed-episode polling counts observed in CPU mode since the
    /// last adaptation (across cores).
    normal_episodes: Vec<u64>,
    /// Open episode accumulator per core, with the mode it started in.
    open_episode: Vec<(u64, PowerMode)>,
    ratio_ema: Option<f64>,
    window_poll: u64,
    window_intr: u64,
    next_adaptation: SimTime,
    adaptations: u64,
}

impl OnlineNmap {
    /// Creates the adapter with conservative initial thresholds
    /// (`NI_TH = 64`, one NAPI weight; `CU_TH = 1.0`).
    pub fn new(table: PStateTable, cores: usize, online: OnlineConfig) -> Self {
        let seed_config = NmapConfig::new(64, 1.0);
        OnlineNmap {
            inner: NmapGovernor::new(table, cores, seed_config),
            online,
            normal_episodes: Vec::new(),
            open_episode: vec![(0, PowerMode::CpuUtilization); cores],
            ratio_ema: None,
            window_poll: 0,
            window_intr: 0,
            next_adaptation: SimTime::ZERO + online.adaptation_interval,
            adaptations: 0,
        }
    }

    /// The thresholds currently in force.
    pub fn current_config(&self) -> NmapConfig {
        *self.inner.config()
    }

    /// How many adaptation rounds have run.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    fn adapt(&mut self) {
        self.adaptations += 1;
        let current = *self.inner.config();
        let ni = if self.normal_episodes.is_empty() {
            current.ni_threshold
        } else {
            self.normal_episodes.sort_unstable();
            let rank = ((self.online.ni_quantile * self.normal_episodes.len() as f64).ceil()
                as usize)
                .clamp(1, self.normal_episodes.len());
            // Never adapt below one poll batch: sub-weight thresholds
            // fire on every stray packet.
            self.normal_episodes[rank - 1].max(8)
        };
        let cu = match self.ratio_ema {
            Some(ema) => (ema * self.online.cu_factor).max(f64::MIN_POSITIVE),
            None => current.cu_threshold,
        };
        self.inner.set_thresholds(ni, cu);
        self.normal_episodes.clear();
    }
}

impl PStateGovernor for OnlineNmap {
    fn name(&self) -> String {
        "NMAP-online".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        self.inner.sampling_interval()
    }

    fn on_poll_batch(
        &mut self,
        core: CoreId,
        class: PollClass,
        rx_packets: u64,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        // Episode bookkeeping mirrors the offline profiler.
        match class {
            PollClass::Interrupt => {
                let (count, started_mode) = self.open_episode[core.0];
                if started_mode == PowerMode::CpuUtilization {
                    self.normal_episodes.push(count);
                }
                self.open_episode[core.0] = (0, self.inner.mode(core));
                self.window_intr += rx_packets;
            }
            PollClass::Polling => {
                self.open_episode[core.0].0 += rx_packets;
                self.window_poll += rx_packets;
            }
        }
        self.inner
            .on_poll_batch(core, class, rx_packets, now, actions);
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        self.inner.on_core_sample(core, sample, now, actions);
        if now >= self.next_adaptation {
            self.next_adaptation = now + self.online.adaptation_interval;
            if self.window_intr > 0 {
                let ratio = self.window_poll as f64 / self.window_intr as f64;
                self.ratio_ema = Some(match self.ratio_ema {
                    Some(ema) => {
                        ema * (1.0 - self.online.ema_alpha) + ratio * self.online.ema_alpha
                    }
                    None => ratio,
                });
            }
            self.window_poll = 0;
            self.window_intr = 0;
            self.adapt();
        }
    }

    fn trace_into(&self, buf: &mut simcore::TraceBuffer) {
        self.inner.trace_into(buf);
    }

    fn record_metrics(&self, m: &mut simcore::MetricsRegistry) {
        self.inner.record_metrics(m);
    }

    fn degradation(&self) -> governors::DegradationStats {
        self.inner.degradation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn online() -> OnlineNmap {
        OnlineNmap::new(
            ProcessorProfile::xeon_gold_6134().pstates,
            8,
            OnlineConfig::default(),
        )
    }

    fn sample() -> UtilSample {
        UtilSample {
            busy_frac: 0.3,
            c0_frac: 0.3,
            window: SimDuration::from_millis(10),
        }
    }

    fn feed_episode(g: &mut OnlineNmap, core: CoreId, poll: u64, t: SimTime) {
        let mut actions = Vec::new();
        g.on_poll_batch(core, PollClass::Interrupt, 10, t, &mut actions);
        if poll > 0 {
            g.on_poll_batch(core, PollClass::Polling, poll, t, &mut actions);
        }
    }

    #[test]
    fn adapts_ni_to_observed_normal_episodes() {
        let mut g = online();
        // Normal operation: episodes of ~20 polling packets.
        for i in 0..50 {
            feed_episode(&mut g, CoreId(0), 20, SimTime::from_millis(i));
        }
        let mut actions = Vec::new();
        // Cross the adaptation boundary.
        g.on_core_sample(CoreId(0), sample(), SimTime::from_secs(1), &mut actions);
        assert_eq!(g.adaptations(), 1);
        let cfg = g.current_config();
        assert!(
            (8..=25).contains(&cfg.ni_threshold),
            "NI_TH should settle near the normal episode size, got {}",
            cfg.ni_threshold
        );
    }

    #[test]
    fn cu_tracks_ratio_ema_with_safety_factor() {
        let mut g = online();
        // Window ratio: 100 polling / 50 interrupt = 2.0.
        let mut actions = Vec::new();
        for i in 0..5 {
            g.on_poll_batch(
                CoreId(0),
                PollClass::Interrupt,
                10,
                SimTime::from_millis(i),
                &mut actions,
            );
            g.on_poll_batch(
                CoreId(0),
                PollClass::Polling,
                20,
                SimTime::from_millis(i),
                &mut actions,
            );
        }
        g.on_core_sample(CoreId(0), sample(), SimTime::from_secs(1), &mut actions);
        let cfg = g.current_config();
        assert!(
            (cfg.cu_threshold - 1.0).abs() < 1e-9,
            "2.0 · 0.5 = 1.0, got {}",
            cfg.cu_threshold
        );
    }

    #[test]
    fn burst_episodes_do_not_poison_the_threshold() {
        let mut g = online();
        let mut actions = Vec::new();
        // Small normal episodes…
        for i in 0..40 {
            feed_episode(&mut g, CoreId(0), 20, SimTime::from_millis(i));
        }
        // …then a giant burst, which flips core 0 into NI mode
        // (seed NI_TH = 64) so its episodes stop counting as normal.
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            100_000,
            SimTime::from_millis(50),
            &mut actions,
        );
        feed_episode(&mut g, CoreId(0), 90_000, SimTime::from_millis(60));
        g.on_core_sample(CoreId(0), sample(), SimTime::from_secs(1), &mut actions);
        let cfg = g.current_config();
        assert!(
            cfg.ni_threshold < 1_000,
            "burst-mode episodes must not inflate NI_TH (got {})",
            cfg.ni_threshold
        );
    }

    #[test]
    fn no_adaptation_before_interval() {
        let mut g = online();
        let mut actions = Vec::new();
        g.on_core_sample(CoreId(0), sample(), SimTime::from_millis(500), &mut actions);
        assert_eq!(g.adaptations(), 0);
        assert_eq!(g.current_config().ni_threshold, 64, "seed threshold holds");
    }

    #[test]
    fn name_distinguishes_the_variant() {
        assert_eq!(online().name(), "NMAP-online");
    }
}
