//! The full NMAP governor (§4.2): Mode Transition Monitor + Decision
//! Engine per core, with ondemand as the CPU Utilization based Mode.

use crate::config::NmapConfig;
use crate::engine::{DecisionEngine, PowerMode};
use crate::monitor::ModeTransitionMonitor;
use cpusim::core::UtilSample;
use cpusim::pstate::PStateTable;
use cpusim::{CoreId, PState};
use governors::{Action, DegradationStats, Ondemand, PStateGovernor};
use napisim::PollClass;
use simcore::{EventLog, SimDuration, SimTime};

/// A power-mode boundary crossed by one core's decision engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NiMark {
    /// The monitor's NI notification flipped the core to
    /// Network-Intensive mode (V/F maximized).
    Notify,
    /// The timer saw the burst subside and fell back to the
    /// CPU-utilization mode.
    Fallback,
    /// The governor stopped trusting its notification path (stale or
    /// absent signals) and forced the core onto the ondemand path.
    Degraded,
    /// A degraded core saw enough consecutive healthy windows and
    /// re-armed normal NMAP operation.
    Recovered,
}

impl NiMark {
    /// Static display label, for trace events that carry
    /// `&'static str` names.
    pub const fn label(self) -> &'static str {
        match self {
            NiMark::Notify => "ni-notify",
            NiMark::Fallback => "ni-fallback",
            NiMark::Degraded => "ni-degraded",
            NiMark::Recovered => "ni-recovered",
        }
    }
}

/// Saturation-gauge floor (per mille of the admission capacity) above
/// which the governor holds the core at maximum V/F instead of
/// letting the utilization path downclock it. A server that is
/// actively shedding must drain first and save power second:
/// downclocking a saturated core deepens the backlog, turns sheds
/// into timeouts, and feeds the retry storm that overload control
/// exists to break. Shed-before-downclock, never the reverse.
pub const SHED_HOLD_PERMILLE: i64 = 900;

/// NMAP: per-core, NAPI-mode-aware DVFS.
///
/// Wiring (Fig 6): every NAPI poll batch feeds the per-core monitor;
/// a Network-Intensive notification immediately maximizes that core's
/// V/F; the periodic timer (10 ms) compares the window's
/// polling-to-interrupt ratio against `CU_TH` and falls back to the
/// ondemand decision when the burst subsides.
pub struct NmapGovernor {
    config: NmapConfig,
    monitors: Vec<ModeTransitionMonitor>,
    engines: Vec<DecisionEngine>,
    fallback: Ondemand,
    /// Last utilization sample per core, for the fallback enforcement
    /// (Algorithm 2 line 10) at the moment of mode exit.
    last_busy: Vec<f64>,
    /// Mode-boundary crossings `(core, mark)`, for trace replay.
    ni_log: EventLog<(CoreId, NiMark)>,
    /// When each core last received any poll-batch signal.
    last_signal: Vec<Option<SimTime>>,
    /// Consecutive NI-mode windows whose busy fraction stayed under
    /// the degradation floor (stale-signal suspicion).
    suspect: Vec<u32>,
    /// Consecutive healthy windows observed while degraded.
    healthy: Vec<u32>,
    /// Cores currently in the degraded (notification-distrusting)
    /// state: NI notifications are ignored and ondemand decides.
    degraded: Vec<bool>,
    /// Total degradations across cores.
    degradations: u64,
    /// Total recoveries across cores.
    recoveries: u64,
    /// Cores whose telemetry saturation gauge last read at or above
    /// [`SHED_HOLD_PERMILLE`]: downclock decisions are overridden to
    /// P0 until the shed pressure clears.
    shed_hold: Vec<bool>,
    /// Downclock decisions overridden to P0 by the shed-hold.
    shed_holds: u64,
}

impl NmapGovernor {
    /// Creates NMAP for `cores` cores with profiled thresholds.
    pub fn new(table: PStateTable, cores: usize, config: NmapConfig) -> Self {
        NmapGovernor {
            monitors: (0..cores)
                .map(|_| ModeTransitionMonitor::new(config.ni_threshold))
                .collect(),
            engines: (0..cores)
                .map(|_| DecisionEngine::new(config.cu_threshold))
                .collect(),
            fallback: Ondemand::new(table, cores),
            last_busy: vec![0.0; cores],
            ni_log: EventLog::new(),
            last_signal: vec![None; cores],
            suspect: vec![0; cores],
            healthy: vec![0; cores],
            degraded: vec![false; cores],
            degradations: 0,
            recoveries: 0,
            shed_hold: vec![false; cores],
            shed_holds: 0,
            config,
        }
    }

    /// True if the shed-hold is pinning `core` at maximum V/F because
    /// the server tier reported active admission shedding there.
    pub fn shed_held(&self, core: CoreId) -> bool {
        self.shed_hold[core.0]
    }

    /// Total downclock decisions overridden to P0 by the shed-hold.
    pub fn shed_holds(&self) -> u64 {
        self.shed_holds
    }

    /// Enforces the utilization-based decision for `core` — unless
    /// the shed-hold is active, in which case the decision is forced
    /// to P0. The app tier shedding load is a stronger signal than a
    /// momentary utilization dip: the backlog must drain at full
    /// clock before the governor is allowed to save power.
    fn enforce_fallback(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        if self.shed_hold[core.0] {
            self.shed_holds += 1;
            self.fallback.note_pstate(core, PState::P0);
            actions.push(Action::SetCore(core, PState::P0));
        } else {
            self.fallback.on_core_sample(core, sample, now, actions);
        }
    }

    /// True if `core` is currently degraded (ignoring notifications).
    pub fn is_degraded(&self, core: CoreId) -> bool {
        self.degraded[core.0]
    }

    /// True if a poll-batch signal reached `core` within the
    /// degradation signal timeout of `now`. The effective timeout is
    /// floored at two timer intervals so coarse-timer configurations
    /// (the interval ablation) get at least one full window of grace
    /// before the channel is declared dead.
    fn signal_fresh(&self, core: CoreId, now: SimTime) -> bool {
        let timeout = self
            .config
            .degradation
            .signal_timeout
            .max(self.config.timer_interval * 2);
        match self.last_signal[core.0] {
            Some(t) => now.saturating_since(t) <= timeout,
            None => false,
        }
    }

    /// Forces `core` out of Network-Intensive mode onto the ondemand
    /// path and starts distrusting notifications until recovery.
    fn degrade(&mut self, core: CoreId, now: SimTime) {
        self.degraded[core.0] = true;
        self.suspect[core.0] = 0;
        self.healthy[core.0] = 0;
        self.degradations += 1;
        self.engines[core.0].force_fallback(now);
        self.ni_log.push(now, (core, NiMark::Degraded));
    }

    /// The mode of one core (experiment introspection).
    pub fn mode(&self, core: CoreId) -> PowerMode {
        self.engines[core.0].mode()
    }

    /// Total Network-Intensive notifications across cores.
    pub fn total_notifications(&self) -> u64 {
        self.monitors.iter().map(|m| m.total_notifications()).sum()
    }

    /// Log of power-mode boundary crossings `(time, (core, mark))`.
    pub fn ni_log(&self) -> &EventLog<(CoreId, NiMark)> {
        &self.ni_log
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NmapConfig {
        &self.config
    }

    /// Replaces both thresholds at runtime (online adaptation; the
    /// timer interval is unchanged).
    pub fn set_thresholds(&mut self, ni_threshold: u64, cu_threshold: f64) {
        self.config.ni_threshold = ni_threshold;
        self.config.cu_threshold = cu_threshold;
        for m in &mut self.monitors {
            m.set_ni_threshold(ni_threshold);
        }
        for e in &mut self.engines {
            e.set_cu_threshold(cu_threshold);
        }
    }
}

impl PStateGovernor for NmapGovernor {
    fn name(&self) -> String {
        "NMAP".into()
    }

    fn sampling_interval(&self) -> SimDuration {
        self.config.timer_interval
    }

    fn on_poll_batch(
        &mut self,
        core: CoreId,
        class: PollClass,
        rx_packets: u64,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        self.last_signal[core.0] = Some(now);
        let notify = self.monitors[core.0].record_batch(class, rx_packets);
        // A degraded core keeps counting but ignores notifications:
        // the signal path is suspect, so ondemand stays in charge
        // until the hysteretic recovery re-arms normal operation.
        if self.degraded[core.0] {
            return;
        }
        if notify && self.engines[core.0].on_notification(now) {
            // Algorithm 2 lines 3-5: disable ondemand (implicit — we
            // stop consulting it), maximize V/F immediately.
            self.fallback.note_pstate(core, PState::P0);
            self.ni_log.push(now, (core, NiMark::Notify));
            actions.push(Action::SetCore(core, PState::P0));
        }
    }

    fn on_telemetry(
        &mut self,
        tap: &dyn simcore::TelemetryTap,
        _now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        // Shed-before-downclock: the per-core saturation gauge is the
        // app tier saying "I am refusing new work". While it reads at
        // or above the hold floor, downclock decisions are overridden
        // (see `enforce_fallback`), and crossing into the hold raises
        // the core to P0 immediately rather than waiting for the next
        // sampling tick. Gauges below the floor — including the
        // always-zero reading of non-overloaded runs — leave behavior
        // untouched.
        for core in 0..self.shed_hold.len().min(tap.tap_cores()) {
            let sat = tap.latest(core, simcore::Gauge::Saturation).unwrap_or(0);
            let hold = sat >= SHED_HOLD_PERMILLE;
            if hold && !self.shed_hold[core] {
                self.shed_holds += 1;
                self.fallback.note_pstate(CoreId(core), PState::P0);
                actions.push(Action::SetCore(CoreId(core), PState::P0));
            }
            self.shed_hold[core] = hold;
        }
    }

    fn on_core_sample(
        &mut self,
        core: CoreId,
        sample: UtilSample,
        now: SimTime,
        actions: &mut Vec<Action>,
    ) {
        self.last_busy[core.0] = sample.busy_frac;
        let ratio = self.monitors[core.0].window_ratio();
        let _ = self.monitors[core.0].take_window();
        let deg = self.config.degradation;
        if self.degraded[core.0] {
            // Recovery is hysteretic: only consecutive windows with
            // fresh signals and real work re-arm normal operation.
            let healthy_window = self.signal_fresh(core, now) && sample.busy_frac >= deg.busy_floor;
            if healthy_window {
                self.healthy[core.0] += 1;
                if self.healthy[core.0] >= deg.recovery_windows {
                    self.degraded[core.0] = false;
                    self.healthy[core.0] = 0;
                    self.recoveries += 1;
                    self.ni_log.push(now, (core, NiMark::Recovered));
                }
            } else {
                self.healthy[core.0] = 0;
            }
            self.enforce_fallback(core, sample, now, actions);
            return;
        }
        match self.engines[core.0].mode() {
            PowerMode::NetworkIntensive => {
                // Degradation triggers come first so a distrusted
                // signal path wins over the normal ratio decision:
                // (1) no signal at all within the timeout — the
                // notification channel is dead, fall back now
                // (bounded-time guarantee);
                // (2) signals keep claiming a burst (ratio holds)
                // while the core does no measurable work for several
                // consecutive windows — stale replays, stop trusting
                // them.
                if !self.signal_fresh(core, now) {
                    self.degrade(core, now);
                    self.enforce_fallback(core, sample, now, actions);
                    return;
                }
                if sample.busy_frac < deg.busy_floor {
                    self.suspect[core.0] += 1;
                } else {
                    self.suspect[core.0] = 0;
                }
                if self.suspect[core.0] >= deg.stale_windows {
                    self.degrade(core, now);
                    self.enforce_fallback(core, sample, now, actions);
                    return;
                }
                if self.engines[core.0].on_timer(ratio, now) {
                    // Fell back: enforce the utilization-based state
                    // and re-enable ondemand (lines 9-11).
                    self.suspect[core.0] = 0;
                    self.ni_log.push(now, (core, NiMark::Fallback));
                    self.enforce_fallback(core, sample, now, actions);
                } else {
                    // Still intense: keep the core maximized.
                    actions.push(Action::SetCore(core, PState::P0));
                }
            }
            PowerMode::CpuUtilization => {
                self.suspect[core.0] = 0;
                self.enforce_fallback(core, sample, now, actions);
            }
        }
    }

    fn trace_into(&self, buf: &mut simcore::TraceBuffer) {
        if !buf.is_recording() {
            return;
        }
        for &(t, (core, mark)) in self.ni_log.entries() {
            buf.instant(
                t,
                simcore::TraceCategory::Governor,
                core.0 as u32,
                mark.label(),
                0,
            );
        }
    }

    fn record_metrics(&self, m: &mut simcore::MetricsRegistry) {
        if !simcore::MetricsRegistry::ENABLED {
            return;
        }
        m.set_counter("nmap.ni_notifications", self.total_notifications());
        m.set_counter(
            "nmap.ni_fallbacks",
            self.ni_log
                .iter()
                .filter(|&&(_, (_, mark))| mark == NiMark::Fallback)
                .count() as u64,
        );
        m.set_counter("nmap.degradations", self.degradations);
        m.set_counter("nmap.recoveries", self.recoveries);
        m.set_counter("nmap.shed_holds", self.shed_holds);
    }

    fn degradation(&self) -> DegradationStats {
        DegradationStats {
            degradations: self.degradations,
            recoveries: self.recoveries,
            degraded_cores: self.degraded.iter().filter(|&&d| d).count() as u64,
        }
    }

    fn core_degraded(&self, core: CoreId) -> bool {
        self.is_degraded(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::ProcessorProfile;

    fn nmap() -> NmapGovernor {
        let p = ProcessorProfile::xeon_gold_6134();
        NmapGovernor::new(p.pstates, 8, NmapConfig::new(100, 1.5))
    }

    fn sample(busy: f64) -> UtilSample {
        UtilSample {
            busy_frac: busy,
            c0_frac: busy,
            window: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn burst_maximizes_vf_immediately() {
        let mut g = nmap();
        let mut actions = Vec::new();
        g.on_poll_batch(
            CoreId(0),
            PollClass::Interrupt,
            64,
            SimTime::ZERO,
            &mut actions,
        );
        assert!(actions.is_empty());
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            64,
            SimTime::from_micros(50),
            &mut actions,
        );
        assert!(actions.is_empty(), "64 ≤ NI_TH=100");
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            64,
            SimTime::from_micros(100),
            &mut actions,
        );
        assert_eq!(
            actions,
            vec![Action::SetCore(CoreId(0), PState::P0)],
            "128 > NI_TH → immediate P0"
        );
        assert_eq!(g.mode(CoreId(0)), PowerMode::NetworkIntensive);
    }

    #[test]
    fn stays_maximized_while_ratio_high() {
        let mut g = nmap();
        let mut actions = Vec::new();
        g.on_poll_batch(
            CoreId(0),
            PollClass::Interrupt,
            10,
            SimTime::ZERO,
            &mut actions,
        );
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            200,
            SimTime::from_micros(50),
            &mut actions,
        );
        actions.clear();
        // Timer: ratio 200/10 = 20 ≥ CU_TH → hold NI mode, re-assert P0.
        g.on_core_sample(
            CoreId(0),
            sample(0.5),
            SimTime::from_millis(10),
            &mut actions,
        );
        assert_eq!(actions, vec![Action::SetCore(CoreId(0), PState::P0)]);
        assert_eq!(g.mode(CoreId(0)), PowerMode::NetworkIntensive);
    }

    #[test]
    fn falls_back_when_burst_subsides() {
        let mut g = nmap();
        let mut actions = Vec::new();
        // Enter NI mode.
        g.on_poll_batch(
            CoreId(0),
            PollClass::Interrupt,
            10,
            SimTime::ZERO,
            &mut actions,
        );
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            200,
            SimTime::from_micros(50),
            &mut actions,
        );
        g.on_core_sample(
            CoreId(0),
            sample(0.9),
            SimTime::from_millis(10),
            &mut actions,
        );
        actions.clear();
        // Next window: mostly interrupt-mode traffic → ratio under CU_TH.
        g.on_poll_batch(
            CoreId(0),
            PollClass::Interrupt,
            100,
            SimTime::from_millis(12),
            &mut actions,
        );
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            20,
            SimTime::from_millis(13),
            &mut actions,
        );
        actions.clear();
        g.on_core_sample(
            CoreId(0),
            sample(0.1),
            SimTime::from_millis(20),
            &mut actions,
        );
        assert_eq!(g.mode(CoreId(0)), PowerMode::CpuUtilization);
        // The fallback enforcement is an ondemand decision, not P0.
        assert_eq!(actions.len(), 1);
        let Action::SetCore(c, p) = actions[0] else {
            panic!()
        };
        assert_eq!(c, CoreId(0));
        assert_ne!(p, PState::P0, "low load must not stay at P0");
    }

    #[test]
    fn cpu_mode_behaves_like_ondemand() {
        let mut g = nmap();
        // Saturated samples climb ondemand's staircase, not an
        // immediate P0 jump — only the NI path is immediate.
        let mut last = PState::new(15);
        for i in 0..4 {
            let mut actions = Vec::new();
            g.on_core_sample(
                CoreId(2),
                sample(0.97),
                SimTime::from_millis(10 * (i + 1)),
                &mut actions,
            );
            let Action::SetCore(_, p) = actions[0] else {
                panic!()
            };
            assert!(p.is_faster_than(last));
            last = p;
        }
        assert_eq!(last, PState::P0);
        let mut actions = Vec::new();
        g.on_core_sample(
            CoreId(3),
            sample(0.0),
            SimTime::from_millis(10),
            &mut actions,
        );
        let Action::SetCore(_, p) = actions[0] else {
            panic!()
        };
        assert_ne!(p, PState::P0);
    }

    #[test]
    fn cores_transition_independently() {
        let mut g = nmap();
        let mut actions = Vec::new();
        g.on_poll_batch(
            CoreId(1),
            PollClass::Interrupt,
            10,
            SimTime::ZERO,
            &mut actions,
        );
        g.on_poll_batch(
            CoreId(1),
            PollClass::Polling,
            500,
            SimTime::from_micros(1),
            &mut actions,
        );
        assert_eq!(g.mode(CoreId(1)), PowerMode::NetworkIntensive);
        assert_eq!(g.mode(CoreId(0)), PowerMode::CpuUtilization);
        assert_eq!(g.mode(CoreId(7)), PowerMode::CpuUtilization);
    }

    #[test]
    fn ni_log_marks_mode_boundaries() {
        let mut g = nmap();
        let mut actions = Vec::new();
        // Enter NI mode, then let the burst die out.
        g.on_poll_batch(
            CoreId(0),
            PollClass::Interrupt,
            10,
            SimTime::ZERO,
            &mut actions,
        );
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            500,
            SimTime::from_micros(1),
            &mut actions,
        );
        g.on_core_sample(
            CoreId(0),
            sample(0.9),
            SimTime::from_millis(10),
            &mut actions,
        );
        g.on_core_sample(
            CoreId(0),
            sample(0.0),
            SimTime::from_millis(20),
            &mut actions,
        );
        let marks: Vec<(CoreId, NiMark)> = g.ni_log().iter().map(|&(_, m)| m).collect();
        assert_eq!(
            marks,
            vec![(CoreId(0), NiMark::Notify), (CoreId(0), NiMark::Fallback)]
        );
    }

    /// Drives `core` into Network-Intensive mode at `t`.
    fn enter_ni(g: &mut NmapGovernor, core: CoreId, t: SimTime) {
        let mut actions = Vec::new();
        g.on_poll_batch(core, PollClass::Interrupt, 10, t, &mut actions);
        g.on_poll_batch(
            core,
            PollClass::Polling,
            500,
            t + SimDuration::from_micros(1),
            &mut actions,
        );
        assert_eq!(g.mode(core), PowerMode::NetworkIntensive);
    }

    #[test]
    fn signal_starvation_degrades_within_timeout_bound() {
        // The engine is starved of NI notifications entirely (the
        // notification channel dies while the governor believes a
        // burst is in progress). The bounded-time guarantee: by the
        // first timer after max(signal_timeout, 2·timer) without a
        // signal, the core must be off the pinned-P0 path.
        let mut g = nmap();
        let core = CoreId(0);
        enter_ni(&mut g, core, SimTime::ZERO);
        let deg = g.config().degradation;
        let bound = deg.signal_timeout.max(g.config().timer_interval * 2);
        let mut actions = Vec::new();
        // No poll batches at all after entry; first timer past the
        // bound. (Intermediate timers would fall back even earlier via
        // the empty-window ratio; jumping straight past the bound
        // exercises the degradation trigger itself.)
        let t = SimTime::ZERO + bound + SimDuration::from_millis(1);
        g.on_core_sample(core, sample(0.9), t, &mut actions);
        assert!(g.is_degraded(core), "dead channel must degrade");
        assert_eq!(g.mode(core), PowerMode::CpuUtilization);
        assert_eq!(g.degradation().degradations, 1);
        assert_eq!(g.degradation().degraded_cores, 1);
        // The enforcement came from ondemand, not a pinned P0.
        assert_eq!(actions.len(), 1);
        let marks: Vec<NiMark> = g.ni_log().iter().map(|&(_, (_, m))| m).collect();
        assert!(marks.contains(&NiMark::Degraded));
    }

    #[test]
    fn stale_replayed_signals_degrade_after_consecutive_idle_windows() {
        // Signals keep arriving (a stuck NAPI-state replay holds the
        // poll ratio high) but the core does no measurable work: the
        // suspicion counter must force the fallback after
        // `stale_windows` consecutive windows, instead of pinning P0
        // forever.
        let mut g = nmap();
        let core = CoreId(0);
        enter_ni(&mut g, core, SimTime::ZERO);
        let deg = g.config().degradation;
        let timer = g.config().timer_interval;
        let mut t = SimTime::ZERO;
        for w in 0..deg.stale_windows {
            // Replayed polling-heavy signals keep the window ratio
            // above CU_TH and the freshness check satisfied.
            g.on_poll_batch(core, PollClass::Polling, 500, t, &mut Vec::new());
            g.on_poll_batch(core, PollClass::Interrupt, 1, t, &mut Vec::new());
            t += timer;
            let mut actions = Vec::new();
            g.on_core_sample(core, sample(0.0), t, &mut actions);
            if w + 1 < deg.stale_windows {
                assert!(!g.is_degraded(core), "window {w}: still suspicious only");
                assert_eq!(
                    actions,
                    vec![Action::SetCore(core, PState::P0)],
                    "window {w}: ratio holds, still pinned"
                );
            }
        }
        assert!(g.is_degraded(core), "stale windows must degrade");
        assert_eq!(g.mode(core), PowerMode::CpuUtilization);
        // While degraded, notifications are ignored: no P0 pin, no
        // mode flip even on a strong (replayed) burst.
        let mut actions = Vec::new();
        g.on_poll_batch(core, PollClass::Polling, 5000, t, &mut actions);
        assert!(actions.is_empty(), "degraded core ignores notifications");
        assert_eq!(g.mode(core), PowerMode::CpuUtilization);
    }

    #[test]
    fn recovery_is_hysteretic_and_reengages_ni_mode() {
        let mut g = nmap();
        let core = CoreId(0);
        let deg = g.config().degradation;
        let timer = g.config().timer_interval;
        enter_ni(&mut g, core, SimTime::ZERO);
        // Degrade via starvation.
        let mut t = SimTime::ZERO + deg.signal_timeout.max(timer * 2) + timer;
        g.on_core_sample(core, sample(0.9), t, &mut Vec::new());
        assert!(g.is_degraded(core));
        // One healthy window is not enough (hysteresis)...
        assert!(deg.recovery_windows > 1, "test needs real hysteresis");
        for w in 0..deg.recovery_windows {
            g.on_poll_batch(core, PollClass::Interrupt, 50, t, &mut Vec::new());
            t += timer;
            g.on_core_sample(core, sample(0.5), t, &mut Vec::new());
            if w + 1 < deg.recovery_windows {
                assert!(g.is_degraded(core), "window {w}: not yet recovered");
            }
        }
        // ...but `recovery_windows` consecutive ones re-arm the path.
        assert!(!g.is_degraded(core), "healthy signals must recover");
        assert_eq!(g.degradation().recoveries, 1);
        assert_eq!(g.degradation().degraded_cores, 0);
        // And a fresh burst re-enters NI mode normally.
        let mut actions = Vec::new();
        g.on_poll_batch(core, PollClass::Polling, 500, t, &mut actions);
        assert_eq!(g.mode(core), PowerMode::NetworkIntensive);
        assert_eq!(actions, vec![Action::SetCore(core, PState::P0)]);
        let marks: Vec<NiMark> = g.ni_log().iter().map(|&(_, (_, m))| m).collect();
        assert!(marks.contains(&NiMark::Recovered));
    }

    #[test]
    fn interrupted_healthy_streak_restarts_recovery_count() {
        let mut g = nmap();
        let core = CoreId(0);
        let deg = g.config().degradation;
        let timer = g.config().timer_interval;
        enter_ni(&mut g, core, SimTime::ZERO);
        let mut t = SimTime::ZERO + deg.signal_timeout.max(timer * 2) + timer;
        g.on_core_sample(core, sample(0.9), t, &mut Vec::new());
        assert!(g.is_degraded(core));
        // healthy, idle, healthy — the idle window resets the streak.
        g.on_poll_batch(core, PollClass::Interrupt, 50, t, &mut Vec::new());
        t += timer;
        g.on_core_sample(core, sample(0.5), t, &mut Vec::new());
        t += timer;
        g.on_core_sample(core, sample(0.0), t, &mut Vec::new());
        g.on_poll_batch(core, PollClass::Interrupt, 50, t, &mut Vec::new());
        t += timer;
        g.on_core_sample(core, sample(0.5), t, &mut Vec::new());
        assert!(
            g.is_degraded(core),
            "broken streak must not recover after {} windows",
            deg.recovery_windows + 1
        );
    }

    /// A fixed telemetry reading: every core reports the same
    /// saturation gauge; all other gauges read zero.
    struct FixedSat {
        cores: usize,
        sat: i64,
    }

    impl simcore::TelemetryTap for FixedSat {
        fn tap_cores(&self) -> usize {
            self.cores
        }
        fn last_sample_at(&self) -> Option<SimTime> {
            Some(SimTime::ZERO)
        }
        fn latest(&self, _core: usize, gauge: simcore::Gauge) -> Option<i64> {
            Some(match gauge {
                simcore::Gauge::Saturation => self.sat,
                _ => 0,
            })
        }
    }

    #[test]
    fn shed_hold_suppresses_downclock_until_pressure_clears() {
        let mut g = nmap();
        let core = CoreId(0);
        let timer = g.config().timer_interval;
        // Saturation over the hold floor: entering the hold raises
        // the core to P0 immediately.
        let mut actions = Vec::new();
        let hot = FixedSat { cores: 8, sat: 950 };
        g.on_telemetry(&hot, SimTime::ZERO, &mut actions);
        assert!(g.shed_held(core), "950‰ ≥ hold floor");
        assert!(
            actions.contains(&Action::SetCore(core, PState::P0)),
            "entering the hold must raise V/F without waiting"
        );
        // While held, an idle utilization sample must NOT downclock:
        // shedding comes before power saving, so the decision is P0.
        actions.clear();
        g.on_core_sample(core, sample(0.0), SimTime::ZERO + timer, &mut actions);
        assert_eq!(
            actions,
            vec![Action::SetCore(core, PState::P0)],
            "held core must stay maximized despite idle sample"
        );
        assert!(g.shed_holds() >= 2);
        // Re-asserting the same hot reading is idempotent (no extra
        // raise action — the hold is level-triggered, edges act once).
        actions.clear();
        g.on_telemetry(&hot, SimTime::ZERO + timer, &mut actions);
        assert!(actions.is_empty(), "steady hold must not re-push actions");
        // Pressure clears: the hold releases and ondemand decides
        // again — an idle sample now downclocks normally.
        let cool = FixedSat { cores: 8, sat: 100 };
        g.on_telemetry(&cool, SimTime::ZERO + timer * 2, &mut actions);
        assert!(!g.shed_held(core), "100‰ is under the hold floor");
        actions.clear();
        g.on_core_sample(core, sample(0.0), SimTime::ZERO + timer * 3, &mut actions);
        let Action::SetCore(c, p) = actions[0] else {
            panic!()
        };
        assert_eq!(c, core);
        assert_ne!(p, PState::P0, "released core must downclock when idle");
    }

    #[test]
    fn zero_saturation_telemetry_is_a_no_op() {
        // The always-zero gauge of a run without admission pressure
        // must leave the governor byte-identical to one that never
        // saw telemetry at all.
        let mut g = nmap();
        let mut actions = Vec::new();
        let calm = FixedSat { cores: 8, sat: 0 };
        g.on_telemetry(&calm, SimTime::ZERO, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(g.shed_holds(), 0);
        for core in 0..8 {
            assert!(!g.shed_held(CoreId(core)));
        }
    }

    #[test]
    fn empty_window_in_ni_mode_falls_back() {
        // Ratio of an empty window is 0 < CU_TH: the burst is over.
        let mut g = nmap();
        let mut actions = Vec::new();
        g.on_poll_batch(
            CoreId(0),
            PollClass::Interrupt,
            10,
            SimTime::ZERO,
            &mut actions,
        );
        g.on_poll_batch(
            CoreId(0),
            PollClass::Polling,
            500,
            SimTime::from_micros(1),
            &mut actions,
        );
        g.on_core_sample(
            CoreId(0),
            sample(0.9),
            SimTime::from_millis(10),
            &mut actions,
        );
        assert_eq!(g.mode(CoreId(0)), PowerMode::NetworkIntensive);
        actions.clear();
        // No traffic at all in the next window.
        g.on_core_sample(
            CoreId(0),
            sample(0.0),
            SimTime::from_millis(20),
            &mut actions,
        );
        assert_eq!(g.mode(CoreId(0)), PowerMode::CpuUtilization);
    }
}
