//! The Mode Transition Monitor (Algorithm 1).
//!
//! Per core, the monitor:
//!
//! * accumulates `poll_cnt` and `intr_cnt` — packets processed in
//!   polling and interrupt mode (lines 7-8);
//! * tracks polling-mode packets within the **current interrupt
//!   episode** and emits a Network-Intensive notification as soon as
//!   that exceeds `NI_TH` (lines 4-6) — this is what makes NMAP react
//!   at the *early part* of a burst;
//! * on the periodic timer, hands the window counters to the Decision
//!   Engine and resets them (lines 9-12).

use napisim::PollClass;

/// Per-core Algorithm 1 state.
///
/// # Examples
///
/// ```
/// use nmap::ModeTransitionMonitor;
/// use napisim::PollClass;
///
/// let mut m = ModeTransitionMonitor::new(100);
/// // An interrupt-mode batch opens a new episode.
/// assert!(!m.record_batch(PollClass::Interrupt, 64));
/// // Polling packets accumulate within the episode...
/// assert!(!m.record_batch(PollClass::Polling, 64));
/// // ...and crossing NI_TH notifies.
/// assert!(m.record_batch(PollClass::Polling, 64));
/// ```
#[derive(Debug, Clone)]
pub struct ModeTransitionMonitor {
    ni_threshold: u64,
    /// Polling packets since the episode began.
    episode_poll: u64,
    /// Whether the current episode already notified (one notification
    /// per episode is enough; the engine is edge-triggered).
    episode_notified: bool,
    poll_cnt: u64,
    intr_cnt: u64,
    total_notifications: u64,
}

impl ModeTransitionMonitor {
    /// Creates a monitor with the given `NI_TH`.
    pub fn new(ni_threshold: u64) -> Self {
        ModeTransitionMonitor {
            ni_threshold,
            episode_poll: 0,
            episode_notified: false,
            poll_cnt: 0,
            intr_cnt: 0,
            total_notifications: 0,
        }
    }

    /// Records one NAPI poll batch of `rx_packets` packets attributed
    /// to `class`. Returns `true` if the Decision Engine must be
    /// notified (Network Intensive detection).
    pub fn record_batch(&mut self, class: PollClass, rx_packets: u64) -> bool {
        match class {
            PollClass::Interrupt => {
                // A new interrupt begins a new episode.
                self.intr_cnt += rx_packets;
                self.episode_poll = 0;
                self.episode_notified = false;
                false
            }
            PollClass::Polling => {
                self.poll_cnt += rx_packets;
                self.episode_poll += rx_packets;
                if !self.episode_notified && self.episode_poll > self.ni_threshold {
                    self.episode_notified = true;
                    self.total_notifications += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The periodic timer fired: returns `(poll_cnt, intr_cnt)` for
    /// the window and resets both (lines 9-12).
    pub fn take_window(&mut self) -> (u64, u64) {
        let counts = (self.poll_cnt, self.intr_cnt);
        self.poll_cnt = 0;
        self.intr_cnt = 0;
        counts
    }

    /// Window polling-to-interrupt ratio without resetting. A window
    /// with zero interrupt-mode packets but nonzero polling reads as
    /// infinite intensity; an entirely empty window reads 0.
    pub fn window_ratio(&self) -> f64 {
        if self.intr_cnt == 0 {
            if self.poll_cnt == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.poll_cnt as f64 / self.intr_cnt as f64
        }
    }

    /// Total Network-Intensive notifications emitted.
    pub fn total_notifications(&self) -> u64 {
        self.total_notifications
    }

    /// The configured `NI_TH`.
    pub fn ni_threshold(&self) -> u64 {
        self.ni_threshold
    }

    /// Replaces `NI_TH` (online threshold adaptation).
    pub fn set_ni_threshold(&mut self, ni_threshold: u64) {
        self.ni_threshold = ni_threshold;
    }

    /// Polling packets accumulated in the current interrupt episode.
    pub fn episode_polling(&self) -> u64 {
        self.episode_poll
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_batches_never_notify() {
        let mut m = ModeTransitionMonitor::new(1);
        for _ in 0..100 {
            assert!(!m.record_batch(PollClass::Interrupt, 1_000));
        }
    }

    #[test]
    fn notification_on_crossing_threshold() {
        let mut m = ModeTransitionMonitor::new(100);
        m.record_batch(PollClass::Interrupt, 64);
        assert!(
            !m.record_batch(PollClass::Polling, 100),
            "exactly at NI_TH: no"
        );
        assert!(m.record_batch(PollClass::Polling, 1), "past NI_TH: yes");
        assert_eq!(m.total_notifications(), 1);
    }

    #[test]
    fn one_notification_per_episode() {
        let mut m = ModeTransitionMonitor::new(10);
        m.record_batch(PollClass::Interrupt, 5);
        assert!(m.record_batch(PollClass::Polling, 64));
        // Further polling in the same episode stays quiet.
        assert!(!m.record_batch(PollClass::Polling, 64));
        assert!(!m.record_batch(PollClass::Polling, 640));
        // A new interrupt episode re-arms the detector.
        m.record_batch(PollClass::Interrupt, 5);
        assert!(m.record_batch(PollClass::Polling, 64));
        assert_eq!(m.total_notifications(), 2);
    }

    #[test]
    fn window_counts_accumulate_and_reset() {
        let mut m = ModeTransitionMonitor::new(1_000_000);
        m.record_batch(PollClass::Interrupt, 64);
        m.record_batch(PollClass::Polling, 128);
        m.record_batch(PollClass::Polling, 64);
        m.record_batch(PollClass::Interrupt, 32);
        assert_eq!(m.take_window(), (192, 96));
        assert_eq!(m.take_window(), (0, 0));
    }

    #[test]
    fn ratio_semantics() {
        let mut m = ModeTransitionMonitor::new(1_000_000);
        assert_eq!(m.window_ratio(), 0.0, "empty window");
        m.record_batch(PollClass::Polling, 10);
        assert!(m.window_ratio().is_infinite(), "pure polling window");
        m.record_batch(PollClass::Interrupt, 5);
        assert!((m.window_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_threshold_notifies_on_any_polling() {
        let mut m = ModeTransitionMonitor::new(0);
        m.record_batch(PollClass::Interrupt, 1);
        assert!(m.record_batch(PollClass::Polling, 1));
    }
}
