//! Offline threshold profiling (§4.2).
//!
//! NMAP derives its two thresholds from one lightweight profiling run
//! at the load used to set the SLO (the latency-load curve's
//! inflection point):
//!
//! * **`NI_TH`** — observe the first 100 interrupts from the start of
//!   a request burst and count the packets processed in polling mode
//!   per interrupt episode; `NI_TH` is the **maximum** of those.
//! * **`CU_TH`** — the **average** polling-to-interrupt ratio over a
//!   single request burst.
//!
//! [`ThresholdProfiler`] is a recording sink: the experiment harness
//! feeds it the same per-batch signal the governor would see, then
//! asks for the derived [`NmapConfig`].

use crate::config::NmapConfig;
use cpusim::CoreId;
use napisim::PollClass;

/// Records NAPI poll batches during a profiling run and derives
/// `NI_TH` / `CU_TH`.
///
/// # Examples
///
/// ```
/// use nmap::ThresholdProfiler;
/// use napisim::PollClass;
/// use cpusim::CoreId;
///
/// let mut p = ThresholdProfiler::new(8);
/// p.record_batch(CoreId(0), PollClass::Interrupt, 32);
/// p.record_batch(CoreId(0), PollClass::Polling, 128);
/// p.record_batch(CoreId(0), PollClass::Interrupt, 32);
/// let cfg = p.derive();
/// assert_eq!(cfg.ni_threshold, 128);
/// assert!((cfg.cu_threshold - 2.0).abs() < 1e-12); // 128 poll / 64 intr
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdProfiler {
    /// Finalized per-episode polling counts, per core, capped at the
    /// first [`Self::EPISODE_LIMIT`] interrupts.
    episodes: Vec<Vec<u64>>,
    current_episode: Vec<Option<u64>>,
    total_poll: u64,
    total_intr: u64,
}

impl ThresholdProfiler {
    /// §4.2: "NMAP observes the first 100 interrupts from the start
    /// of a request burst."
    pub const EPISODE_LIMIT: usize = 100;

    /// Creates a profiler for `cores` cores.
    pub fn new(cores: usize) -> Self {
        ThresholdProfiler {
            episodes: vec![Vec::new(); cores],
            current_episode: vec![None; cores],
            total_poll: 0,
            total_intr: 0,
        }
    }

    /// Feeds one poll batch (same signal as the governor hook).
    pub fn record_batch(&mut self, core: CoreId, class: PollClass, rx_packets: u64) {
        match class {
            PollClass::Interrupt => {
                // Close the previous episode.
                if let Some(poll) = self.current_episode[core.0].take() {
                    if self.episodes[core.0].len() < Self::EPISODE_LIMIT {
                        self.episodes[core.0].push(poll);
                    }
                }
                self.current_episode[core.0] = Some(0);
                self.total_intr += rx_packets;
            }
            PollClass::Polling => {
                if let Some(poll) = self.current_episode[core.0].as_mut() {
                    *poll += rx_packets;
                }
                self.total_poll += rx_packets;
            }
        }
    }

    /// Number of closed episodes observed on `core`.
    pub fn episodes_observed(&self, core: CoreId) -> usize {
        self.episodes[core.0].len()
    }

    /// Derives the thresholds.
    ///
    /// `NI_TH` falls back to 1 if no polling was ever observed (an
    /// idle profiling run must still produce a usable config: any
    /// polling then reads as intensity). `CU_TH` falls back to 1.0 if
    /// no interrupt-mode packets were seen.
    pub fn derive(&self) -> NmapConfig {
        let ni = self
            .episodes
            .iter()
            .flat_map(|per_core| per_core.iter().copied())
            .chain(
                // Include still-open episodes so a profiling run that
                // ends mid-burst is not blind to its largest episode.
                self.current_episode.iter().filter_map(|e| *e),
            )
            .max()
            .unwrap_or(0)
            .max(1);
        let cu = if self.total_intr == 0 {
            1.0
        } else {
            (self.total_poll as f64 / self.total_intr as f64).max(f64::MIN_POSITIVE)
        };
        NmapConfig::new(ni, cu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ni_is_max_episode_polling() {
        let mut p = ThresholdProfiler::new(1);
        for (intr, poll) in [(10u64, 50u64), (10, 200), (10, 120)] {
            p.record_batch(CoreId(0), PollClass::Interrupt, intr);
            p.record_batch(CoreId(0), PollClass::Polling, poll);
        }
        p.record_batch(CoreId(0), PollClass::Interrupt, 10);
        let cfg = p.derive();
        assert_eq!(cfg.ni_threshold, 200);
    }

    #[test]
    fn cu_is_average_ratio() {
        let mut p = ThresholdProfiler::new(1);
        p.record_batch(CoreId(0), PollClass::Interrupt, 100);
        p.record_batch(CoreId(0), PollClass::Polling, 300);
        let cfg = p.derive();
        assert!((cfg.cu_threshold - 3.0).abs() < 1e-12);
    }

    #[test]
    fn only_first_100_interrupt_episodes_count_for_ni() {
        let mut p = ThresholdProfiler::new(1);
        // 100 small episodes…
        for _ in 0..101 {
            p.record_batch(CoreId(0), PollClass::Interrupt, 1);
            p.record_batch(CoreId(0), PollClass::Polling, 10);
        }
        assert_eq!(
            p.episodes_observed(CoreId(0)),
            ThresholdProfiler::EPISODE_LIMIT
        );
        // …then a huge one (episode 102, beyond the limit, but still
        // open — open episodes only count until a new interrupt closes
        // them past the cap).
        p.record_batch(CoreId(0), PollClass::Polling, 10_000);
        p.record_batch(CoreId(0), PollClass::Interrupt, 1);
        p.record_batch(CoreId(0), PollClass::Polling, 5);
        let cfg = p.derive();
        // The open 10_005-packet episode was closed after the limit
        // and dropped from the NI computation; the current open
        // episode (5) and the first 100 (10 each) remain.
        assert_eq!(cfg.ni_threshold, 10);
    }

    #[test]
    fn empty_profile_gives_safe_defaults() {
        let p = ThresholdProfiler::new(4);
        let cfg = p.derive();
        assert_eq!(cfg.ni_threshold, 1);
        assert_eq!(cfg.cu_threshold, 1.0);
    }

    #[test]
    fn cores_tracked_separately_max_wins() {
        let mut p = ThresholdProfiler::new(2);
        p.record_batch(CoreId(0), PollClass::Interrupt, 10);
        p.record_batch(CoreId(0), PollClass::Polling, 80);
        p.record_batch(CoreId(1), PollClass::Interrupt, 10);
        p.record_batch(CoreId(1), PollClass::Polling, 150);
        let cfg = p.derive();
        assert_eq!(cfg.ni_threshold, 150, "max across cores");
    }

    #[test]
    fn polling_before_any_interrupt_is_ignored_for_ni() {
        let mut p = ThresholdProfiler::new(1);
        p.record_batch(CoreId(0), PollClass::Polling, 999);
        let cfg = p.derive();
        // No episode was open; the stray polling only affects CU_TH's
        // numerator, and with zero interrupts CU falls back to 1.0.
        assert_eq!(cfg.ni_threshold, 1);
        assert_eq!(cfg.cu_threshold, 1.0);
    }
}
