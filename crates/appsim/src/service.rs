//! Application service-time models.
//!
//! Requests cost a lognormally distributed number of CPU cycles
//! (heavy right tail, as measured for both applications), so service
//! *time* scales inversely with the core's current frequency — the
//! mechanism DVFS acts through.
//!
//! Calibration (DESIGN.md §5): memcached ≈ 2.2 µs mean at 3.2 GHz;
//! nginx ≈ 50 µs of user time at 3.2 GHz on top of a kernel-heavy
//! per-packet cost. Together with the kernel-stack costs in
//! [`napisim::StackParams`] these put the three load levels in the
//! regimes the paper reports (low safe even at Pmin, medium
//! overloading Pmin, high overloading everything but the top states).

use simcore::{RngStream, SimDuration};
use workload::AppKind;

/// A latency-critical application's resource model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppModel {
    /// Which application this models.
    pub kind: AppKind,
    /// Mean service cost in CPU cycles.
    pub service_cycles_mean: f64,
    /// Sigma of the underlying normal (lognormal shape).
    pub service_sigma: f64,
    /// Request payload size in bytes.
    pub request_size: u32,
    /// Response payload size in bytes.
    pub response_size: u32,
    /// Rx packets per request hitting the server NIC (the request
    /// itself plus TCP companion traffic such as ACKs to response
    /// segments) — all cost kernel processing.
    pub rx_packets_per_request: u32,
    /// Wire segments per response (MTU-sized), each leaving a Tx
    /// completion descriptor for NAPI to clean.
    pub tx_segments_per_response: u32,
    /// The SLO on P99 end-to-end latency (§3.1: the latency-load
    /// curve's inflection point).
    pub slo: SimDuration,
}

impl AppModel {
    /// memcached: ~7 000 cycles (≈2.2 µs at 3.2 GHz), 64 B GETs with
    /// 256 B values, SLO 1 ms.
    pub fn memcached() -> Self {
        AppModel {
            kind: AppKind::Memcached,
            service_cycles_mean: 7_000.0,
            service_sigma: 0.30,
            request_size: 64,
            response_size: 256,
            rx_packets_per_request: 2, // GET + TCP ACK
            tx_segments_per_response: 1,
            slo: SimDuration::from_millis(1),
        }
    }

    /// nginx: ~160 000 user-space cycles (≈50 µs at 3.2 GHz) serving
    /// static pages of a few tens of KB — 24 MTU segments per response
    /// plus the client's ACK clock (~12 Rx packets per request). Most
    /// of an nginx request's CPU time is *kernel* time (TCP transmit,
    /// segmentation, skb management — see
    /// [`StackParams`](napisim::StackParams) via
    /// [`stack_for`](crate::testbed::stack_for)), which is what makes
    /// nginx's NAPI load an order of magnitude above its request
    /// rate. SLO 10 ms.
    pub fn nginx() -> Self {
        AppModel {
            kind: AppKind::Nginx,
            service_cycles_mean: 160_000.0,
            service_sigma: 0.40,
            request_size: 256,
            response_size: 36_864,
            rx_packets_per_request: 12,
            tx_segments_per_response: 24,
            slo: SimDuration::from_millis(10),
        }
    }

    /// The model for an [`AppKind`].
    pub fn for_kind(kind: AppKind) -> Self {
        match kind {
            AppKind::Memcached => Self::memcached(),
            AppKind::Nginx => Self::nginx(),
        }
    }

    /// Samples one request's service cost in cycles (≥ 100 cycles so
    /// a pathological draw can never be free).
    pub fn sample_service_cycles(&self, rng: &mut RngStream) -> u64 {
        rng.lognormal_mean(self.service_cycles_mean, self.service_sigma)
            .max(100.0) as u64
    }

    /// Mean service time at a given core frequency.
    pub fn mean_service_time(&self, freq_hz: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.service_cycles_mean / freq_hz as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcached_is_microsecond_scale_at_p0() {
        let m = AppModel::memcached();
        let t = m.mean_service_time(3_200_000_000);
        assert!(
            t > SimDuration::from_nanos(1_000) && t < SimDuration::from_micros(5),
            "{t}"
        );
        assert_eq!(m.slo, SimDuration::from_millis(1));
        assert!(m.rx_packets_per_request >= 1);
        assert!(m.tx_segments_per_response >= 1);
    }

    #[test]
    fn nginx_is_heavier_with_larger_responses() {
        let n = AppModel::nginx();
        let m = AppModel::memcached();
        assert!(n.service_cycles_mean > 10.0 * m.service_cycles_mean);
        assert!(n.response_size > m.response_size);
        assert_eq!(n.slo, SimDuration::from_millis(10));
    }

    #[test]
    fn sampled_cycles_mean_converges() {
        let m = AppModel::memcached();
        let mut rng = RngStream::from_seed(5);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| m.sample_service_cycles(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - m.service_cycles_mean).abs() < 0.03 * m.service_cycles_mean,
            "mean {mean}"
        );
    }

    #[test]
    fn slower_core_means_longer_service() {
        let m = AppModel::nginx();
        assert!(m.mean_service_time(1_200_000_000) > m.mean_service_time(3_200_000_000));
    }

    #[test]
    fn for_kind_roundtrip() {
        assert_eq!(
            AppModel::for_kind(AppKind::Memcached).kind,
            AppKind::Memcached
        );
        assert_eq!(AppModel::for_kind(AppKind::Nginx).kind, AppKind::Nginx);
    }
}
