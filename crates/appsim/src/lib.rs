//! # appsim — latency-critical applications and the testbed
//!
//! The top of the simulation stack:
//!
//! * [`service`]: request service-time models for the paper's two
//!   applications — memcached (µs-scale, SLO 1 ms) and nginx
//!   (tens of µs, SLO 10 ms);
//! * [`testbed`]: the full client ↔ NIC ↔ NAPI ↔ scheduler ↔ app
//!   event machine, assembling `cpusim`, `netsim`, `napisim`,
//!   `governors`, and `workload` into one runnable [`Testbed`].
//!
//! # Examples
//!
//! ```
//! use appsim::{Testbed, TestbedConfig};
//! use appsim::service::AppModel;
//! use workload::{AppKind, LoadLevel, LoadSpec};
//! use governors::{Performance, MenuPolicy};
//! use simcore::{SimTime, SimDuration, Simulator};
//!
//! let cfg = TestbedConfig::new(
//!     AppModel::memcached(),
//!     LoadSpec::custom(20_000.0, SimDuration::from_millis(100), 0.4, 0.3),
//! ).with_seed(7);
//! let mut sim = Simulator::new();
//! let mut tb = Testbed::new(
//!     cfg,
//!     Box::new(Performance::new()),
//!     Box::new(MenuPolicy::new(8)),
//!     &mut sim,
//! );
//! sim.run_until(&mut tb, SimTime::from_millis(200));
//! assert!(tb.client.received() > 0);
//! ```

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod service;
pub mod testbed;

pub use service::AppModel;
pub use testbed::{AdmissionPolicy, Testbed, TestbedConfig, REFERENCE_ADMISSION_CAP};
