//! The full client ↔ server testbed: one event-driven world tying
//! together the NIC, the NAPI stack, the per-core scheduler, the
//! application threads, the DVFS/C-state hardware, and the governors.
//!
//! # Event flow
//!
//! ```text
//! client send ──link──▶ NIC Rx ring ──IRQ (ITR-moderated)──▶ core
//!   wake from C-state → hardirq → NAPI softirq poll loop
//!     → (budget/2-jiffy/10-iteration overrun) → ksoftirqd
//!   poll batches → per-core socket backlog → app thread (round-robin
//!   with ksoftirqd) → service cycles at current V/F → Tx ──link──▶
//! client receive (end-to-end latency recorded)
//! ```
//!
//! Governor hooks fire exactly where the paper's mechanisms live:
//! per poll batch (NMAP's monitor), on ksoftirqd wake/sleep
//! (NMAP-simpl), per sampling tick (ondemand/intel_pstate/NCAP), and
//! per completed request (Parties).

use crate::service::AppModel;
use cpusim::dvfs::{CompletionResult, TransitionOutcome};
use cpusim::power::CoreActivity;
use cpusim::{CoreId, DvfsScope, PState, Processor, ProcessorProfile, RaplCounter};
use governors::{Action, PStateGovernor, SleepPolicy};
use napisim::{
    NapiContext, NapiMode, PollClass, PollVerdict, ProcContext, RunQueue, StackParams, TaskId,
};
use netsim::nic::PollResult;
use netsim::{LinkModel, Nic, NicConfig, Packet, QueueId};
use simcore::audit::{Account, AuditReport, ConservationLedger};
use simcore::{
    AttribTracker, BusyRole, ChainMarks, CoreEnergyMeter, CoreEnergySummary, DecisionTrigger,
    EnergyBreakdown, EnergySummary, EventLog, FaultInjector, FaultKind, FaultPlan, FaultSpec,
    FlightRecorder, FlightSummary, GovDecision, ModeEnergy, RngStream, SimDuration, SimTime,
    Simulator, SloWatchdog, Stage, WatchdogEvent,
};
use std::collections::VecDeque;
use workload::{ArrivalProcess, BurstyArrivals, Client, LoadSpec};

/// Reference queue capacity used to scale the saturation gauge when
/// no admission policy bounds the backlog (so the signal stays
/// comparable across policy-on and policy-off runs).
pub const REFERENCE_ADMISSION_CAP: usize = 256;

/// How the server bounds its per-core application queue.
///
/// The admission decision happens at the delivery point — the moment
/// a NAPI poll would hand a request to a socket backlog — so a shed
/// request costs exactly the kernel work it already consumed and
/// nothing more, and the conservation identity extends integer-exactly
/// (`arrived == dropped + in rings + in poll flight + shed +
/// delivered`, credited to [`Account::PacketsShed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Unbounded queues — the pre-overload-control behaviour.
    #[default]
    None,
    /// Shed when the backlog already holds `limit` requests.
    StaticDepth {
        /// Maximum admitted backlog depth.
        limit: usize,
    },
    /// CoDel-style sojourn threshold: shed a request whose ring wait
    /// exceeded `target` while a backlog exists, and unconditionally
    /// at the hard `limit`.
    Sojourn {
        /// Acceptable ring-sojourn before the queue counts as
        /// congested.
        target: SimDuration,
        /// Hard backlog cap (the static-depth backstop).
        limit: usize,
    },
}

impl AdmissionPolicy {
    /// The queue bound this policy enforces, if any.
    pub fn capacity(&self) -> Option<usize> {
        match *self {
            AdmissionPolicy::None => None,
            AdmissionPolicy::StaticDepth { limit } | AdmissionPolicy::Sojourn { limit, .. } => {
                Some(limit)
            }
        }
    }

    /// Does a request with ring-sojourn `sojourn` enter a backlog of
    /// `depth` requests?
    pub fn admits(&self, sojourn: SimDuration, depth: usize) -> bool {
        match *self {
            AdmissionPolicy::None => true,
            AdmissionPolicy::StaticDepth { limit } => depth < limit,
            AdmissionPolicy::Sojourn { target, limit } => {
                depth < limit && (depth == 0 || sojourn <= target)
            }
        }
    }

    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<(), simcore::SimError> {
        use simcore::SimError;
        match *self {
            AdmissionPolicy::None => Ok(()),
            AdmissionPolicy::StaticDepth { limit } => {
                if limit == 0 {
                    return Err(SimError::invalid(
                        "admission.limit",
                        "a zero-depth queue would shed every request".to_string(),
                    ));
                }
                Ok(())
            }
            AdmissionPolicy::Sojourn { target, limit } => {
                if limit == 0 {
                    return Err(SimError::invalid(
                        "admission.limit",
                        "a zero-depth queue would shed every request".to_string(),
                    ));
                }
                if target.is_zero() {
                    return Err(SimError::invalid(
                        "admission.target",
                        "a zero sojourn target sheds any queued request".to_string(),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Everything needed to assemble a [`Testbed`].
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// The processor model (default: Xeon Gold 6134).
    pub profile: ProcessorProfile,
    /// Per-core or chip-wide DVFS (default: per-core, §6.1).
    pub scope: DvfsScope,
    /// The application under test.
    pub app: AppModel,
    /// The offered load.
    pub load: LoadSpec,
    /// Kernel network-stack parameters.
    pub stack: StackParams,
    /// Client-server link model.
    pub link: LinkModel,
    /// Number of client connections (flows) — RSS spreads these.
    pub flows: u64,
    /// Number of NIC Rx/Tx queue pairs. `None` (the default) gives
    /// one queue per core, the paper's testbed layout. Fewer queues
    /// than cores leaves the surplus cores without network work;
    /// more queues than cores is rejected by
    /// [`validate`](TestbedConfig::validate) — RSS would steer flows
    /// to vectors with no core to service them.
    pub nic_queues: Option<usize>,
    /// Master RNG seed; same seed → bit-identical run.
    pub seed: u64,
    /// Capacity of the structured trace buffer. Zero (the default)
    /// turns trace recording off entirely; with the `obs` feature off
    /// the buffer is a zero-sized no-op regardless.
    pub trace_capacity: usize,
    /// Deterministic fault schedule. Empty (the default) injects
    /// nothing and draws nothing; without the `fault` feature the
    /// injector is inert regardless of the plan.
    pub fault_plan: FaultPlan,
    /// Telemetry timeline sampling (fixed sim-time interval,
    /// interval-doubling decimation). Off by default at this layer
    /// (`cap: 0`); the experiment runner opts in. Zero-sized no-op
    /// without the `obs` feature regardless.
    pub timeline: simcore::TimelineConfig,
    /// Overload admission control for the per-core app queues.
    /// Unbounded ([`AdmissionPolicy::None`]) by default, preserving
    /// the pre-overload-control behaviour bit for bit.
    pub admission: AdmissionPolicy,
}

/// The kernel-stack cost profile for an application's traffic mix.
///
/// memcached's small UDP/TCP datagrams cost the Linux defaults;
/// nginx's mix (MTU-sized segments, TSO bookkeeping, 36 KB skb
/// chains) costs markedly more per descriptor — in real nginx
/// serving, kernel time rivals user time per request.
pub fn stack_for(kind: workload::AppKind) -> StackParams {
    match kind {
        workload::AppKind::Memcached => StackParams::linux_defaults(),
        workload::AppKind::Nginx => StackParams {
            rx_pkt_cycles: 7_000,
            tx_clean_cycles: 2_000,
            ..StackParams::linux_defaults()
        },
    }
}

impl TestbedConfig {
    /// The paper's default testbed around `app` and `load`.
    pub fn new(app: AppModel, load: LoadSpec) -> Self {
        TestbedConfig {
            profile: ProcessorProfile::xeon_gold_6134(),
            scope: DvfsScope::PerCore,
            stack: stack_for(app.kind),
            app,
            load,
            link: LinkModel::ten_gbe(),
            flows: 320,
            nic_queues: None,
            seed: 42,
            trace_capacity: 0,
            fault_plan: FaultPlan::new(),
            timeline: simcore::TimelineConfig::OFF,
            admission: AdmissionPolicy::None,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the processor profile.
    pub fn with_profile(mut self, profile: ProcessorProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Overrides the DVFS scope (chip-wide ablation).
    pub fn with_scope(mut self, scope: DvfsScope) -> Self {
        self.scope = scope;
        self
    }

    /// Overrides the stack parameters.
    pub fn with_stack(mut self, stack: StackParams) -> Self {
        self.stack = stack;
        self
    }

    /// Enables structured tracing with room for `capacity` events
    /// (overflow increments the buffer's drop counter, never panics).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Installs a fault schedule (chaos testing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enables telemetry timeline sampling at the given interval and
    /// row cap (see [`simcore::TimelineConfig`]).
    pub fn with_timeline(mut self, timeline: simcore::TimelineConfig) -> Self {
        self.timeline = timeline;
        self
    }

    /// Overrides the NIC queue count (RSS ablations).
    pub fn with_nic_queues(mut self, queues: usize) -> Self {
        self.nic_queues = Some(queues);
        self
    }

    /// Bounds the per-core app queues with an admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Validates the whole assembly before any component constructor
    /// can panic on it: degenerate topology, load, queue layout, and
    /// fault plans all become typed [`SimError`](simcore::SimError)s
    /// with the offending field named.
    pub fn validate(&self) -> Result<(), simcore::SimError> {
        use simcore::SimError;
        let cores = self.profile.cores;
        if cores == 0 {
            return Err(SimError::invalid(
                "profile.cores",
                "a processor needs at least one core".to_string(),
            ));
        }
        if self.profile.pstates.is_empty() {
            return Err(SimError::invalid(
                "profile.pstates",
                "a processor needs at least one P-state".to_string(),
            ));
        }
        if self.flows == 0 {
            return Err(SimError::invalid(
                "flows",
                "at least one client flow is required to offer load".to_string(),
            ));
        }
        match self.nic_queues {
            Some(0) => {
                return Err(SimError::invalid(
                    "nic_queues",
                    "the NIC needs at least one queue".to_string(),
                ));
            }
            Some(q) if q > cores => {
                return Err(SimError::invalid(
                    "nic_queues",
                    format!(
                        "{q} RSS queues exceed the {cores} available cores; \
                         RSS would steer flows to IRQ vectors with no core \
                         to service them"
                    ),
                ));
            }
            _ => {}
        }
        self.load.validate()?;
        self.fault_plan.validate(cores)?;
        self.admission.validate()?;
        Ok(())
    }
}

/// Event-handler kinds the testbed schedules, for the per-kind
/// executed-event counters in the metrics snapshot.
#[derive(Debug, Clone, Copy)]
enum EvKind {
    ClientSend,
    ClientRecv,
    ServerRx,
    IrqFire,
    ExecDone,
    SleepTick,
    SampleTick,
    DvfsDone,
    /// Fault-scope edge: modal overrides recomputed.
    FaultBoundary,
    /// Periodic fault injection (spurious IRQs, stale-signal replay,
    /// incast bursts, connection churn).
    FaultTick,
    /// Delayed ksoftirqd wakeup landing after a missed-wake fault.
    FaultWake,
    /// Telemetry timeline sample (fixed cadence, read-only).
    TimelineTick,
}

impl EvKind {
    const COUNT: usize = 12;

    const fn key(self) -> &'static str {
        match self {
            EvKind::ClientSend => "engine.ev.client_send",
            EvKind::ClientRecv => "engine.ev.client_recv",
            EvKind::ServerRx => "engine.ev.server_rx",
            EvKind::IrqFire => "engine.ev.irq_fire",
            EvKind::ExecDone => "engine.ev.exec_done",
            EvKind::SleepTick => "engine.ev.sleep_tick",
            EvKind::SampleTick => "engine.ev.sample_tick",
            EvKind::DvfsDone => "engine.ev.dvfs_done",
            EvKind::FaultBoundary => "engine.ev.fault_boundary",
            EvKind::FaultTick => "engine.ev.fault_tick",
            EvKind::FaultWake => "engine.ev.fault_wake",
            EvKind::TimelineTick => "engine.ev.timeline_tick",
        }
    }

    const ALL: [EvKind; EvKind::COUNT] = [
        EvKind::ClientSend,
        EvKind::ClientRecv,
        EvKind::ServerRx,
        EvKind::IrqFire,
        EvKind::ExecDone,
        EvKind::SleepTick,
        EvKind::SampleTick,
        EvKind::DvfsDone,
        EvKind::FaultBoundary,
        EvKind::FaultTick,
        EvKind::FaultWake,
        EvKind::TimelineTick,
    ];
}

/// What a core is currently executing.
enum RunKind {
    /// Interrupt entry + NAPI schedule.
    HardIrq { q: QueueId },
    /// One NAPI poll batch (descriptors already claimed from the NIC).
    Poll { ctx: ProcContext, batch: PollResult },
    /// One application request.
    App { pkt: Packet },
}

struct Running {
    kind: RunKind,
    seq: u64,
    done_ev: simcore::EventId,
    done_at: SimTime,
}

struct PreemptedApp {
    pkt: Packet,
    remaining_cycles: u64,
}

struct ExecState {
    running: Option<Running>,
    preempted: Option<PreemptedApp>,
    quantum_started: SimTime,
    /// CC6 cache-refill time owed to the next execution.
    cache_debt: SimDuration,
    seq: u64,
}

impl ExecState {
    fn new() -> Self {
        ExecState {
            running: None,
            preempted: None,
            quantum_started: SimTime::ZERO,
            cache_debt: SimDuration::ZERO,
            seq: 0,
        }
    }
}

/// The simulation world: a complete server plus its client.
pub struct Testbed {
    /// Processor (cores, DVFS domains, energy accounting).
    pub processor: Processor,
    /// The multi-queue NIC.
    pub nic: Nic,
    /// Per-core NAPI contexts (one queue per core).
    pub napi: Vec<NapiContext>,
    /// The load-generating, latency-measuring client.
    pub client: Client,
    /// The V/F governor under test.
    pub governor: Box<dyn PStateGovernor>,
    /// The sleep policy under test.
    pub sleep: Box<dyn SleepPolicy>,
    /// Per-core ksoftirqd wake (`true`) / sleep (`false`) marks.
    pub ksoftirqd_log: Vec<EventLog<bool>>,
    /// Optional per-poll-batch observer (threshold profiling).
    #[allow(clippy::type_complexity)]
    pub poll_observer: Option<Box<dyn FnMut(CoreId, PollClass, u64, SimTime)>>,
    /// Conservation ledger every event path credits; audited by
    /// [`audit_report`](Testbed::audit_report). Zero-sized no-op
    /// without the `audit` feature.
    pub ledger: ConservationLedger,
    /// Structured trace events (request spans and governor instants
    /// land here live; component logs are replayed in by
    /// [`collect_trace`](Testbed::collect_trace)). Zero-sized no-op
    /// without the `obs` feature; recording also requires a non-zero
    /// [`TestbedConfig::trace_capacity`].
    pub trace: simcore::TraceBuffer,
    /// Deterministically ordered counters/gauges/histograms, filled by
    /// [`collect_metrics`](Testbed::collect_metrics). Zero-sized no-op
    /// without the `obs` feature.
    pub metrics: simcore::MetricsRegistry,
    /// Per-request latency attribution: decomposes every completed
    /// request's end-to-end latency into pipeline stages that sum
    /// exactly to the measured value (ledger-audited). Zero-sized
    /// no-op without the `obs` feature.
    pub attrib: AttribTracker,
    /// Online SLO watchdog: sliding-window P99 per core and globally,
    /// with violation/recovery episode detection. Always on (its
    /// report is part of every run result).
    pub watchdog: SloWatchdog,
    /// The fault injector evaluating [`TestbedConfig::fault_plan`].
    /// Zero-sized no-op without the `fault` feature.
    pub faults: FaultInjector,
    /// The telemetry timeline bus: fixed-interval per-core gauge rows
    /// with interval-doubling decimation, polled by governors through
    /// [`simcore::TelemetryTap`]. Zero-sized no-op without the `obs`
    /// feature; recording also requires [`TestbedConfig::timeline`]
    /// with a non-zero cap.
    pub timeline: simcore::TimeSeriesSampler,

    profile: ProcessorProfile,
    app: AppModel,
    stack: StackParams,
    link: LinkModel,
    scope: DvfsScope,
    arrivals: BurstyArrivals,
    runqueues: Vec<RunQueue>,
    exec: Vec<ExecState>,
    backlog: Vec<VecDeque<Packet>>,
    core_idle: Vec<bool>,
    /// When each core last went idle, and an epoch counter so stale
    /// sleep-tick events die (bumped on every idle entry and wake).
    idle_since: Vec<SimTime>,
    idle_epoch: Vec<u64>,
    rng_arrival: RngStream,
    rng_client: RngStream,
    rng_service: RngStream,
    rng_dvfs: RngStream,
    rng_wake: RngStream,
    nic_window_rx: u64,
    send_horizon: SimTime,
    /// Generation counter for the arrival chain: bumping it kills the
    /// previously scheduled send chain (used by [`switch_load`]).
    ///
    /// [`switch_load`]: Testbed::switch_load
    arrival_gen: u64,
    measure_start: SimTime,
    measure_start_energy: f64,
    /// Ledger latency-sample balance at measurement start, so the
    /// audit can compare post-warm-up samples against the client's
    /// (reset) histogram.
    measure_start_samples: u64,
    actions: Vec<Action>,
    /// Executed-event counts per handler kind (indexed by `EvKind`).
    ev_counts: [u64; EvKind::COUNT],
    /// Per-core interrupt-chain timestamps for the attribution
    /// profiler's ring-interval decomposition.
    marks: Vec<ChainMarks>,
    /// Scratch buffer for watchdog events (reused per response).
    watchdog_events: Vec<WatchdogEvent>,
    /// The configured load, kept so load-spike faults can scale it.
    base_load: LoadSpec,
    /// Load-spike factor currently applied via `switch_load`.
    load_factor_applied: f64,
    /// Queues whose IRQ unmask write was lost to a stuck-mask fault;
    /// released by the fault-boundary event when the scope ends.
    stuck_masked: Vec<bool>,
    /// Last poll-batch signal per core, for stale-signal replay.
    last_poll_signal: Vec<Option<(PollClass, u64)>>,
    /// Request packets sent but not yet arrived at the NIC (the wire
    /// conservation identity counts fault drops against these).
    wire_requests_in_flight: u64,
    /// Response packets sent but not yet received by the client.
    wire_responses_in_flight: u64,
    /// RAPL-like interval counter, read once per sampling tick; a
    /// clamped (negative-delta) read fails the conservation audit.
    rapl: RaplCounter,
    /// Bounded ring of every governor decision with the feature
    /// snapshot it acted on. Zero-sized no-op without `obs`.
    flight: FlightRecorder,
    /// Each core's last sampled CC0 utilization, per mille (the
    /// flight recorder's utilization input).
    last_util: Vec<u32>,
    /// Reusable scratch row for the timeline tick (no per-sample
    /// allocation).
    timeline_row: Vec<i64>,
    /// Integer-µJ package totals already credited to the energy
    /// ledger accounts (credits happen at sample boundaries).
    energy_credited_measured_uj: u64,
    energy_credited_attributed_uj: u64,
    /// Per-core measured-µJ anchor at the last mode-energy flush.
    mode_anchor_measured_uj: Vec<u64>,
    /// Per-core wake-transition-µJ anchor at the last flush.
    mode_anchor_wake_uj: Vec<u64>,
    /// Core energy burned in interrupt / polling mode, and in
    /// C-state wake transitions, cumulative from time zero. The
    /// three partition the cores' measured µJ exactly (audited).
    mode_interrupt_uj: u64,
    mode_polling_uj: u64,
    mode_transition_uj: u64,
    /// The configured admission policy bounding the app queues.
    admission: AdmissionPolicy,
    /// Requests shed by the admission policy, per core (sums to the
    /// [`Account::PacketsShed`] ledger balance).
    shed: Vec<u64>,
    /// Integer-µJ snapshots at `begin_measurement`, windowing the
    /// [`energy_summary`](Testbed::energy_summary).
    measure_start_core_uj: Vec<u64>,
    measure_start_core_breakdown: Vec<EnergyBreakdown>,
    measure_start_uncore_uj: u64,
    measure_start_mode: ModeEnergy,
}

impl Testbed {
    /// Builds the world and schedules its initial events (first client
    /// send, first governor sampling tick).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid; use
    /// [`try_new`](Testbed::try_new) to get the typed error instead.
    pub fn new(
        config: TestbedConfig,
        governor: Box<dyn PStateGovernor>,
        sleep: Box<dyn SleepPolicy>,
        sim: &mut Simulator<Testbed>,
    ) -> Self {
        Testbed::try_new(config, governor, sleep, sim).expect("invalid TestbedConfig")
    }

    /// Fallible constructor: validates the config
    /// ([`TestbedConfig::validate`]) before any component constructor
    /// can panic on it, then builds the world and schedules its
    /// initial events.
    pub fn try_new(
        config: TestbedConfig,
        governor: Box<dyn PStateGovernor>,
        sleep: Box<dyn SleepPolicy>,
        sim: &mut Simulator<Testbed>,
    ) -> Result<Self, simcore::SimError> {
        config.validate()?;
        let cores = config.profile.cores;
        let queues = config.nic_queues.unwrap_or(cores).min(cores);
        let processor = Processor::new(config.profile.clone(), config.scope);
        let mut nic = Nic::new(NicConfig::intel_82599(queues));
        let trace = simcore::TraceBuffer::with_capacity(config.trace_capacity);
        if trace.is_recording() {
            nic.set_irq_log_enabled(true);
        }
        let arrivals = config.load.arrivals();
        let seed = config.seed;
        let faults = FaultInjector::from_plan(&config.fault_plan, seed);
        let mut tb = Testbed {
            processor,
            nic,
            napi: (0..cores).map(|_| NapiContext::new(config.stack)).collect(),
            client: Client::new(config.flows, config.app.request_size),
            governor,
            sleep,
            ksoftirqd_log: (0..cores).map(|_| EventLog::new()).collect(),
            poll_observer: None,
            ledger: ConservationLedger::new(),
            trace,
            metrics: simcore::MetricsRegistry::default(),
            attrib: AttribTracker::new(),
            // A 5 ms sliding window keeps the online P99 responsive to
            // bursts while holding enough samples for a stable tail.
            watchdog: SloWatchdog::new(config.app.slo, SimDuration::from_millis(5), cores),
            faults,
            profile: config.profile.clone(),
            app: config.app,
            stack: config.stack,
            link: config.link,
            scope: config.scope,
            arrivals,
            runqueues: (0..cores).map(|_| RunQueue::new()).collect(),
            exec: (0..cores).map(|_| ExecState::new()).collect(),
            backlog: (0..cores).map(|_| VecDeque::new()).collect(),
            core_idle: vec![false; cores],
            idle_since: vec![SimTime::ZERO; cores],
            idle_epoch: vec![0; cores],
            rng_arrival: RngStream::derive(seed, "arrival", 0),
            rng_client: RngStream::derive(seed, "client", 0),
            rng_service: RngStream::derive(seed, "service", 0),
            rng_dvfs: RngStream::derive(seed, "dvfs", 0),
            rng_wake: RngStream::derive(seed, "wake", 0),
            nic_window_rx: 0,
            send_horizon: SimTime::MAX,
            arrival_gen: 0,
            measure_start: SimTime::ZERO,
            measure_start_energy: 0.0,
            measure_start_samples: 0,
            actions: Vec::new(),
            ev_counts: [0; EvKind::COUNT],
            marks: vec![ChainMarks::default(); cores],
            watchdog_events: Vec::new(),
            base_load: config.load,
            load_factor_applied: 1.0,
            stuck_masked: vec![false; cores],
            last_poll_signal: vec![None; cores],
            wire_requests_in_flight: 0,
            wire_responses_in_flight: 0,
            rapl: RaplCounter::new(),
            // 4096 decisions ≈ tens of seconds of history at typical
            // decision rates; old entries evict with drop accounting.
            flight: FlightRecorder::with_capacity(4096),
            last_util: vec![0; cores],
            timeline: simcore::TimeSeriesSampler::new(cores, config.timeline),
            timeline_row: Vec::with_capacity(cores * simcore::GAUGES),
            energy_credited_measured_uj: 0,
            energy_credited_attributed_uj: 0,
            mode_anchor_measured_uj: vec![0; cores],
            mode_anchor_wake_uj: vec![0; cores],
            mode_interrupt_uj: 0,
            mode_polling_uj: 0,
            mode_transition_uj: 0,
            admission: config.admission,
            shed: vec![0; cores],
            measure_start_core_uj: vec![0; cores],
            measure_start_core_breakdown: vec![EnergyBreakdown::default(); cores],
            measure_start_uncore_uj: 0,
            measure_start_mode: ModeEnergy::default(),
        };
        // All cores start idle under the sleep policy.
        for i in 0..cores {
            tb.core_idle[i] = false; // force the transition below
            tb.go_idle(sim, CoreId(i));
        }
        // First arrival.
        let mut rng = tb.rng_arrival.clone();
        if let Some(t) = tb.arrivals.next_after(SimTime::ZERO, &mut rng) {
            sim.schedule_at(t, |w, sim| w.ev_client_send(sim, 0));
        }
        tb.rng_arrival = rng;
        // Governor sampling tick.
        let interval = tb.governor.sampling_interval();
        sim.schedule_at(SimTime::ZERO + interval, |w, sim| w.ev_sample_tick(sim));
        // Telemetry timeline tick: a fixed cadence independent of the
        // governor's sampling interval, so every governor's timeline
        // is sampled at identical instants.
        if tb.timeline.is_recording() {
            let tick = tb.timeline.interval();
            sim.schedule_at(SimTime::ZERO + tick, |w, sim| w.ev_timeline_tick(sim));
        }
        // Fault schedule: every scope edge gets a boundary event that
        // recomputes the modal overrides (ITR, ring clamp, DVFS
        // padding, load factor, stuck-mask release); periodic and
        // one-shot kinds start their own chains at the scope start.
        if tb.faults.is_active() {
            let specs: Vec<FaultSpec> = tb.faults.specs().to_vec();
            for spec in specs {
                let scope = spec.scope;
                sim.schedule_at(scope.start, |w, sim| w.ev_fault_boundary(sim));
                if scope.end < SimTime::MAX {
                    sim.schedule_at(scope.end, |w, sim| w.ev_fault_boundary(sim));
                }
                match spec.kind {
                    FaultKind::SpuriousIrq { .. } | FaultKind::NapiSignalStuck { .. } => {
                        sim.schedule_at(scope.start, move |w, sim| w.ev_fault_tick(sim, spec));
                    }
                    FaultKind::IncastBurst { requests } => {
                        sim.schedule_at(scope.start, move |w, sim| {
                            w.ev_fault_incast(sim, requests)
                        });
                    }
                    FaultKind::ConnectionChurn { shift } => {
                        sim.schedule_at(scope.start, move |w, sim| w.ev_fault_churn(sim, shift));
                    }
                    _ => {}
                }
            }
        }
        Ok(tb)
    }

    /// The processor profile in use.
    pub fn profile(&self) -> &ProcessorProfile {
        &self.profile
    }

    /// The application model in use.
    pub fn app(&self) -> &AppModel {
        &self.app
    }

    /// Stops generating new requests after `t` (drain at run end).
    pub fn stop_sends_at(&mut self, t: SimTime) {
        self.send_horizon = t;
    }

    /// Marks the start of the measured interval: clears client
    /// statistics and anchors the energy counter (run after warm-up).
    pub fn begin_measurement(&mut self, now: SimTime) {
        self.client.reset_stats();
        self.measure_start = now;
        self.measure_start_energy = self.processor.package_energy_joules(now);
        self.measure_start_samples = self.ledger.balance(Account::LatencySamples);
        if CoreEnergyMeter::ENABLED {
            // Close the open mode-energy windows against the warm-up
            // buckets, then snapshot every integer cursor so the
            // summary can report the measured window alone.
            for i in 0..self.processor.num_cores() {
                let mode = self.napi[i].mode();
                self.flush_mode_energy(i, now, mode);
            }
            for i in 0..self.processor.num_cores() {
                let c = self.processor.core_mut(CoreId(i));
                self.measure_start_core_uj[i] = c.energy_uj(now, &self.profile);
                self.measure_start_core_breakdown[i] = c.energy_breakdown(now, &self.profile);
            }
            self.measure_start_uncore_uj = self.processor.uncore_uj(now);
            self.measure_start_mode = ModeEnergy {
                interrupt_uj: self.mode_interrupt_uj,
                polling_uj: self.mode_polling_uj,
                transition_uj: self.mode_transition_uj,
            };
        }
    }

    /// Folds the core's meter deltas since the last flush into the
    /// per-mode energy buckets, charging non-transition burn to
    /// `mode` (the NAPI mode the window belonged to) and the
    /// wake-transition component to the transition bucket.
    fn flush_mode_energy(&mut self, core: usize, now: SimTime, mode: NapiMode) {
        if !CoreEnergyMeter::ENABLED {
            return;
        }
        let c = self.processor.core_mut(CoreId(core));
        let measured = c.energy_uj(now, &self.profile);
        let wake = c
            .energy_breakdown(now, &self.profile)
            .get_uj(simcore::EnergyComponent::WakeC0);
        let d_measured = measured.saturating_sub(self.mode_anchor_measured_uj[core]);
        let d_wake = wake.saturating_sub(self.mode_anchor_wake_uj[core]);
        self.mode_anchor_measured_uj[core] = measured;
        self.mode_anchor_wake_uj[core] = wake;
        // WakeC0 is one component of the measured total, so the
        // subtraction cannot underflow; saturate anyway.
        let d_mode = d_measured.saturating_sub(d_wake);
        match mode {
            NapiMode::Interrupt => self.mode_interrupt_uj += d_mode,
            NapiMode::Polling => self.mode_polling_uj += d_mode,
        }
        self.mode_transition_uj += d_wake;
    }

    /// Integer-exact energy attribution over the measured interval:
    /// per-core measured µJ with their component decompositions, the
    /// package uncore term, the same energy split by packet-processing
    /// mode, and the RAPL clamp count. All zeros without the `obs`
    /// feature.
    pub fn energy_summary(&mut self, end: SimTime) -> EnergySummary {
        for i in 0..self.processor.num_cores() {
            let mode = self.napi[i].mode();
            self.flush_mode_energy(i, end, mode);
        }
        let mut cores = Vec::with_capacity(self.processor.num_cores());
        for i in 0..self.processor.num_cores() {
            let c = self.processor.core_mut(CoreId(i));
            let measured = c
                .energy_uj(end, &self.profile)
                .saturating_sub(self.measure_start_core_uj[i]);
            let breakdown = c
                .energy_breakdown(end, &self.profile)
                .since(&self.measure_start_core_breakdown[i]);
            cores.push(CoreEnergySummary {
                core: i as u32,
                measured_uj: measured,
                breakdown,
            });
        }
        EnergySummary {
            cores,
            uncore_uj: self
                .processor
                .uncore_uj(end)
                .saturating_sub(self.measure_start_uncore_uj),
            modes: ModeEnergy {
                interrupt_uj: self
                    .mode_interrupt_uj
                    .saturating_sub(self.measure_start_mode.interrupt_uj),
                polling_uj: self
                    .mode_polling_uj
                    .saturating_sub(self.measure_start_mode.polling_uj),
                transition_uj: self
                    .mode_transition_uj
                    .saturating_sub(self.measure_start_mode.transition_uj),
            },
            rapl_clamps: self.rapl.clamp_events(),
        }
    }

    /// The governor decision flight recorder's end-of-run summary.
    pub fn flight_summary(&self) -> FlightSummary {
        self.flight.summary()
    }

    /// Package energy consumed since `begin_measurement`, in joules.
    pub fn measured_energy(&mut self, now: SimTime) -> f64 {
        self.processor.package_energy_joules(now) - self.measure_start_energy
    }

    /// Length of the measured interval so far.
    pub fn measured_duration(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.measure_start)
    }

    // ------------------------------------------------------------------
    // Client events
    // ------------------------------------------------------------------

    fn ev_client_send(&mut self, sim: &mut Simulator<Testbed>, gen: u64) {
        self.ev_counts[EvKind::ClientSend as usize] += 1;
        let now = sim.now();
        if gen != self.arrival_gen || now > self.send_horizon {
            return; // stale chain (load switched) or run winding down
        }
        let pkt = self.client.build_request(now, &mut self.rng_client);
        self.ledger.credit(Account::RequestsSent, 1);
        self.wire_requests_in_flight += 1;
        let delay = self.link.delay(&pkt);
        sim.schedule_in(delay, move |w, sim| w.ev_server_rx(sim, pkt));
        let mut rng = self.rng_arrival.clone();
        if let Some(t) = self.arrivals.next_after(now, &mut rng) {
            if t <= self.send_horizon {
                sim.schedule_at(t, move |w, sim| w.ev_client_send(sim, gen));
            }
        }
        self.rng_arrival = rng;
    }

    /// Switches the offered load mid-run (Fig 16's varying-load
    /// workload). The old arrival chain dies; a fresh chain starts
    /// from the new spec immediately.
    pub fn switch_load(&mut self, sim: &mut Simulator<Testbed>, load: LoadSpec) {
        let now = sim.now();
        self.arrivals = load.arrivals();
        self.arrival_gen += 1;
        let gen = self.arrival_gen;
        let mut rng = self.rng_arrival.clone();
        if let Some(t) = self.arrivals.next_after(now, &mut rng) {
            if t <= self.send_horizon {
                sim.schedule_at(t, move |w, sim| w.ev_client_send(sim, gen));
            }
        }
        self.rng_arrival = rng;
    }

    fn ev_client_recv(&mut self, sim: &mut Simulator<Testbed>, pkt: Packet) {
        self.ev_counts[EvKind::ClientRecv as usize] += 1;
        let now = sim.now();
        self.wire_responses_in_flight -= 1;
        let core = self.nic.rss_queue(pkt.flow).0;
        if self.faults.wire_drop(now, core).is_some() {
            // The response dies on the wire. Its attribution entry
            // stays pending (neither measured nor attributed time is
            // credited), so the latency identities keep balancing.
            self.faults.note_wire_response_dropped();
            self.ledger.credit(Account::PacketsFaultDropped, 1);
            self.ledger.credit(Account::ResponsesFaultDropped, 1);
            return;
        }
        let latency = self.client.on_response(&pkt, now);
        self.ledger.credit(Account::ResponsesReceived, 1);
        self.ledger.credit(Account::LatencySamples, 1);
        self.ledger
            .credit(Account::LatencyNanosMeasured, latency.as_nanos());
        // Close the request's attribution: the stage sums must equal
        // the measured latency exactly (audited), and each stage feeds
        // its metrics histogram.
        if let Some(done) = self.attrib.completed(pkt.id.0, now) {
            self.ledger
                .credit(Account::LatencyNanosAttributed, done.breakdown.total_ns());
            for (stage, ns) in done.breakdown.iter() {
                self.metrics.observe(stage.metric_key(), ns);
            }
        }
        // The watchdog sees every sample, keyed to the serving core
        // (RSS pins a flow to one queue = one core).
        let mut events = std::mem::take(&mut self.watchdog_events);
        events.clear();
        self.watchdog
            .record(core, latency.as_nanos(), now, &mut events);
        if self.trace.is_recording() {
            self.trace_watchdog_events(now, &events);
        }
        self.watchdog_events = events;
        let mut actions = std::mem::take(&mut self.actions);
        self.governor.on_request_latency(latency, now, &mut actions);
        self.apply_actions(sim, &mut actions, DecisionTrigger::RequestLatency);
        self.actions = actions;
    }

    /// Turns watchdog state changes into Perfetto-visible counters and
    /// instants on the SLO track.
    fn trace_watchdog_events(&mut self, now: SimTime, events: &[WatchdogEvent]) {
        use simcore::TraceCategory::Slo;
        for ev in events {
            match *ev {
                WatchdogEvent::WindowRotated { p99_ns, p50_ns } => {
                    self.trace.counter(now, Slo, 0, "p99-online", p99_ns as i64);
                    self.trace.counter(now, Slo, 0, "p50-online", p50_ns as i64);
                    // Refresh the cumulative stage-share counters at
                    // window cadence (per-mille of attributed time).
                    if AttribTracker::ENABLED {
                        for stage in Stage::ALL {
                            self.trace.counter(
                                now,
                                Slo,
                                0,
                                stage.share_label(),
                                self.attrib.share_permille(stage) as i64,
                            );
                        }
                    }
                }
                WatchdogEvent::CoreWindow { core, p99_ns } => {
                    self.trace
                        .counter(now, Slo, core, "p99-core", p99_ns as i64);
                }
                WatchdogEvent::ViolationDetected { since_first_bad } => {
                    self.trace.instant(
                        now,
                        Slo,
                        0,
                        "slo-violation",
                        since_first_bad.as_nanos() as i64,
                    );
                }
                WatchdogEvent::Recovered { violated_for } => {
                    self.trace
                        .instant(now, Slo, 0, "slo-recovery", violated_for.as_nanos() as i64);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // NIC events
    // ------------------------------------------------------------------

    fn ev_server_rx(&mut self, sim: &mut Simulator<Testbed>, pkt: Packet) {
        self.ev_counts[EvKind::ServerRx as usize] += 1;
        let now = sim.now();
        let q = self.nic.rss_queue(pkt.flow);
        self.wire_requests_in_flight -= 1;
        if self.faults.wire_drop(now, q.0).is_some() {
            // The request dies on the wire before the NIC sees it:
            // accounted explicitly so conservation holds under loss.
            self.faults.note_wire_request_dropped();
            self.ledger.credit(Account::PacketsFaultDropped, 1);
            self.ledger.credit(Account::RequestsFaultDropped, 1);
            return;
        }
        self.ledger.credit(Account::RequestsArrivedAtNic, 1);
        // The request plus its TCP companion packets (ACKs): all cost
        // kernel processing, only the request reaches the application.
        for i in 0..self.app.rx_packets_per_request {
            let wire = if i == 0 { pkt } else { Packet::ack_on(&pkt) };
            let out = self.nic.enqueue_rx(q, wire, now);
            if out.accepted {
                self.nic_window_rx += 1;
                self.ledger.credit(Account::RxWireEnqueued, 1);
            } else {
                self.ledger.credit(Account::RxWireDropped, 1);
                if i == 0 {
                    self.ledger.credit(Account::RequestsDroppedAtNic, 1);
                }
            }
            if let Some(t) = out.irq_at {
                sim.schedule_at(t, move |w, sim| w.ev_irq_fire(sim, q));
            }
        }
    }

    fn ev_irq_fire(&mut self, sim: &mut Simulator<Testbed>, q: QueueId) {
        self.ev_counts[EvKind::IrqFire as usize] += 1;
        let now = sim.now();
        if !self.nic.irq_fired(q, now) {
            return; // vector masked while the IRQ was in flight
        }
        if self.faults.irq_lost(now, q.0) {
            // The vector fired but the core never saw it. The vector
            // stays unmasked, so the next enqueue re-arms it and the
            // stranded ring work is picked up then.
            return;
        }
        self.deliver_hardirq(sim, q);
    }

    /// Runs the hardirq delivery path on `q`'s core: mask the vector,
    /// wake the core (or preempt the running application chunk), and
    /// start the interrupt handler.
    fn deliver_hardirq(&mut self, sim: &mut Simulator<Testbed>, q: QueueId) {
        let now = sim.now();
        // The hardirq handler's first action: mask the vector (NAPI).
        self.nic.disable_irq(q, now);
        let core = CoreId(q.0);
        // A new interrupt chain starts: anchor the attribution marks.
        // Marks from older chains are already in the past, so the
        // ring-interval cursor clamps them to zero-length slices.
        self.marks[core.0].irq_at = Some(now);
        if self.core_idle[core.0] {
            let cost = self
                .processor
                .core_mut(core)
                .wake(now, &self.profile, &mut self.rng_wake);
            self.sleep.on_wake(core, now);
            self.core_idle[core.0] = false;
            self.idle_epoch[core.0] += 1; // kill pending sleep ticks
            self.exec[core.0].cache_debt += cost.cache_refill;
            // The wake transition ends after the PLL ramp plus the
            // cache-refill debt the next chunk will pay up front.
            self.marks[core.0].wake_end = Some(now + cost.latency + self.exec[core.0].cache_debt);
            if !cost.latency.is_zero() {
                // During the wake transition the core is not executing
                // (voltage/PLL ramp): it idles in CC0 until the
                // hardirq can run.
                sim.schedule_in(cost.latency, move |w, sim| w.begin_hardirq(sim, core, q));
                return;
            }
            self.begin_hardirq(sim, core, q);
            return;
        }
        // Preempt an in-flight application chunk (hardirq outranks
        // threads). Poll/HardIrq cannot be running here: the vector is
        // masked for their whole lifetime.
        if let Some(running) = self.exec[core.0].running.take() {
            match running.kind {
                RunKind::App { pkt } => {
                    self.attrib.app_pause(pkt.id.0, now);
                    sim.cancel(running.done_ev);
                    let remaining_wall = running.done_at.saturating_since(now);
                    let remaining_cycles = self
                        .processor
                        .core(core)
                        .duration_to_cycles(remaining_wall, &self.profile)
                        .max(1);
                    self.exec[core.0].preempted = Some(PreemptedApp {
                        pkt,
                        remaining_cycles,
                    });
                }
                _ => unreachable!("IRQ delivered while the vector owner was running"),
            }
        }
        self.begin_hardirq(sim, core, q);
    }

    /// Starts the interrupt handler on an awake, execution-free core.
    fn begin_hardirq(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, q: QueueId) {
        let cycles = self.stack.hardirq_cycles;
        self.start_exec(sim, core, RunKind::HardIrq { q }, cycles, SimDuration::ZERO);
    }

    // ------------------------------------------------------------------
    // Core execution machinery
    // ------------------------------------------------------------------

    /// Begins an execution chunk of `cycles` on `core`, optionally
    /// delayed by `extra_delay` (wake-up latency). Any pending CC6
    /// cache-refill debt is paid here.
    fn start_exec(
        &mut self,
        sim: &mut Simulator<Testbed>,
        core: CoreId,
        kind: RunKind,
        cycles: u64,
        extra_delay: SimDuration,
    ) {
        let now = sim.now();
        debug_assert!(
            self.exec[core.0].running.is_none(),
            "core already executing"
        );
        let debt = std::mem::replace(&mut self.exec[core.0].cache_debt, SimDuration::ZERO);
        {
            let c = self.processor.core_mut(core);
            c.set_busy(true, now, &self.profile);
            // Tag the energy meter with what this chunk is: hardirq
            // and NAPI poll cycles are kernel interrupt handling,
            // application chunks are app execution. The tag applies
            // from `now` forward (`set_busy` just closed the previous
            // segment under the old tag).
            let role = if matches!(kind, RunKind::App { .. }) {
                BusyRole::App
            } else {
                BusyRole::Irq
            };
            c.set_busy_role(role, now, &self.profile);
        }
        let work = self
            .processor
            .core(core)
            .cycles_to_duration(cycles, &self.profile);
        let stall = self
            .faults
            .exec_stall(now, core.0)
            .unwrap_or(SimDuration::ZERO);
        let dur = work + debt + extra_delay + stall;
        self.exec[core.0].seq += 1;
        let seq = self.exec[core.0].seq;
        let done_at = now + dur;
        let done_ev = sim.schedule_at(done_at, move |w, sim| w.ev_exec_done(sim, core, seq));
        self.exec[core.0].running = Some(Running {
            kind,
            seq,
            done_ev,
            done_at,
        });
    }

    fn ev_exec_done(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, seq: u64) {
        self.ev_counts[EvKind::ExecDone as usize] += 1;
        let Some(running) = self.exec[core.0].running.take() else {
            return;
        };
        if running.seq != seq {
            // Stale completion (superseded by preemption/rescale).
            self.exec[core.0].running = Some(running);
            return;
        }
        match running.kind {
            RunKind::HardIrq { q } => self.finish_hardirq(sim, core, q),
            RunKind::Poll { ctx, batch } => self.finish_poll(sim, core, ctx, batch),
            RunKind::App { pkt } => self.finish_app(sim, core, pkt),
        }
    }

    fn finish_hardirq(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, _q: QueueId) {
        let now = sim.now();
        self.marks[core.0].hardirq_end = Some(now);
        self.napi[core.0].on_irq(now);
        self.start_poll(sim, core, ProcContext::SoftIrq);
    }

    fn start_poll(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, ctx: ProcContext) {
        let now = sim.now();
        // The first ksoftirqd poll after a handoff/requeue closes the
        // scheduling-delay window; later batches of the same stint
        // leave it untouched so their ring time reads as ring wait.
        if ctx == ProcContext::Ksoftirqd && self.marks[core.0].ksoftirqd_running.is_none() {
            self.marks[core.0].ksoftirqd_running = Some(now);
        }
        let q = QueueId(core.0);
        let budget = match self.faults.poll_budget_clamp(now, core.0) {
            Some(b) => b.clamp(1, self.stack.napi_weight),
            None => self.stack.napi_weight,
        };
        let batch = self.nic.poll(q, budget);
        if AttribTracker::ENABLED {
            for pkt in &batch.rx {
                if pkt.kind == netsim::PacketKind::Request {
                    self.attrib.claimed(
                        pkt.id.0,
                        pkt.client_sent_at,
                        pkt.nic_rx_at,
                        now,
                        &self.marks[core.0],
                    );
                }
            }
        }
        let cycles = self
            .stack
            .poll_batch_cycles(batch.rx.len(), batch.tx_cleaned);
        self.start_exec(
            sim,
            core,
            RunKind::Poll { ctx, batch },
            cycles,
            SimDuration::ZERO,
        );
    }

    fn finish_poll(
        &mut self,
        sim: &mut Simulator<Testbed>,
        core: CoreId,
        ctx: ProcContext,
        batch: PollResult,
    ) {
        let now = sim.now();
        let q = QueueId(core.0);
        let rx_n = batch.rx.len();
        let tx_n = batch.tx_cleaned;
        self.ledger.credit(Account::RxWirePolled, rx_n as u64);
        self.ledger
            .credit(Account::TxCompletionsCleaned, tx_n as u64);
        // Deliver request packets to the socket backlog (ACK-class
        // packets end at the transport layer); the app thread wakes.
        // The admission policy gates delivery: a shed request never
        // reaches the backlog, its attribution entry stays pending
        // (neither measured nor attributed time is credited), and the
        // ledger closes it under `PacketsShed` so the request identity
        // stays integer-exact.
        let mut delivered = false;
        for pkt in batch.rx {
            if pkt.kind == netsim::PacketKind::Request {
                let sojourn = now.saturating_since(pkt.nic_rx_at);
                let depth = self.backlog[core.0].len();
                if !self.admission.admits(sojourn, depth)
                    && !self.faults.admission_bypassed(now, core.0)
                {
                    self.shed[core.0] += 1;
                    self.ledger.credit(Account::PacketsShed, 1);
                    continue;
                }
                self.attrib.delivered(pkt.id.0, now);
                self.backlog[core.0].push_back(pkt);
                self.ledger.credit(Account::RequestsDelivered, 1);
                delivered = true;
            }
        }
        if delivered {
            self.runqueues[core.0].make_runnable(TaskId::App(0));
        }
        // NAPI re-checks the rings after the poll.
        let drained = !self.nic.has_work(q);
        // Resched pending: a thread (the app worker) is waiting on
        // this core — §2.1's third handoff condition.
        let resched = !self.backlog[core.0].is_empty();
        let mode_before = self.napi[core.0].mode();
        let outcome = self.napi[core.0].record_poll(rx_n, tx_n, drained, resched, ctx, now);
        // `record_poll` is the only place the packet-processing mode
        // can flip: close the energy window under the mode it
        // belonged to, so joules-per-mode stays exact.
        if CoreEnergyMeter::ENABLED && self.napi[core.0].mode() != mode_before {
            self.flush_mode_energy(core.0, now, mode_before);
        }
        if let Some(observer) = self.poll_observer.as_mut() {
            observer(core, outcome.class, rx_n as u64, now);
        }
        let mut actions = std::mem::take(&mut self.actions);
        if self.faults.signal_suppressed(now, core.0) {
            // The mode-transition signal dies before the governor
            // sees it — the wedge NMAP's degradation watchdog covers.
        } else {
            self.last_poll_signal[core.0] = Some((outcome.class, rx_n as u64));
            self.governor
                .on_poll_batch(core, outcome.class, rx_n as u64, now, &mut actions);
        }
        self.apply_actions(sim, &mut actions, DecisionTrigger::PollBatch);
        self.actions = actions;

        match outcome.verdict {
            PollVerdict::Complete => {
                if self.faults.irq_mask_stuck(now, core.0) {
                    // NAPI's unmask write is lost: the vector stays
                    // masked until the fault scope ends (released by
                    // the boundary event).
                    self.stuck_masked[q.0] = true;
                } else if let Some(t) = self.nic.enable_irq(q, now) {
                    sim.schedule_at(t, move |w, sim| w.ev_irq_fire(sim, q));
                }
                if ctx == ProcContext::Ksoftirqd {
                    self.note_ksoftirqd(sim, core, false);
                    self.runqueues[core.0].block_current();
                }
                self.dispatch(sim, core);
            }
            PollVerdict::Continue => match ctx {
                ProcContext::SoftIrq => self.start_poll(sim, core, ctx),
                ProcContext::Ksoftirqd => {
                    if self.quantum_expired(core, now) {
                        // ksoftirqd waits for the scheduler again.
                        self.marks[core.0].ksoftirqd_queued = Some(now);
                        self.marks[core.0].ksoftirqd_running = None;
                        self.runqueues[core.0].requeue_current();
                        self.dispatch(sim, core);
                    } else {
                        self.start_poll(sim, core, ctx);
                    }
                }
            },
            PollVerdict::Handoff => {
                self.marks[core.0].ksoftirqd_queued = Some(now);
                self.marks[core.0].ksoftirqd_running = None;
                self.napi[core.0].ksoftirqd_takeover();
                self.note_ksoftirqd(sim, core, true);
                if let Some(delay) = self.faults.wake_delay(now, core.0) {
                    // The wakeup IPI is missed; a retry lands later.
                    sim.schedule_in(delay, move |w, sim| w.ev_fault_wake(sim, core));
                } else {
                    self.runqueues[core.0].make_runnable(TaskId::Ksoftirqd);
                }
                self.dispatch(sim, core);
            }
        }
    }

    fn note_ksoftirqd(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, awake: bool) {
        let now = sim.now();
        self.ksoftirqd_log[core.0].push(now, awake);
        let mut actions = std::mem::take(&mut self.actions);
        self.governor.on_ksoftirqd(core, awake, now, &mut actions);
        self.apply_actions(sim, &mut actions, DecisionTrigger::Ksoftirqd);
        self.actions = actions;
    }

    fn start_app_next(&mut self, sim: &mut Simulator<Testbed>, core: CoreId) {
        let pkt = self.backlog[core.0]
            .pop_front()
            .expect("start_app_next with empty backlog");
        self.trace.begin(
            sim.now(),
            simcore::TraceCategory::Request,
            core.0 as u32,
            "request",
            pkt.flow.0 as i64,
        );
        let cycles = self.app.sample_service_cycles(&mut self.rng_service);
        if AttribTracker::ENABLED {
            // Price the ideal service time at P0: whatever the chunk
            // takes beyond it (minus wake debt and preemption gaps) is
            // by definition P-state slowdown.
            let debt = self.exec[core.0].cache_debt;
            let f_max = self.profile.pstates.fastest_frequency();
            let ideal =
                SimDuration::from_nanos(((cycles as u128 * 1_000_000_000) / f_max as u128) as u64);
            self.attrib
                .app_start(pkt.id.0, core.0 as u32, sim.now(), debt, ideal);
        }
        self.start_exec(sim, core, RunKind::App { pkt }, cycles, SimDuration::ZERO);
    }

    fn finish_app(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, pkt: Packet) {
        let now = sim.now();
        self.attrib.app_finish(pkt.id.0, now);
        self.trace.end(
            now,
            simcore::TraceCategory::Request,
            core.0 as u32,
            "request",
            pkt.flow.0 as i64,
        );
        let resp = Packet::response_to(&pkt, self.app.response_size);
        self.ledger.credit(Account::RequestsCompleted, 1);
        let q = QueueId(core.0);
        let segments = self.app.tx_segments_per_response as usize;
        self.ledger
            .credit(Account::TxCompletionsQueued, segments as u64);
        if let Some(t) = self
            .nic
            .enqueue_tx_with_completions(q, &resp, segments, now)
        {
            sim.schedule_at(t, move |w, sim| w.ev_irq_fire(sim, q));
        }
        let delay = self.link.delay(&resp);
        self.wire_responses_in_flight += 1;
        sim.schedule_in(delay, move |w, sim| w.ev_client_recv(sim, resp));

        let more_work = !self.backlog[core.0].is_empty();
        if more_work && !self.quantum_expired(core, now) {
            self.start_app_next(sim, core);
            return;
        }
        if more_work {
            self.runqueues[core.0].requeue_current();
        } else {
            self.runqueues[core.0].block_current();
        }
        self.dispatch(sim, core);
    }

    fn quantum_expired(&self, core: CoreId, now: SimTime) -> bool {
        self.runqueues[core.0].len() > 1
            && now.saturating_since(self.exec[core.0].quantum_started) >= self.stack.sched_quantum
    }

    /// Picks what runs next on an execution-free core.
    fn dispatch(&mut self, sim: &mut Simulator<Testbed>, core: CoreId) {
        let now = sim.now();
        debug_assert!(self.exec[core.0].running.is_none());
        // A preempted application chunk resumes first: its task still
        // owns the thread slot.
        if let Some(pa) = self.exec[core.0].preempted.take() {
            self.attrib.app_resume(pa.pkt.id.0, now);
            self.start_exec(
                sim,
                core,
                RunKind::App { pkt: pa.pkt },
                pa.remaining_cycles,
                SimDuration::ZERO,
            );
            return;
        }
        loop {
            if self.runqueues[core.0].current().is_none() {
                if self.runqueues[core.0].pick_next().is_none() {
                    self.go_idle(sim, core);
                    return;
                }
                self.exec[core.0].quantum_started = now;
            }
            match self.runqueues[core.0].current().expect("just picked") {
                TaskId::App(_) => {
                    if self.backlog[core.0].is_empty() {
                        self.runqueues[core.0].block_current();
                        continue;
                    }
                    self.start_app_next(sim, core);
                    return;
                }
                TaskId::Ksoftirqd => {
                    if self.napi[core.0].is_active() && self.napi[core.0].ksoftirqd_running() {
                        self.start_poll(sim, core, ProcContext::Ksoftirqd);
                        return;
                    }
                    // Spurious wake (work already drained by softirq).
                    self.runqueues[core.0].block_current();
                    continue;
                }
            }
        }
    }

    fn go_idle(&mut self, sim: &mut Simulator<Testbed>, core: CoreId) {
        let now = sim.now();
        if self.core_idle[core.0] {
            return;
        }
        {
            let c = self.processor.core_mut(core);
            c.set_busy(false, now, &self.profile);
        }
        self.core_idle[core.0] = true;
        self.idle_since[core.0] = now;
        self.idle_epoch[core.0] += 1;
        let state = self.sleep.on_idle(core, now);
        if state.is_sleep() {
            self.processor
                .core_mut(core)
                .enter_sleep(state, now, &self.profile);
        }
        // cpuidle re-decides at scheduler ticks: a shallow pick can be
        // promoted once the idle proves long.
        let epoch = self.idle_epoch[core.0];
        sim.schedule_in(self.stack.jiffy, move |w, sim| {
            w.ev_sleep_tick(sim, core, epoch)
        });
    }

    fn ev_sleep_tick(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, epoch: u64) {
        self.ev_counts[EvKind::SleepTick as usize] += 1;
        if !self.core_idle[core.0] || self.idle_epoch[core.0] != epoch {
            return; // the core woke meanwhile
        }
        let now = sim.now();
        let elapsed = now.saturating_since(self.idle_since[core.0]);
        if let Some(state) = self.sleep.on_tick(core, elapsed, now) {
            if state > self.processor.core(core).cstate() {
                self.processor
                    .core_mut(core)
                    .enter_sleep(state, now, &self.profile);
            }
        }
        sim.schedule_in(self.stack.jiffy, move |w, sim| {
            w.ev_sleep_tick(sim, core, epoch)
        });
    }

    // ------------------------------------------------------------------
    // Governor plumbing
    // ------------------------------------------------------------------

    fn ev_sample_tick(&mut self, sim: &mut Simulator<Testbed>) {
        self.ev_counts[EvKind::SampleTick as usize] += 1;
        let now = sim.now();
        let mut actions = std::mem::take(&mut self.actions);
        for i in 0..self.processor.num_cores() {
            let core = CoreId(i);
            let sample = self
                .processor
                .core_mut(core)
                .take_sample(now, &self.profile);
            self.last_util[i] = (sample.c0_frac * 1000.0).round() as u32;
            self.governor
                .on_core_sample(core, sample, now, &mut actions);
        }
        self.apply_actions(sim, &mut actions, DecisionTrigger::Sample);
        let rx = std::mem::take(&mut self.nic_window_rx);
        self.governor.on_nic_window(rx, now, &mut actions);
        self.apply_actions(sim, &mut actions, DecisionTrigger::NicWindow);
        self.actions = actions;
        self.account_energy(now);
        let interval = self.governor.sampling_interval();
        sim.schedule_in(interval, |w, sim| w.ev_sample_tick(sim));
    }

    /// Telemetry-bus tick: reads one row of per-core gauges into the
    /// timeline sampler, then offers the read side to the governor.
    /// Strictly read-only against the simulation state — no RNG
    /// draws, no energy-integral advance, no sampling-window reset —
    /// so enabling the timeline cannot perturb the run's trajectory.
    /// Reschedules at the sampler's *current* interval, which doubles
    /// on every decimation, so the tick rate decays with the buffer.
    fn ev_timeline_tick(&mut self, sim: &mut Simulator<Testbed>) {
        self.ev_counts[EvKind::TimelineTick as usize] += 1;
        let now = sim.now();
        let mut row = std::mem::take(&mut self.timeline_row);
        row.clear();
        for i in 0..self.processor.num_cores() {
            let core = CoreId(i);
            let c = self.processor.core(core);
            let rx_ring = if i < self.nic.num_queues() {
                self.nic.rx_backlog(QueueId(i)) as i64
            } else {
                0
            };
            let mut flags = 0i64;
            if self.governor.core_degraded(core) {
                flags |= simcore::obs::timeseries::FLAG_DEGRADED;
            }
            if self.fault_scope_active(now, i) {
                flags |= simcore::obs::timeseries::FLAG_FAULT_ACTIVE;
            }
            row.extend_from_slice(&[
                self.last_util[i] as i64,
                c.pstate().index() as i64,
                (self.napi[i].mode() == NapiMode::Polling) as i64,
                rx_ring,
                self.backlog[i].len() as i64,
                self.watchdog.core_p99_ns(i) as i64,
                (c.current_power_w(&self.profile) * 1000.0).round() as i64,
                flags,
                self.saturation_permille(i) as i64,
            ]);
        }
        self.timeline.record_row(now, &row);
        self.timeline_row = row;
        // Hand adaptive governors the read side of the bus; classic
        // governors' default hook ignores it and returns no actions.
        let mut actions = std::mem::take(&mut self.actions);
        self.governor
            .on_telemetry(&self.timeline, now, &mut actions);
        self.apply_actions(sim, &mut actions, DecisionTrigger::Sample);
        self.actions = actions;
        let tick = self.timeline.interval();
        sim.schedule_in(tick, |w, sim| w.ev_timeline_tick(sim));
    }

    /// True if any configured fault scope covers `core` at `now`
    /// (the timeline's fault-active flag; always false without the
    /// `fault` feature).
    fn fault_scope_active(&self, now: SimTime, core: usize) -> bool {
        FaultInjector::ENABLED
            && self
                .faults
                .specs()
                .iter()
                .any(|s| s.scope.covers(now, Some(core)))
    }

    /// Per-sample energy bookkeeping: one RAPL interval read (clamped
    /// negative deltas are audited to zero), integer-µJ conservation
    /// ledger credits, and per-core cumulative energy counter tracks.
    /// Called right after `take_sample` has advanced every core's
    /// `f64` cursor to `now`, so the extra package read integrates a
    /// zero-length segment — bit-exact on the energy fixtures.
    fn account_energy(&mut self, now: SimTime) {
        let _ = self.rapl.read_interval(&mut self.processor, now);
        if !CoreEnergyMeter::ENABLED {
            return;
        }
        let measured = self.processor.package_energy_uj(now);
        let attributed = self.processor.attributed_package_energy_uj(now);
        self.ledger.credit(
            Account::EnergyMeasuredUj,
            measured.saturating_sub(self.energy_credited_measured_uj),
        );
        self.ledger.credit(
            Account::EnergyAttributedUj,
            attributed.saturating_sub(self.energy_credited_attributed_uj),
        );
        self.energy_credited_measured_uj = measured;
        self.energy_credited_attributed_uj = attributed;
        if self.trace.is_recording() {
            for i in 0..self.processor.num_cores() {
                let uj = self
                    .processor
                    .core_mut(CoreId(i))
                    .energy_uj(now, &self.profile);
                self.trace.counter(
                    now,
                    simcore::TraceCategory::Energy,
                    i as u32,
                    "energy-uj",
                    uj as i64,
                );
            }
        }
    }

    /// Snapshots the input features a governor decision acted on and
    /// records it in the flight recorder, emitting a `Gov`-track
    /// instant (arg = `from_pstate << 8 | to_pstate`).
    fn record_decision(
        &mut self,
        now: SimTime,
        core: CoreId,
        to: PState,
        trigger: DecisionTrigger,
        chip_wide: bool,
    ) {
        let from = self.processor.core(core).pstate().index() as u32;
        let queue_depth = if core.0 < self.nic.num_queues() {
            self.nic.rx_backlog(QueueId(core.0)) as u32
        } else {
            0
        };
        self.flight.record(GovDecision {
            at: now,
            core: core.0 as u32,
            trigger,
            util_permille: self.last_util[core.0],
            polling: self.napi[core.0].mode() == NapiMode::Polling,
            queue_depth,
            from_pstate: from,
            to_pstate: to.index() as u32,
            chip_wide,
        });
        self.trace.instant(
            now,
            simcore::TraceCategory::Gov,
            core.0 as u32,
            "gov-decision",
            ((from as i64) << 8) | to.index() as i64,
        );
    }

    fn apply_actions(
        &mut self,
        sim: &mut Simulator<Testbed>,
        actions: &mut Vec<Action>,
        trigger: DecisionTrigger,
    ) {
        let now = sim.now();
        for action in actions.drain(..) {
            match action {
                Action::SetCore(core, p) => {
                    self.trace.instant(
                        now,
                        simcore::TraceCategory::Governor,
                        core.0 as u32,
                        "set-pstate",
                        p.index() as i64,
                    );
                    self.record_decision(now, core, p, trigger, false);
                    self.request_pstate(sim, core, p);
                }
                Action::SetAll(p) => {
                    for i in 0..self.processor.num_cores() {
                        self.trace.instant(
                            now,
                            simcore::TraceCategory::Governor,
                            i as u32,
                            "set-pstate",
                            p.index() as i64,
                        );
                        self.record_decision(now, CoreId(i), p, trigger, true);
                        self.request_pstate(sim, CoreId(i), p);
                    }
                }
            }
        }
    }

    fn request_pstate(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, p: PState) {
        let now = sim.now();
        // Thermal throttling clamps too-fast requests to the floor.
        let p = PState::new(self.faults.clamp_pstate(now, p.index()));
        if let TransitionOutcome::Started {
            completes_at,
            token,
        } = self
            .processor
            .request_pstate(core, p, now, &mut self.rng_dvfs)
        {
            sim.schedule_at(completes_at, move |w, sim| w.ev_dvfs_done(sim, core, token));
        }
    }

    fn ev_dvfs_done(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, token: u64) {
        self.ev_counts[EvKind::DvfsDone as usize] += 1;
        let now = sim.now();
        let affected: Vec<CoreId> = match self.scope {
            DvfsScope::PerCore => vec![core],
            DvfsScope::ChipWide => (0..self.processor.num_cores()).map(CoreId).collect(),
        };
        let old_freqs: Vec<u64> = affected
            .iter()
            .map(|&c| self.processor.core(c).frequency_hz(&self.profile))
            .collect();
        match self
            .processor
            .complete_pstate(core, token, now, &mut self.rng_dvfs)
        {
            CompletionResult::Stale => return,
            CompletionResult::Settled { .. } => {}
            CompletionResult::FollowUp {
                completes_at,
                token: next_token,
                ..
            } => {
                sim.schedule_at(completes_at, move |w, sim| {
                    w.ev_dvfs_done(sim, core, next_token)
                });
            }
        }
        for (&c, &old) in affected.iter().zip(&old_freqs) {
            self.rescale_exec(sim, c, old);
        }
    }

    /// Re-times the in-flight execution chunk after a frequency change.
    fn rescale_exec(&mut self, sim: &mut Simulator<Testbed>, core: CoreId, old_freq: u64) {
        let now = sim.now();
        let new_freq = self.processor.core(core).frequency_hz(&self.profile);
        if new_freq == old_freq {
            return;
        }
        let Some(running) = self.exec[core.0].running.as_mut() else {
            return;
        };
        let remaining_wall = running.done_at.saturating_since(now);
        if remaining_wall.is_zero() {
            return;
        }
        let remaining_cycles =
            (remaining_wall.as_nanos() as u128 * old_freq as u128) / 1_000_000_000;
        let new_wall =
            SimDuration::from_nanos(((remaining_cycles * 1_000_000_000) / new_freq as u128) as u64);
        sim.cancel(running.done_ev);
        self.exec[core.0].seq += 1;
        let seq = self.exec[core.0].seq;
        let done_at = now + new_wall;
        let done_ev = sim.schedule_at(done_at, move |w, sim| w.ev_exec_done(sim, core, seq));
        let running = self.exec[core.0].running.as_mut().expect("checked above");
        running.seq = seq;
        running.done_ev = done_ev;
        running.done_at = done_at;
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// A fault-scope edge: recomputes every modal override from the
    /// set of scopes covering `now`. Idempotent, so overlapping scopes
    /// can each schedule their own boundary events.
    fn ev_fault_boundary(&mut self, sim: &mut Simulator<Testbed>) {
        self.ev_counts[EvKind::FaultBoundary as usize] += 1;
        let now = sim.now();
        self.nic.set_itr_override(self.faults.itr_override(now));
        self.nic
            .set_rx_capacity_clamp(self.faults.rx_ring_clamp(now));
        let padding = self.faults.dvfs_padding(now);
        self.processor.set_transition_padding(padding);
        let factor = self.faults.load_factor(now);
        if factor != self.load_factor_applied {
            self.load_factor_applied = factor;
            let spiked = LoadSpec::custom(
                self.base_load.avg_rps * factor,
                self.base_load.burst_period,
                self.base_load.duty,
                self.base_load.ramp_frac,
            );
            self.faults.note_load_switch(now);
            self.switch_load(sim, spiked);
        }
        // A stuck mask releases when its scope ends: the unmask write
        // finally lands, and buffered ring work re-arms the vector.
        for qi in 0..self.stuck_masked.len() {
            if !self.stuck_masked[qi] {
                continue;
            }
            let still_stuck = self.faults.specs().iter().any(|s| {
                matches!(s.kind, FaultKind::StuckIrqMask) && s.scope.covers(now, Some(qi))
            });
            if still_stuck {
                continue;
            }
            self.stuck_masked[qi] = false;
            let q = QueueId(qi);
            if let Some(t) = self.nic.enable_irq(q, now) {
                sim.schedule_at(t, move |w, sim| w.ev_irq_fire(sim, q));
            }
        }
    }

    /// Periodic fault chain: spurious IRQs and stale NAPI-signal
    /// replay, firing every `period` for the life of the scope.
    fn ev_fault_tick(&mut self, sim: &mut Simulator<Testbed>, spec: FaultSpec) {
        self.ev_counts[EvKind::FaultTick as usize] += 1;
        let now = sim.now();
        let period = match spec.kind {
            FaultKind::SpuriousIrq { period } | FaultKind::NapiSignalStuck { period } => period,
            _ => return,
        };
        if now >= spec.scope.end || period.is_zero() {
            return;
        }
        sim.schedule_in(period, move |w, sim| w.ev_fault_tick(sim, spec));
        let cores: Vec<usize> = match spec.scope.core {
            Some(c) if c < self.processor.num_cores() => vec![c],
            Some(_) => return,
            None => (0..self.processor.num_cores()).collect(),
        };
        match spec.kind {
            FaultKind::SpuriousIrq { .. } => {
                for c in cores {
                    self.fault_spurious_irq(sim, QueueId(c));
                }
            }
            FaultKind::NapiSignalStuck { .. } => {
                // Replay each core's *last* poll count as a polling-mode
                // claim even though no packets flow: the notification
                // path keeps insisting the core is mid-burst — the
                // stale-notification wedge NMAP's degradation watchdog
                // exists for.
                let mut actions = std::mem::take(&mut self.actions);
                for c in cores {
                    if let Some((_, rx)) = self.last_poll_signal[c] {
                        self.faults.note_signal_replayed(now, c);
                        self.governor.on_poll_batch(
                            CoreId(c),
                            PollClass::Polling,
                            rx.max(1),
                            now,
                            &mut actions,
                        );
                    }
                }
                self.apply_actions(sim, &mut actions, DecisionTrigger::PollBatch);
                self.actions = actions;
            }
            _ => {}
        }
    }

    /// Asserts one spurious IRQ on `q` if the vector could physically
    /// fire: unmasked, and its owner (hardirq/poll) not running.
    fn fault_spurious_irq(&mut self, sim: &mut Simulator<Testbed>, q: QueueId) {
        let now = sim.now();
        // Cores beyond the configured queue count own no IRQ vector.
        if q.0 >= self.nic.num_queues() || !self.nic.irq_enabled(q) {
            return;
        }
        let core = CoreId(q.0);
        let vector_busy = matches!(
            self.exec[core.0].running.as_ref().map(|r| &r.kind),
            Some(RunKind::HardIrq { .. }) | Some(RunKind::Poll { .. })
        );
        if vector_busy {
            return;
        }
        self.faults.note_spurious_irq(now, q.0);
        self.deliver_hardirq(sim, q);
    }

    /// The delayed ksoftirqd wakeup from a missed-wake fault lands.
    fn ev_fault_wake(&mut self, sim: &mut Simulator<Testbed>, core: CoreId) {
        self.ev_counts[EvKind::FaultWake as usize] += 1;
        if !(self.napi[core.0].is_active() && self.napi[core.0].ksoftirqd_running()) {
            return; // the stint ended through another path meanwhile
        }
        self.runqueues[core.0].make_runnable(TaskId::Ksoftirqd);
        if self.exec[core.0].running.is_some() || self.exec[core.0].preempted.is_some() {
            return; // the current chunk's completion will dispatch
        }
        if self.core_idle[core.0] {
            let now = sim.now();
            let cost = self
                .processor
                .core_mut(core)
                .wake(now, &self.profile, &mut self.rng_wake);
            self.sleep.on_wake(core, now);
            self.core_idle[core.0] = false;
            self.idle_epoch[core.0] += 1;
            self.exec[core.0].cache_debt += cost.cache_refill;
            if !cost.latency.is_zero() {
                sim.schedule_in(cost.latency, move |w, sim| {
                    if w.exec[core.0].running.is_none() && !w.core_idle[core.0] {
                        w.dispatch(sim, core);
                    }
                });
                return;
            }
        }
        self.dispatch(sim, core);
    }

    /// An incast burst: `requests` extra requests hit the wire
    /// back-to-back at the scope start.
    fn ev_fault_incast(&mut self, sim: &mut Simulator<Testbed>, requests: u32) {
        self.ev_counts[EvKind::FaultTick as usize] += 1;
        let now = sim.now();
        if now > self.send_horizon {
            return;
        }
        for _ in 0..requests {
            let pkt = self.client.build_request(now, &mut self.rng_client);
            self.ledger.credit(Account::RequestsSent, 1);
            self.wire_requests_in_flight += 1;
            self.faults.note_incast_request(now);
            let delay = self.link.delay(&pkt);
            sim.schedule_in(delay, move |w, sim| w.ev_server_rx(sim, pkt));
        }
    }

    /// Connection churn: the client's flow space rotates, remapping
    /// RSS placement. In-flight requests keep their old flow ids, as
    /// live connections would.
    fn ev_fault_churn(&mut self, sim: &mut Simulator<Testbed>, shift: u64) {
        self.ev_counts[EvKind::FaultTick as usize] += 1;
        self.client.churn_flows(shift);
        self.faults.note_flow_churn(sim.now());
    }

    // ------------------------------------------------------------------
    // Introspection for experiments
    // ------------------------------------------------------------------

    /// Current CC0-activity snapshot of a core (test helper).
    pub fn core_activity(&self, core: CoreId) -> CoreActivity {
        let c = self.processor.core(core);
        if c.is_busy() {
            CoreActivity::Busy
        } else {
            CoreActivity::idle_in(c.cstate())
        }
    }

    /// Total packets delivered to application backlogs still waiting.
    pub fn total_backlog(&self) -> usize {
        self.backlog.iter().map(|b| b.len()).sum()
    }

    /// Admission-queue saturation for one core, per mille of the
    /// bounded capacity (the configured admission limit, or
    /// [`REFERENCE_ADMISSION_CAP`] when the queue is unbounded so the
    /// signal stays comparable across policy-on and policy-off runs).
    /// Clamped to 1000.
    pub fn saturation_permille(&self, core: usize) -> u32 {
        let cap = self
            .admission
            .capacity()
            .unwrap_or(REFERENCE_ADMISSION_CAP)
            .max(1);
        let depth = self.backlog[core].len();
        ((depth * 1000) / cap).min(1000) as u32
    }

    /// The highest per-core admission-queue saturation, per mille —
    /// the up-coupled overload signal a fleet's load balancer reads.
    pub fn max_saturation_permille(&self) -> u32 {
        (0..self.backlog.len())
            .map(|i| self.saturation_permille(i))
            .max()
            .unwrap_or(0)
    }

    /// Requests shed by the admission policy so far, across all cores.
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Requests currently held by a core: executing as an app chunk or
    /// parked preempted. Each holds exactly one delivered request that
    /// is neither in a backlog nor completed.
    fn requests_in_execution(&self) -> u64 {
        self.exec
            .iter()
            .map(|e| {
                let running = matches!(
                    e.running.as_ref().map(|r| &r.kind),
                    Some(RunKind::App { .. })
                ) as u64;
                running + e.preempted.is_some() as u64
            })
            .sum()
    }

    /// Rx packets, request packets, and Tx cleanups claimed from the
    /// NIC by in-flight poll batches (between `start_poll` and
    /// `finish_poll`). The ring counters count them as polled the
    /// moment the batch is claimed; the ledger credits them only when
    /// the poll retires, so an audit taken mid-poll must count them
    /// where they sit.
    fn in_flight_poll(&self) -> (u64, u64, u64) {
        let mut rx = 0u64;
        let mut requests = 0u64;
        let mut tx = 0u64;
        for e in &self.exec {
            if let Some(RunKind::Poll { batch, .. }) = e.running.as_ref().map(|r| &r.kind) {
                rx += batch.rx.len() as u64;
                requests += batch
                    .rx
                    .iter()
                    .filter(|p| p.kind == netsim::PacketKind::Request)
                    .count() as u64;
                tx += batch.tx_cleaned as u64;
            }
        }
        (rx, requests, tx)
    }

    /// Evaluates every conservation identity the testbed maintains,
    /// valid at *any* simulation time (quantities still in flight are
    /// counted where they currently sit). Returns `None` when the
    /// `audit` feature is off and the ledger never counted.
    ///
    /// The identities cross-check two independent accounting paths:
    /// the event-path [`ledger`](Testbed::ledger) against each
    /// component's internal bookkeeping (NIC ring counters, NAPI
    /// per-mode totals, client statistics, and the incremental vs
    /// residency-ledger energy integrals).
    pub fn audit_report(&mut self, now: SimTime) -> Option<AuditReport> {
        if !ConservationLedger::ENABLED {
            return None;
        }
        let l = &self.ledger;
        let (poll_rx, poll_requests, poll_tx) = self.in_flight_poll();
        let mut report = AuditReport::new();

        // Wire-level Rx conservation, ledger vs NIC ring counters.
        report.check_exact(
            "rx wire: ledger enqueued == ring enqueued",
            l.balance(Account::RxWireEnqueued),
            self.nic.total_rx_enqueued(),
        );
        report.check_exact(
            "rx wire: ledger dropped == ring dropped",
            l.balance(Account::RxWireDropped),
            self.nic.total_rx_dropped(),
        );
        report.check_exact(
            "rx wire: ledger polled + in poll flight == ring polled",
            l.balance(Account::RxWirePolled) + poll_rx,
            self.nic.total_rx_polled(),
        );
        let rx_in_rings: u64 = (0..self.nic.num_queues())
            .map(|q| self.nic.rx_backlog(QueueId(q)) as u64)
            .sum();
        report.check_exact(
            "rx wire: enqueued == polled + in poll flight + in rings",
            l.balance(Account::RxWireEnqueued),
            l.balance(Account::RxWirePolled) + poll_rx + rx_in_rings,
        );

        // Request-level conservation through the whole server.
        report.check_exact(
            "requests: ledger nic drops == kind-aware ring drops",
            l.balance(Account::RequestsDroppedAtNic),
            self.nic.total_rx_req_dropped(),
        );
        report.check_exact(
            "requests: arrived == dropped + in rings + in poll flight + shed + delivered",
            l.balance(Account::RequestsArrivedAtNic),
            l.balance(Account::RequestsDroppedAtNic)
                + self.nic.total_rx_backlog_requests()
                + poll_requests
                + l.balance(Account::PacketsShed)
                + l.balance(Account::RequestsDelivered),
        );
        report.check_exact(
            "requests: ledger shed == admission shed counters",
            l.balance(Account::PacketsShed),
            self.shed.iter().sum::<u64>(),
        );
        report.check_exact(
            "requests: delivered == backlog + executing + completed",
            l.balance(Account::RequestsDelivered),
            self.total_backlog() as u64
                + self.requests_in_execution()
                + l.balance(Account::RequestsCompleted),
        );

        // Client accounting: ledger vs the client's own counters.
        report.check_exact(
            "client: ledger sent == client sent",
            l.balance(Account::RequestsSent),
            self.client.sent(),
        );
        report.check_exact(
            "client: ledger responses == client received",
            l.balance(Account::ResponsesReceived),
            self.client.received(),
        );
        report.check_exact(
            "latency: one sample per response",
            l.balance(Account::LatencySamples),
            l.balance(Account::ResponsesReceived),
        );
        report.check_exact(
            "latency: measured samples == client histogram",
            l.balance(Account::LatencySamples) - self.measure_start_samples,
            self.client.latencies().len() as u64,
        );

        // Tx completion descriptors (overflowed descriptors lose only
        // bookkeeping, so they sit in the ring drop counter).
        let tx_in_rings: u64 = (0..self.nic.num_queues())
            .map(|q| self.nic.tx_backlog(QueueId(q)) as u64)
            .sum();
        report.check_exact(
            "tx completions: queued == cleaned + in poll flight + in rings + dropped",
            l.balance(Account::TxCompletionsQueued),
            l.balance(Account::TxCompletionsCleaned)
                + poll_tx
                + tx_in_rings
                + self.nic.total_tx_dropped(),
        );

        // NAPI per-mode totals must cover exactly the polled packets.
        let napi_packets: u64 = self
            .napi
            .iter()
            .map(|n| n.total_interrupt_packets() + n.total_polling_packets())
            .sum();
        report.check_exact(
            "napi: per-mode packet totals == polled packets",
            napi_packets,
            l.balance(Account::RxWirePolled),
        );

        // Latency attribution: every completed request's stage sums
        // must equal its measured end-to-end latency, and the two
        // ledger totals (measured at the client vs attributed by the
        // profiler) must agree to the nanosecond. Only meaningful when
        // the obs feature actually tracks requests.
        if AttribTracker::ENABLED {
            report.check_exact(
                "attrib: no per-request stage-sum mismatches",
                self.attrib.mismatches(),
                0,
            );
            report.check_exact(
                "attrib: attributed nanoseconds == measured nanoseconds",
                l.balance(Account::LatencyNanosAttributed),
                l.balance(Account::LatencyNanosMeasured),
            );
        }

        // Fault-injected packet loss: explicitly accounted. The wire
        // itself conserves — everything sent either arrived, was
        // dropped by a fault, or is still flying — and the ledger's
        // fault accounts must agree with the injector's own counters.
        report.check_exact(
            "faults: request + response drops == packets fault-dropped",
            l.balance(Account::RequestsFaultDropped) + l.balance(Account::ResponsesFaultDropped),
            l.balance(Account::PacketsFaultDropped),
        );
        report.check_exact(
            "faults: ledger fault drops == injector wire-drop count",
            l.balance(Account::PacketsFaultDropped),
            self.faults.stats().wire_dropped(),
        );
        report.check_exact(
            "wire: requests sent == arrived + fault-dropped + in flight",
            l.balance(Account::RequestsSent),
            l.balance(Account::RequestsArrivedAtNic)
                + l.balance(Account::RequestsFaultDropped)
                + self.wire_requests_in_flight,
        );
        report.check_exact(
            "wire: responses completed == received + fault-dropped + in flight",
            l.balance(Account::RequestsCompleted),
            l.balance(Account::ResponsesReceived)
                + l.balance(Account::ResponsesFaultDropped)
                + self.wire_responses_in_flight,
        );

        // Energy: incremental integral vs the residency-ledger
        // recomputation (different summation order → tolerance).
        let direct = self.processor.package_energy_joules(now);
        let audited = self
            .processor
            .audited_package_energy_joules(now)
            .expect("audit feature is enabled");
        report.check_close(
            "energy: incremental == residency ledger",
            direct,
            audited,
            1e-6,
        );

        // Integer-exact energy attribution: every measured microjoule
        // lands in exactly one component, on every core, and the
        // packet-processing-mode split partitions the same total.
        if CoreEnergyMeter::ENABLED {
            for i in 0..self.processor.num_cores() {
                let mode = self.napi[i].mode();
                self.flush_mode_energy(i, now, mode);
            }
            let mut core_measured = 0u64;
            let mut core_attributed = 0u64;
            for i in 0..self.processor.num_cores() {
                let c = self.processor.core_mut(CoreId(i));
                let uj = c.energy_uj(now, &self.profile);
                let total = c.energy_breakdown(now, &self.profile).total_uj();
                report.check_exact(
                    &format!("energy: core {i} measured µJ == attributed µJ"),
                    uj,
                    total,
                );
                core_measured += uj;
                core_attributed += total;
            }
            let uncore = self.processor.uncore_uj(now);
            report.check_exact(
                "energy: package measured µJ == attributed µJ",
                core_measured + uncore,
                core_attributed + uncore,
            );
            report.check_exact(
                "energy: interrupt + polling + transition µJ == core measured µJ",
                self.mode_interrupt_uj + self.mode_polling_uj + self.mode_transition_uj,
                core_measured,
            );
            // The ledger totals lag the live cursors by at most one
            // sampling window; settle them before comparing.
            self.account_energy(now);
            report.check_exact(
                "energy: ledger measured µJ == ledger attributed µJ",
                self.ledger.balance(Account::EnergyMeasuredUj),
                self.ledger.balance(Account::EnergyAttributedUj),
            );
            report.check_exact(
                "energy: ledger measured µJ == package measured µJ",
                self.ledger.balance(Account::EnergyMeasuredUj),
                core_measured + uncore,
            );
            // The integer meter and the f64 integral are independent
            // accumulations of the same power model; the meters carry
            // their rounding remainder, so the divergence is bounded
            // *absolutely* — half a microjoule per core plus the
            // uncore's truncation — no matter how short the run. Fold
            // that bound into the relative tolerance so small-energy
            // windows (where a few µJ exceed 1e-6 relative) still
            // audit against the real guarantee.
            let f64_uj = direct * 1e6;
            let slack_uj = 0.5 * self.processor.num_cores() as f64 + 1.0;
            let tolerance = (slack_uj / f64_uj.max(1.0)).max(1e-6);
            report.check_close(
                "energy: integer µJ integral tracks the f64 integral",
                (core_measured + uncore) as f64,
                f64_uj,
                tolerance,
            );
        }
        report.check_exact("energy: rapl clamp events", self.rapl.clamp_events(), 0);

        Some(report)
    }

    // ------------------------------------------------------------------
    // Observability (trace + metrics collection)
    // ------------------------------------------------------------------

    /// Replays every component's event logs into the testbed's trace
    /// buffer: NIC IRQ marks, NAPI mode residency and poll batches,
    /// per-core P-/C-state residency, ksoftirqd run intervals, and
    /// governor-internal marks. Request spans and governor actions were
    /// already emitted live during the run. Call once, at run end.
    /// No-op unless the `obs` feature is on and the buffer is
    /// recording.
    pub fn collect_trace(&mut self, end: SimTime) {
        use simcore::TraceCategory;
        if !self.trace.is_recording() {
            return;
        }
        // Replay the bounded component logs into a fresh buffer first,
        // then absorb the (potentially huge) live stream: if anything
        // overflows the capacity it is the live request/governor tail,
        // never the pstate/cstate/ksoftirqd summary tracks.
        let live = std::mem::take(&mut self.trace);
        let mut buf = simcore::TraceBuffer::with_capacity(live.capacity());
        self.nic.trace_into(&mut buf);
        for (i, napi) in self.napi.iter().enumerate() {
            napi.trace_into(i as u32, end, &mut buf);
        }
        self.processor.trace_into(end, &mut buf);
        self.governor.trace_into(&mut buf);
        // End-of-run energy attribution totals: one counter per
        // component per core on the `energy` track (the live stream
        // already carries the cumulative per-core µJ counters).
        if CoreEnergyMeter::ENABLED {
            for i in 0..self.processor.num_cores() {
                let b = self
                    .processor
                    .core_mut(CoreId(i))
                    .energy_breakdown(end, &self.profile);
                for (component, uj) in b.iter() {
                    buf.counter(
                        end,
                        TraceCategory::Energy,
                        i as u32,
                        component.label(),
                        uj as i64,
                    );
                }
            }
        }
        for &(t, label, core) in self.faults.log() {
            buf.instant(t, TraceCategory::Fault, core, label, 0);
        }
        // Telemetry timeline rows become one counter track per core
        // per gauge on the `timeline` category (Perfetto renders
        // these as counter tracks alongside the span tracks).
        if self.timeline.is_recording() {
            let tl = self.timeline.finish();
            for r in 0..tl.rows() {
                let t = SimTime::from_nanos(tl.times_ns[r]);
                for c in 0..tl.cores as usize {
                    for g in simcore::Gauge::ALL {
                        if let Some(v) = tl.value(r, c, g) {
                            buf.counter(t, TraceCategory::Timeline, c as u32, g.label(), v);
                        }
                    }
                }
            }
        }
        // ksoftirqd wake/sleep marks pair up into run-interval spans;
        // a thread still awake at run end closes at `end`.
        for (core, log) in self.ksoftirqd_log.iter().enumerate() {
            let mut open: Option<SimTime> = None;
            for &(t, awake) in log.entries() {
                match (awake, open) {
                    (true, None) => open = Some(t),
                    (false, Some(start)) => {
                        buf.begin(start, TraceCategory::Ksoftirqd, core as u32, "ksoftirqd", 0);
                        buf.end(t, TraceCategory::Ksoftirqd, core as u32, "ksoftirqd", 0);
                        open = None;
                    }
                    _ => {}
                }
            }
            if let Some(start) = open {
                buf.begin(start, TraceCategory::Ksoftirqd, core as u32, "ksoftirqd", 0);
                buf.end(end, TraceCategory::Ksoftirqd, core as u32, "ksoftirqd", 0);
            }
        }
        buf.absorb(live);
        self.trace = buf;
    }

    /// Gathers every component's totals into the testbed's metrics
    /// registry (NIC, NAPI, processor, governor, client, per-kind
    /// event counts). Call once, at run end. No-op without the `obs`
    /// feature.
    pub fn collect_metrics(&mut self, now: SimTime) {
        if !simcore::MetricsRegistry::ENABLED {
            return;
        }
        let mut m = std::mem::take(&mut self.metrics);
        self.nic.record_metrics(&mut m);
        for napi in &self.napi {
            napi.record_metrics(&mut m);
        }
        self.processor.record_metrics(now, &mut m);
        self.governor.record_metrics(&mut m);
        m.set_counter("client.sent", self.client.sent());
        m.set_counter("client.received", self.client.received());
        m.set_counter(
            "ksoftirqd.wakes",
            self.ksoftirqd_log
                .iter()
                .map(|l| l.iter().filter(|&&(_, awake)| awake).count() as u64)
                .sum(),
        );
        for kind in EvKind::ALL {
            m.set_counter(kind.key(), self.ev_counts[kind as usize]);
        }
        let d = self.governor.degradation();
        m.set_counter("governor.degradations", d.degradations);
        m.set_counter("governor.recoveries", d.recoveries);
        m.set_counter("governor.degraded_cores", d.degraded_cores);
        if FaultInjector::ENABLED {
            let f = self.faults.stats();
            m.set_counter("fault.total", f.total());
            m.set_counter("fault.wire_requests_dropped", f.wire_requests_dropped);
            m.set_counter("fault.wire_responses_dropped", f.wire_responses_dropped);
            m.set_counter("fault.irqs_lost", f.irqs_lost);
            m.set_counter("fault.spurious_irqs", f.spurious_irqs);
            m.set_counter("fault.irq_unmasks_blocked", f.irq_unmasks_blocked);
            m.set_counter("fault.wakes_delayed", f.wakes_delayed);
            m.set_counter("fault.signals_suppressed", f.signals_suppressed);
            m.set_counter("fault.signals_replayed", f.signals_replayed);
            m.set_counter("fault.polls_clamped", f.polls_clamped);
            m.set_counter("fault.dvfs_delays", f.dvfs_delays);
            m.set_counter("fault.pstate_clamps", f.pstate_clamps);
            m.set_counter("fault.exec_stalls", f.exec_stalls);
            m.set_counter("fault.load_switches", f.load_switches);
            m.set_counter("fault.incast_requests", f.incast_requests);
            m.set_counter("fault.flow_churns", f.flow_churns);
            m.set_counter("fault.admission_bypasses", f.admission_bypasses);
        }
        m.set_counter("admission.shed", self.total_shed());
        m.set_counter("attrib.requests", self.attrib.requests());
        m.set_counter("attrib.mismatches", self.attrib.mismatches());
        m.set_counter("attrib.pending", self.attrib.pending());
        if CoreEnergyMeter::ENABLED {
            let mut package = simcore::EnergyBreakdown::default();
            let mut measured = 0u64;
            for i in 0..self.processor.num_cores() {
                let c = self.processor.core_mut(CoreId(i));
                measured += c.energy_uj(now, &self.profile);
                package = package.merged(&c.energy_breakdown(now, &self.profile));
            }
            let uncore = self.processor.uncore_uj(now);
            package.add_uj(simcore::EnergyComponent::Uncore, uncore);
            m.set_counter("energy.measured_uj", measured + uncore);
            for (component, uj) in package.iter() {
                m.set_counter(component.metric_key(), uj);
            }
            m.set_counter("energy.mode_interrupt_uj", self.mode_interrupt_uj);
            m.set_counter("energy.mode_polling_uj", self.mode_polling_uj);
            m.set_counter("energy.mode_transition_uj", self.mode_transition_uj);
            m.set_counter("gov.decisions", self.flight.total());
            m.set_counter("gov.decisions_evicted", self.flight.evicted());
        }
        m.set_counter("rapl.clamp_events", self.rapl.clamp_events());
        let wd = self.watchdog.report(now);
        m.set_counter("slo.samples", wd.samples);
        m.set_counter("slo.episodes", wd.episodes as u64);
        m.set_counter("slo.violation_ns", wd.total_violation_ns);
        m.set_counter("slo.mean_detect_ns", wd.mean_detect_ns);
        m.set_counter("slo.mean_recover_ns", wd.mean_recover_ns);
        m.set_counter("trace.events", self.trace.len() as u64);
        m.set_counter("trace.dropped", self.trace.dropped());
        m.set_counter("timeline.samples", self.timeline.rows() as u64);
        m.set_counter("timeline.decimations", self.timeline.decimations());
        m.set_counter("timeline.dropped", self.timeline.dropped());
        self.metrics = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::{MenuPolicy, Ondemand, Performance};

    fn small_load(rps: f64) -> LoadSpec {
        LoadSpec::custom(rps, SimDuration::from_millis(100), 0.4, 0.3)
    }

    fn build(rps: f64, governor: Box<dyn PStateGovernor>) -> (Simulator<Testbed>, Testbed) {
        let cfg = TestbedConfig::new(AppModel::memcached(), small_load(rps)).with_seed(123);
        let cores = cfg.profile.cores;
        let mut sim = Simulator::new();
        let tb = Testbed::new(cfg, governor, Box::new(MenuPolicy::new(cores)), &mut sim);
        (sim, tb)
    }

    #[test]
    fn requests_flow_end_to_end() {
        let (mut sim, mut tb) = build(20_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(300));
        assert!(tb.client.sent() > 1_000, "sent {}", tb.client.sent());
        assert!(
            tb.client.received() as f64 > 0.95 * tb.client.sent() as f64,
            "received {} of {}",
            tb.client.received(),
            tb.client.sent()
        );
    }

    #[test]
    fn latencies_are_physical() {
        let (mut sim, mut tb) = build(20_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(300));
        // Minimum possible: 2 link traversals (~40 µs) + processing.
        let min = tb.client.latencies_mut().quantile(0.0);
        assert!(
            min >= 40_000,
            "min latency {min} ns below the physical floor"
        );
        let p50 = tb.client.latencies_mut().quantile(0.5);
        assert!(
            p50 < 1_000_000,
            "p50 {p50} ns should be well under 1 ms at this load"
        );
    }

    #[test]
    fn performance_governor_reaches_p0() {
        let (mut sim, mut tb) = build(20_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(100));
        for c in tb.processor.cores() {
            assert_eq!(c.pstate(), PState::P0);
        }
    }

    #[test]
    fn ondemand_tracks_load() {
        let table = ProcessorProfile::xeon_gold_6134().pstates;
        let (mut sim, mut tb) = build(20_000.0, Box::new(Ondemand::new(table, 8)));
        sim.run_until(&mut tb, SimTime::from_secs(1));
        // Low load: cores should not be pinned at P0.
        let p0_cores = tb
            .processor
            .cores()
            .iter()
            .filter(|c| c.pstate() == PState::P0)
            .count();
        assert!(
            p0_cores < 8,
            "ondemand pinned everything at P0 under low load"
        );
        assert!(tb.client.received() > 0);
    }

    #[test]
    fn napi_counters_advance() {
        let (mut sim, mut tb) = build(100_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(500));
        let intr: u64 = tb.napi.iter().map(|n| n.total_interrupt_packets()).sum();
        let poll: u64 = tb.napi.iter().map(|n| n.total_polling_packets()).sum();
        assert!(intr > 0, "some packets must be processed in interrupt mode");
        assert!(
            intr + poll >= tb.client.received(),
            "every delivered request passed through NAPI"
        );
    }

    #[test]
    fn energy_accrues_and_measurement_window_works() {
        let (mut sim, mut tb) = build(20_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(100));
        tb.begin_measurement(sim.now());
        assert_eq!(
            tb.client.latencies().len(),
            0,
            "stats reset at measurement start"
        );
        sim.run_until(&mut tb, SimTime::from_millis(400));
        let e = tb.measured_energy(sim.now());
        assert!(e > 0.0);
        let d = tb.measured_duration(sim.now());
        assert_eq!(d, SimDuration::from_millis(300));
        // Power must be within physical bounds (idle..TDP-ish).
        let w = e / d.as_secs_f64();
        assert!((1.0..200.0).contains(&w), "implausible package power {w} W");
    }

    #[test]
    fn cores_sleep_between_bursts() {
        let (mut sim, mut tb) = build(5_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_secs(1));
        let c6: u64 = tb.processor.cores().iter().map(|c| c.c6_entries()).sum();
        assert!(c6 > 0, "menu must reach CC6 during idle gaps");
    }

    #[test]
    fn no_packets_lost_at_modest_load() {
        let (mut sim, mut tb) = build(50_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(500));
        assert_eq!(tb.nic.total_rx_dropped(), 0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let (mut sim, mut tb) = build(30_000.0, Box::new(Performance::new()));
            sim.run_until(&mut tb, SimTime::from_millis(400));
            (
                tb.client.sent(),
                tb.client.received(),
                tb.client.latencies_mut().quantile(0.99),
            )
        };
        assert_eq!(run(), run());
    }

    #[cfg(feature = "audit")]
    #[test]
    fn conservation_holds_mid_run_and_after_drain() {
        let (mut sim, mut tb) = build(80_000.0, Box::new(Performance::new()));
        // Mid-run: packets are in flight everywhere, yet every identity
        // must still balance.
        sim.run_until(&mut tb, SimTime::from_millis(40));
        tb.begin_measurement(sim.now());
        sim.run_until(&mut tb, SimTime::from_millis(150));
        tb.audit_report(sim.now())
            .expect("audit enabled")
            .assert_balanced();
        // After drain: stop sends and let the pipeline empty.
        tb.stop_sends_at(sim.now());
        sim.run_until(&mut tb, SimTime::from_millis(400));
        let report = tb.audit_report(sim.now()).expect("audit enabled");
        report.assert_balanced();
        assert!(report.checks.len() >= 10, "audit must cover the full stack");
    }

    #[cfg(feature = "audit")]
    #[test]
    fn conservation_holds_under_ring_overflow() {
        // Tiny rings + heavy load force Rx tail drops; the dropped
        // packets must land in the drop accounts, not vanish.
        let table = ProcessorProfile::xeon_gold_6134().pstates;
        let slowest = table.slowest();
        let (mut sim, mut tb) = build(600_000.0, Box::new(governors::Userspace::new(slowest)));
        sim.run_until(&mut tb, SimTime::from_millis(200));
        tb.audit_report(sim.now())
            .expect("audit enabled")
            .assert_balanced();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attribution_covers_every_response_exactly() {
        let (mut sim, mut tb) = build(50_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(300));
        assert!(tb.client.received() > 1_000);
        assert_eq!(
            tb.attrib.requests(),
            tb.client.received(),
            "every response must close an attribution"
        );
        assert_eq!(tb.attrib.mismatches(), 0, "stage sums must equal e2e");
        let summary = tb.attrib.summary();
        assert_eq!(summary.attributed_total_ns, summary.e2e_total_ns);
        let service = summary.stage(simcore::Stage::AppService).unwrap();
        assert!(service.sum_ns > 0, "service time must be attributed");
        let wire = summary.stage(simcore::Stage::Wire).unwrap();
        assert!(wire.sum_ns > 0, "wire time must be attributed");
    }

    #[cfg(all(feature = "obs", feature = "audit"))]
    #[test]
    fn attribution_balances_under_ksoftirqd_overload() {
        // The slowest-pinned overload path exercises preemption,
        // handoff, and ksoftirqd claims — the sums must still be
        // exact for every request.
        let table = ProcessorProfile::xeon_gold_6134().pstates;
        let slowest = table.slowest();
        let (mut sim, mut tb) = build(600_000.0, Box::new(governors::Userspace::new(slowest)));
        sim.run_until(&mut tb, SimTime::from_millis(200));
        assert_eq!(tb.attrib.mismatches(), 0);
        tb.audit_report(sim.now())
            .expect("audit enabled")
            .assert_balanced();
        let summary = tb.attrib.summary();
        let ksoft = summary.stage(simcore::Stage::KsoftirqdSched).unwrap();
        let ring = summary.stage(simcore::Stage::RingWait).unwrap();
        assert!(
            ksoft.sum_ns + ring.sum_ns > 0,
            "overload must surface kernel-side queueing stages"
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn energy_attribution_is_integer_exact() {
        let (mut sim, mut tb) = build(80_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(50));
        tb.begin_measurement(sim.now());
        sim.run_until(&mut tb, SimTime::from_millis(300));
        let end = sim.now();
        let summary = tb.energy_summary(end);
        // Conservation: every measured microjoule is attributed, per
        // core and for the package.
        assert_eq!(summary.measured_total_uj(), summary.attributed_total_uj());
        for c in &summary.cores {
            assert_eq!(c.measured_uj, c.breakdown.total_uj(), "core {}", c.core);
        }
        // The mode split partitions the same core energy.
        let core_total: u64 = summary.cores.iter().map(|c| c.measured_uj).sum();
        assert_eq!(summary.modes.total_uj(), core_total);
        assert_eq!(summary.rapl_clamps, 0);
        // This load runs requests, burns idle time, and sleeps —
        // the big components must all be populated.
        use simcore::EnergyComponent as E;
        assert!(summary.component_uj(E::Uncore) > 0);
        assert!(summary.component_uj(E::Irq) > 0, "kernel burn attributed");
        assert!(summary.component_uj(E::IdleC0) > 0);
        let busy_app: u64 = [E::BusyP0, E::BusyHigh, E::BusyLow, E::BusyPmin]
            .iter()
            .map(|&c| summary.component_uj(c))
            .sum();
        assert!(busy_app > 0, "app execution attributed");
        // The integer meter must track the f64 integral closely.
        let f64_uj = tb.measured_energy(end) * 1e6;
        let int_uj = summary.measured_total_uj() as f64;
        assert!(
            (f64_uj - int_uj).abs() / f64_uj < 1e-3,
            "f64 {f64_uj} vs integer {int_uj}"
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn flight_recorder_captures_governor_decisions() {
        let table = ProcessorProfile::xeon_gold_6134().pstates;
        let (mut sim, mut tb) = build(50_000.0, Box::new(Ondemand::new(table, 8)));
        sim.run_until(&mut tb, SimTime::from_millis(500));
        let flight = tb.flight_summary();
        assert!(flight.total > 0, "ondemand must have made decisions");
        assert!(flight.raises + flight.lowers <= flight.total);
        assert!(
            flight.trigger_count(simcore::DecisionTrigger::Sample) > 0,
            "ondemand decides on sampling ticks"
        );
        // Every retained decision carries its feature snapshot.
        assert!(!flight.decisions.is_empty());
        for d in &flight.decisions {
            assert!(d.util_permille <= 1000);
            assert!(d.to_pstate < 16);
        }
        let by_trigger_sum: u64 = flight.by_trigger.iter().sum();
        assert_eq!(by_trigger_sum, flight.total);
    }

    #[test]
    fn watchdog_sees_every_sample() {
        let (mut sim, mut tb) = build(30_000.0, Box::new(Performance::new()));
        sim.run_until(&mut tb, SimTime::from_millis(300));
        let r = tb.watchdog.report(sim.now());
        assert_eq!(r.samples, tb.client.received());
        assert_eq!(r.episodes, 0, "performance at low load must hold the SLO");
    }

    #[test]
    fn watchdog_flags_overload_episode() {
        let table = ProcessorProfile::xeon_gold_6134().pstates;
        let slowest = table.slowest();
        let (mut sim, mut tb) = build(600_000.0, Box::new(governors::Userspace::new(slowest)));
        sim.run_until(&mut tb, SimTime::from_millis(300));
        let r = tb.watchdog.report(sim.now());
        assert!(r.episodes >= 1, "powersave overload must violate the SLO");
        assert!(r.total_violation_ns > 0);
        assert_ne!(r.first_detect_ns, u64::MAX);
    }

    #[cfg(feature = "fault")]
    fn build_faulty(rps: f64, plan: FaultPlan) -> (Simulator<Testbed>, Testbed) {
        let cfg = TestbedConfig::new(AppModel::memcached(), small_load(rps))
            .with_seed(123)
            .with_fault_plan(plan);
        let cores = cfg.profile.cores;
        let mut sim = Simulator::new();
        let tb = Testbed::new(
            cfg,
            Box::new(Performance::new()),
            Box::new(MenuPolicy::new(cores)),
            &mut sim,
        );
        (sim, tb)
    }

    #[cfg(all(feature = "fault", feature = "audit"))]
    #[test]
    fn wire_drops_are_explicitly_accounted() {
        use simcore::FaultScope;
        let plan = FaultPlan::new().inject(
            FaultKind::WireDrop { prob: 0.2 },
            FaultScope::window(SimTime::from_millis(50), SimTime::from_millis(250)),
        );
        let (mut sim, mut tb) = build_faulty(40_000.0, plan);
        // Mid-run, with drops and packets in flight, every identity
        // must already balance.
        sim.run_until(&mut tb, SimTime::from_millis(150));
        tb.audit_report(sim.now()).unwrap().assert_balanced();
        sim.run_until(&mut tb, SimTime::from_millis(300));
        tb.stop_sends_at(sim.now());
        sim.run_until(&mut tb, SimTime::from_millis(600));
        let report = tb.audit_report(sim.now()).unwrap();
        report.assert_balanced();
        let dropped = tb.ledger.balance(Account::PacketsFaultDropped);
        assert!(dropped > 0, "a 20% drop window must lose packets");
        assert_eq!(dropped, tb.faults.stats().wire_dropped());
        assert!(tb.client.received() < tb.client.sent());
    }

    #[cfg(all(feature = "fault", feature = "audit"))]
    #[test]
    fn stuck_irq_mask_wedges_then_recovers() {
        use simcore::FaultScope;
        let plan = FaultPlan::new().inject(
            FaultKind::StuckIrqMask,
            FaultScope::window(SimTime::from_millis(50), SimTime::from_millis(120)),
        );
        let (mut sim, mut tb) = build_faulty(40_000.0, plan);
        sim.run_until(&mut tb, SimTime::from_millis(300));
        tb.stop_sends_at(sim.now());
        sim.run_until(&mut tb, SimTime::from_millis(600));
        tb.audit_report(sim.now()).unwrap().assert_balanced();
        assert!(
            tb.faults.stats().irq_unmasks_blocked > 0,
            "the unmask write must have been lost at least once"
        );
        // Once the scope releases the mask, everything drains: no
        // request is permanently lost to the wedged vector.
        assert_eq!(
            tb.ledger.balance(Account::RequestsSent),
            tb.client.received() + tb.ledger.balance(Account::RequestsDroppedAtNic),
            "wedge must only lose requests to counted ring overflow"
        );
    }

    #[cfg(feature = "fault")]
    #[test]
    fn fault_injection_is_deterministic() {
        use simcore::FaultScope;
        let plan = || {
            FaultPlan::new()
                .with_seed(99)
                .inject(
                    FaultKind::WireDrop { prob: 0.1 },
                    FaultScope::window(SimTime::from_millis(20), SimTime::from_millis(200)),
                )
                .inject(
                    FaultKind::IrqLoss { prob: 0.2 },
                    FaultScope::window(SimTime::from_millis(50), SimTime::from_millis(150)),
                )
        };
        let run = |p: FaultPlan| {
            let (mut sim, mut tb) = build_faulty(30_000.0, p);
            sim.run_until(&mut tb, SimTime::from_millis(250));
            (
                tb.client.sent(),
                tb.client.received(),
                tb.faults.stats(),
                tb.client.latencies_mut().quantile(0.99),
            )
        };
        assert_eq!(run(plan()), run(plan()));
    }

    #[cfg(feature = "fault")]
    #[test]
    fn spurious_irqs_burn_cpu_without_breaking_flow() {
        use simcore::FaultScope;
        let plan = FaultPlan::new().inject(
            FaultKind::SpuriousIrq {
                period: SimDuration::from_micros(50),
            },
            FaultScope::window(SimTime::from_millis(20), SimTime::from_millis(200)),
        );
        let (mut sim, mut tb) = build_faulty(20_000.0, plan);
        sim.run_until(&mut tb, SimTime::from_millis(300));
        assert!(tb.faults.stats().spurious_irqs > 0);
        assert!(
            tb.client.received() as f64 > 0.95 * tb.client.sent() as f64,
            "spurious IRQs must not break the request flow"
        );
    }

    #[test]
    fn ksoftirqd_wakes_under_overload() {
        // Heavy sustained load through a powersave-pinned (slowest)
        // core forces softirq overruns.
        let table = ProcessorProfile::xeon_gold_6134().pstates;
        let slowest = table.slowest();
        let (mut sim, mut tb) = build(600_000.0, Box::new(governors::Userspace::new(slowest)));
        sim.run_until(&mut tb, SimTime::from_millis(500));
        let wakes: usize = tb
            .ksoftirqd_log
            .iter()
            .map(|l| l.iter().filter(|&&(_, w)| w).count())
            .sum();
        assert!(wakes > 0, "overload must wake ksoftirqd");
    }
}
