//! Bounded descriptor rings.
//!
//! Real NICs exchange packets with the driver through fixed-size
//! descriptor rings; when the Rx ring is full, arriving packets are
//! dropped (tail drop). Drop counts feed the experiment reports —
//! sustained polling-mode processing is exactly what keeps the ring
//! from overflowing under bursts.

use std::collections::VecDeque;

/// A bounded FIFO ring.
///
/// # Examples
///
/// ```
/// use netsim::DescRing;
/// let mut ring: DescRing<u32> = DescRing::new(2);
/// assert!(ring.push(1).is_ok());
/// assert!(ring.push(2).is_ok());
/// assert!(ring.push(3).is_err()); // full → tail drop
/// assert_eq!(ring.pop(), Some(1));
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DescRing<T> {
    items: VecDeque<T>,
    capacity: usize,
    dropped: u64,
    total_enqueued: u64,
}

impl<T> DescRing<T> {
    /// Creates a ring holding at most `capacity` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        DescRing {
            items: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            total_enqueued: 0,
        }
    }

    /// Enqueues an item.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (giving the item back) if the ring is full;
    /// the drop counter is incremented.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.total_enqueued += 1;
        Ok(())
    }

    /// Enqueues an item under a temporarily tighter effective capacity
    /// (fault injection shrinking the usable ring). Values looser than
    /// the ring's own capacity have no effect; overflow counts as a
    /// normal tail drop.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the effective capacity is reached; the
    /// drop counter is incremented.
    pub fn push_clamped(&mut self, item: T, effective: usize) -> Result<(), T> {
        if self.items.len() >= effective.clamp(1, self.capacity) {
            self.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.total_enqueued += 1;
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Dequeues up to `max` items.
    pub fn pop_up_to(&mut self, max: usize) -> Vec<T> {
        let n = max.min(self.items.len());
        self.items.drain(..n).collect()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over queued items, oldest first, without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Items dropped due to overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Items successfully enqueued since creation.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = DescRing::new(8);
        for i in 0..5 {
            r.push(i).unwrap();
        }
        assert_eq!(r.pop_up_to(3), vec![0, 1, 2]);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut r = DescRing::new(2);
        r.push('a').unwrap();
        r.push('b').unwrap();
        assert_eq!(r.push('c'), Err('c'));
        assert_eq!(r.push('d'), Err('d'));
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total_enqueued(), 2);
        assert!(r.is_full());
    }

    #[test]
    fn pop_up_to_handles_short_queue() {
        let mut r: DescRing<u8> = DescRing::new(4);
        r.push(1).unwrap();
        assert_eq!(r.pop_up_to(10), vec![1]);
        assert!(r.pop_up_to(10).is_empty());
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DescRing::<u8>::new(0);
    }

    #[test]
    fn wrap_around_at_capacity_preserves_order_and_counts() {
        // Cycle the ring through many fill/drain rounds so the head
        // wraps the backing buffer repeatedly; FIFO order and the
        // lifetime counters must survive every wrap.
        let mut r = DescRing::new(4);
        let mut next = 0u32;
        let mut expect_pop = 0u32;
        for round in 0..25 {
            while !r.is_full() {
                r.push(next).unwrap();
                next += 1;
            }
            // Overflow while full is a tail drop, never a displacement.
            assert_eq!(r.push(u32::MAX), Err(u32::MAX));
            let drain = 1 + (round % 4);
            for _ in 0..drain {
                assert_eq!(r.pop(), Some(expect_pop));
                expect_pop += 1;
            }
        }
        assert_eq!(r.total_enqueued(), u64::from(next));
        assert_eq!(r.dropped(), 25);
        let queued: Vec<u32> = r.iter().copied().collect();
        let expect: Vec<u32> = (expect_pop..next).collect();
        assert_eq!(queued, expect, "iter sees exactly the in-flight window");
        assert_eq!(r.len(), queued.len());
    }

    #[test]
    fn iter_does_not_consume() {
        let mut r = DescRing::new(3);
        r.push('x').unwrap();
        r.push('y').unwrap();
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.pop(), Some('x'));
    }
}
