//! Receive Side Scaling: flow → queue distribution.
//!
//! The paper's testbed uses the 82599's RSS to spread packets across
//! the eight cores, observing that "RSS evenly distributes packets in
//! our experimental setup, thus each core handles almost the same
//! amount of network loads" (§6.1). We hash the flow id with a
//! splitmix-style mixer and take it modulo the queue count, which
//! distributes uniformly for any reasonable flow population.

use crate::nic::QueueId;
use crate::packet::FlowId;

/// Deterministic flow-to-queue hasher.
///
/// # Examples
///
/// ```
/// use netsim::{RssHasher, FlowId};
/// let rss = RssHasher::new(8);
/// let q = rss.queue_for(FlowId(1234));
/// assert!(q.0 < 8);
/// assert_eq!(q, rss.queue_for(FlowId(1234))); // stable per flow
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RssHasher {
    queues: usize,
}

impl RssHasher {
    /// Creates a hasher over `queues` Rx queues.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        RssHasher { queues }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The queue all packets of `flow` land on.
    pub fn queue_for(&self, flow: FlowId) -> QueueId {
        QueueId((mix64(flow.0) % self.queues as u64) as usize)
    }
}

/// splitmix64 finalizer — a cheap, well-distributed 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_mapping() {
        let rss = RssHasher::new(8);
        for f in 0..100 {
            assert_eq!(rss.queue_for(FlowId(f)), rss.queue_for(FlowId(f)));
        }
    }

    #[test]
    fn roughly_uniform_distribution() {
        let rss = RssHasher::new(8);
        let mut counts = [0u32; 8];
        let flows = 80_000;
        for f in 0..flows {
            counts[rss.queue_for(FlowId(f)).0] += 1;
        }
        let expect = flows as f64 / 8.0;
        for (q, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(
                dev < 0.05,
                "queue {q} holds {c} flows ({dev:.3} off uniform)"
            );
        }
    }

    #[test]
    fn single_queue_gets_everything() {
        let rss = RssHasher::new(1);
        for f in 0..50 {
            assert_eq!(rss.queue_for(FlowId(f)), QueueId(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_rejected() {
        let _ = RssHasher::new(0);
    }

    #[test]
    fn structured_key_patterns_do_not_skew() {
        // Real flow-id populations are rarely dense integers: ephemeral
        // ports stride by small constants, and ids often share a queue
        // count as a factor. A weak hash (e.g. identity + modulo) would
        // alias such patterns onto a subset of queues; the mixer must
        // keep every pattern near uniform.
        fn check_pattern(name: &str, gen: fn(u64) -> u64) {
            let rss = RssHasher::new(8);
            let mut counts = [0u32; 8];
            let flows = 8_000;
            for i in 0..flows {
                counts[rss.queue_for(FlowId(gen(i))).0] += 1;
            }
            let expect = flows as f64 / 8.0;
            for (q, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - expect).abs() / expect;
                assert!(
                    dev < 0.10,
                    "pattern '{name}': queue {q} holds {c} ({dev:.3} off)"
                );
            }
        }
        check_pattern("multiples of queue count", |i| i * 8);
        check_pattern("stride 4096", |i| 1_000_000 + i * 4096);
        check_pattern("high-bit flows", |i| (1 << 60) | i);
    }

    #[test]
    fn non_power_of_two_queue_counts_stay_uniform() {
        // Modulo by a non-power-of-two adds its own bias term; with a
        // 64-bit mixed key the bias is ~queues/2^64 — unobservable.
        for queues in [3usize, 5, 7] {
            let rss = RssHasher::new(queues);
            let mut counts = vec![0u32; queues];
            let flows = 21_000;
            for f in 0..flows {
                counts[rss.queue_for(FlowId(f)).0] += 1;
            }
            let expect = flows as f64 / queues as f64;
            for (q, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - expect).abs() / expect;
                assert!(
                    dev < 0.05,
                    "{queues} queues: queue {q} holds {c} ({dev:.3} off)"
                );
            }
        }
    }
}
