//! Packets, requests, and flows.

use simcore::SimTime;
use std::fmt;

/// Globally unique id of an application-level request. Responses
/// carry the id of the request they answer, which is how the client
/// measures end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A transport flow (client connection). RSS hashes the flow id to
/// pick the Rx queue, so all packets of one connection hit one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A client request (Rx at the server).
    Request,
    /// A server response (Tx at the server).
    Response,
    /// Transport-layer companion traffic (TCP ACKs and friends):
    /// costs kernel processing at the server but carries no
    /// application payload.
    Ack,
}

/// A network packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// The request this packet belongs to.
    pub id: RequestId,
    /// The flow (connection) it travels on.
    pub flow: FlowId,
    /// Request or response.
    pub kind: PacketKind,
    /// Payload size in bytes (drives serialization delay).
    pub size_bytes: u32,
    /// When the original request left the client — carried through so
    /// the client can compute end-to-end latency from the response.
    pub client_sent_at: SimTime,
    /// When the packet was accepted into an Rx ring (stamped by the
    /// NIC on enqueue; [`SimTime::ZERO`] until then). The latency
    /// attribution profiler anchors the kernel-side decomposition of
    /// the ring-residency interval on this timestamp.
    pub nic_rx_at: SimTime,
}

impl Packet {
    /// Builds a request packet.
    pub fn request(id: RequestId, flow: FlowId, size_bytes: u32, client_sent_at: SimTime) -> Self {
        Packet {
            id,
            flow,
            kind: PacketKind::Request,
            size_bytes,
            client_sent_at,
            nic_rx_at: SimTime::ZERO,
        }
    }

    /// Builds the response to an existing request, preserving the
    /// flow and client timestamp.
    pub fn response_to(request: &Packet, size_bytes: u32) -> Self {
        Packet {
            id: request.id,
            flow: request.flow,
            kind: PacketKind::Response,
            size_bytes,
            client_sent_at: request.client_sent_at,
            nic_rx_at: SimTime::ZERO,
        }
    }

    /// Builds an ACK-class companion packet on the same flow as
    /// `reference` (models the TCP traffic accompanying a request).
    pub fn ack_on(reference: &Packet) -> Self {
        Packet {
            id: reference.id,
            flow: reference.flow,
            kind: PacketKind::Ack,
            size_bytes: 64,
            client_sent_at: reference.client_sent_at,
            nic_rx_at: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_preserves_identity() {
        let req = Packet::request(RequestId(9), FlowId(4), 64, SimTime::from_micros(5));
        let resp = Packet::response_to(&req, 128);
        assert_eq!(resp.id, req.id);
        assert_eq!(resp.flow, req.flow);
        assert_eq!(resp.kind, PacketKind::Response);
        assert_eq!(resp.client_sent_at, req.client_sent_at);
        assert_eq!(resp.size_bytes, 128);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RequestId(3).to_string(), "req3");
    }

    #[test]
    fn ack_rides_the_reference_flow() {
        let req = Packet::request(RequestId(7), FlowId(2), 512, SimTime::from_micros(11));
        let ack = Packet::ack_on(&req);
        assert_eq!(ack.kind, PacketKind::Ack);
        assert_eq!(ack.id, req.id);
        assert_eq!(ack.flow, req.flow, "ACK must hash to the same RSS queue");
        assert_eq!(ack.client_sent_at, req.client_sent_at);
        assert_eq!(ack.size_bytes, 64, "ACKs are minimum-size frames");
    }
}
