//! The multi-queue NIC with interrupt moderation.
//!
//! Models the Intel 82599 of the paper's testbed (§6.1, §5.1):
//!
//! * one Rx descriptor ring and one Tx-completion ring per queue,
//!   sharing a single interrupt vector (as with `ixgbe` MSI-X);
//! * **interrupt moderation** (ITR): interrupts on one vector are
//!   spaced at least `itr` apart — 10 µs for the 82599, which is why
//!   the paper's §5.1 argues per-request DVFS needs sub-10 µs V/F
//!   transitions;
//! * per-queue IRQ masking, driven by NAPI: the softirq disables the
//!   queue's IRQ when it enters polling mode and re-enables it when
//!   the rings drain.
//!
//! The NIC never touches the event queue itself; methods return the
//! time at which an IRQ should fire and the caller schedules it.

use crate::packet::FlowId;
use crate::packet::Packet;
use crate::ring::DescRing;
use crate::rss::RssHasher;
use simcore::{EventLog, SimDuration, SimTime};

/// Index of a NIC queue (= index of the core it interrupts, with the
/// usual one-queue-per-core affinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub usize);

/// Interrupt-moderation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItrMode {
    /// Fixed minimum interrupt spacing (the 82599's hardware floor is
    /// 10 µs — the figure §5.1's per-request-DVFS argument rests on).
    Fixed(SimDuration),
    /// `ixgbe`-style adaptive moderation: the spacing grows with the
    /// observed descriptor rate (10 µs in the low-latency regime,
    /// 25 µs at bulk, 50 µs at line-rate-ish loads).
    Adaptive,
}

/// NIC construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Number of Rx/Tx queue pairs.
    pub queues: usize,
    /// Rx descriptor ring size per queue.
    pub rx_ring_size: usize,
    /// Tx-completion ring size per queue.
    pub tx_ring_size: usize,
    /// Interrupt-moderation policy.
    pub itr: ItrMode,
}

impl NicConfig {
    /// The 82599 defaults as the `ixgbe` driver configures them:
    /// 1024-descriptor rings, adaptive interrupt moderation.
    pub fn intel_82599(queues: usize) -> Self {
        NicConfig {
            queues,
            rx_ring_size: 1024,
            tx_ring_size: 1024,
            itr: ItrMode::Adaptive,
        }
    }

    /// Fixed-ITR variant (latency-tuned, §5.1's 10 µs floor).
    pub fn intel_82599_fixed_itr(queues: usize, itr: SimDuration) -> Self {
        NicConfig {
            itr: ItrMode::Fixed(itr),
            ..Self::intel_82599(queues)
        }
    }
}

/// Result of an Rx enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxOutcome {
    /// False if the ring was full and the packet was dropped.
    pub accepted: bool,
    /// If set, the caller must deliver an IRQ to the queue's core at
    /// this time (≥ now, delayed by ITR when needed).
    pub irq_at: Option<SimTime>,
}

/// An interrupt-vector state change, recorded per queue when the IRQ
/// log is enabled (see [`Nic::set_irq_log_enabled`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqMark {
    /// An IRQ was delivered to the queue's core.
    Fired,
    /// NAPI masked the vector on entering polling mode.
    Masked,
    /// NAPI unmasked the vector on leaving polling mode.
    Unmasked,
}

impl IrqMark {
    /// Static display label, for trace events that carry
    /// `&'static str` names.
    pub const fn label(self) -> &'static str {
        match self {
            IrqMark::Fired => "irq-fire",
            IrqMark::Masked => "irq-mask",
            IrqMark::Unmasked => "irq-unmask",
        }
    }
}

/// What one NAPI poll retrieved.
#[derive(Debug, Clone)]
pub struct PollResult {
    /// Rx packets drained, oldest first.
    pub rx: Vec<Packet>,
    /// Number of Tx completions cleaned.
    pub tx_cleaned: usize,
}

#[derive(Debug, Clone)]
struct Queue {
    rx: DescRing<Packet>,
    tx_clean: DescRing<()>,
    irq_enabled: bool,
    irq_pending: bool,
    last_irq: Option<SimTime>,
    irqs_raised: u64,
    /// Rx packets handed to NAPI polls.
    rx_polled: u64,
    /// Request-kind packets lost to Rx ring overflow (the drop counter
    /// on the ring itself counts every packet kind).
    rx_req_dropped: u64,
    /// Descriptors seen since the last delivered IRQ (adaptive ITR).
    descs_since_irq: u64,
    /// Current adaptive spacing.
    current_itr: SimDuration,
    /// Deepest Rx-ring occupancy ever observed.
    rx_high_water: usize,
    /// IRQ fire/mask/unmask marks with Rx occupancy, recorded only
    /// when the owning NIC's IRQ log is enabled.
    irq_log: EventLog<(IrqMark, u32)>,
}

impl Queue {
    fn has_work(&self) -> bool {
        !self.rx.is_empty() || !self.tx_clean.is_empty()
    }
}

/// The NIC device.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Nic {
    config: NicConfig,
    queues: Vec<Queue>,
    rss: RssHasher,
    /// Whether per-queue IRQ marks are recorded (off by default so
    /// non-tracing runs pay no log growth).
    irq_log_enabled: bool,
    /// Fault-injected ITR misconfiguration: while set, moderation uses
    /// this spacing on every queue regardless of mode.
    itr_override: Option<SimDuration>,
    /// Fault-injected Rx pressure: while set, rings behave as if their
    /// capacity were this value (when tighter than the real capacity).
    rx_capacity_clamp: Option<usize>,
}

impl Nic {
    /// Creates a NIC from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.queues` is zero.
    pub fn new(config: NicConfig) -> Self {
        assert!(config.queues > 0, "need at least one queue");
        let queues = (0..config.queues)
            .map(|_| Queue {
                rx: DescRing::new(config.rx_ring_size),
                tx_clean: DescRing::new(config.tx_ring_size),
                irq_enabled: true,
                irq_pending: false,
                last_irq: None,
                irqs_raised: 0,
                rx_polled: 0,
                rx_req_dropped: 0,
                descs_since_irq: 0,
                current_itr: SimDuration::from_micros(10),
                rx_high_water: 0,
                irq_log: EventLog::new(),
            })
            .collect();
        Nic {
            queues,
            rss: RssHasher::new(config.queues),
            config,
            irq_log_enabled: false,
            itr_override: None,
            rx_capacity_clamp: None,
        }
    }

    /// Forces every queue's interrupt moderation to `itr` (fault
    /// injection: a misconfigured ITR register). `None` restores
    /// normal moderation — the configured spacing is re-derived at the
    /// next delivered IRQ.
    pub fn set_itr_override(&mut self, itr: Option<SimDuration>) {
        self.itr_override = itr;
        if let Some(itr) = itr {
            for q in &mut self.queues {
                q.current_itr = itr;
            }
        }
    }

    /// Clamps every Rx ring to an effective capacity (fault injection:
    /// overflow pressure). `None` restores the configured ring size.
    pub fn set_rx_capacity_clamp(&mut self, clamp: Option<usize>) {
        self.rx_capacity_clamp = clamp;
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The configuration this NIC was built with.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// The RSS queue for a flow.
    pub fn rss_queue(&self, flow: FlowId) -> QueueId {
        self.rss.queue_for(flow)
    }

    /// When an IRQ may fire on `q` given the ITR window.
    fn irq_time(&self, q: QueueId, now: SimTime) -> SimTime {
        let queue = &self.queues[q.0];
        match queue.last_irq {
            Some(last) => now.max(last + queue.current_itr),
            None => now,
        }
    }

    /// Re-derives the adaptive ITR after an IRQ, from the descriptor
    /// count accumulated over the previous inter-interrupt window —
    /// the shape of ixgbe's `ixgbe_update_itr` buckets.
    fn update_itr(&mut self, q: QueueId, window: SimDuration) {
        let queue = &mut self.queues[q.0];
        let new_itr = match self.config.itr {
            ItrMode::Fixed(itr) => itr,
            ItrMode::Adaptive => {
                let secs = window.as_secs_f64().max(1e-6);
                let rate = queue.descs_since_irq as f64 / secs;
                if rate < 20_000.0 {
                    SimDuration::from_micros(10) // lowest latency
                } else if rate < 100_000.0 {
                    SimDuration::from_micros(25) // low latency
                } else {
                    SimDuration::from_micros(50) // bulk
                }
            }
        };
        queue.current_itr = self.itr_override.unwrap_or(new_itr);
        queue.descs_since_irq = 0;
    }

    /// Considers raising an IRQ on `q`; returns the fire time if one
    /// was armed (IRQs enabled, none already pending).
    fn maybe_arm_irq(&mut self, q: QueueId, now: SimTime) -> Option<SimTime> {
        let fire_at = self.irq_time(q, now);
        let queue = &mut self.queues[q.0];
        if !queue.irq_enabled || queue.irq_pending || !queue.has_work() {
            return None;
        }
        queue.irq_pending = true;
        Some(fire_at)
    }

    /// A packet arrives from the wire into `q`'s Rx ring.
    pub fn enqueue_rx(&mut self, q: QueueId, mut pkt: Packet, now: SimTime) -> RxOutcome {
        pkt.nic_rx_at = now;
        let pushed = match self.rx_capacity_clamp {
            Some(cap) => self.queues[q.0].rx.push_clamped(pkt, cap),
            None => self.queues[q.0].rx.push(pkt),
        };
        if let Err(lost) = pushed {
            if lost.kind == crate::packet::PacketKind::Request {
                self.queues[q.0].rx_req_dropped += 1;
            }
            return RxOutcome {
                accepted: false,
                irq_at: None,
            };
        }
        let queue = &mut self.queues[q.0];
        queue.descs_since_irq += 1;
        queue.rx_high_water = queue.rx_high_water.max(queue.rx.len());
        RxOutcome {
            accepted: true,
            irq_at: self.maybe_arm_irq(q, now),
        }
    }

    /// The driver transmits a packet on `q`. The packet goes on the
    /// wire immediately (the caller applies link delay); a Tx
    /// completion descriptor lands in the queue's clean ring and may
    /// raise an IRQ like Rx work does (shared vector).
    pub fn enqueue_tx(&mut self, q: QueueId, pkt: &Packet, now: SimTime) -> Option<SimTime> {
        self.enqueue_tx_with_completions(q, pkt, 1, now)
    }

    /// Like [`enqueue_tx`](Nic::enqueue_tx) for a payload that leaves
    /// as `segments` wire segments (large responses): one Tx
    /// completion descriptor lands per segment.
    pub fn enqueue_tx_with_completions(
        &mut self,
        q: QueueId,
        _pkt: &Packet,
        segments: usize,
        now: SimTime,
    ) -> Option<SimTime> {
        // A full clean ring loses only bookkeeping work, never data.
        for _ in 0..segments {
            let _ = self.queues[q.0].tx_clean.push(());
        }
        self.queues[q.0].descs_since_irq += segments as u64;
        self.maybe_arm_irq(q, now)
    }

    /// The scheduled IRQ for `q` fires now. Returns `true` if the IRQ
    /// is delivered (it is suppressed if NAPI disabled the vector
    /// while the IRQ was in flight, as the hardware mask would).
    pub fn irq_fired(&mut self, q: QueueId, now: SimTime) -> bool {
        let queue = &mut self.queues[q.0];
        queue.irq_pending = false;
        if !queue.irq_enabled {
            return false;
        }
        let window = match queue.last_irq {
            Some(last) => now.saturating_since(last),
            None => SimDuration::from_micros(100),
        };
        queue.last_irq = Some(now);
        queue.irqs_raised += 1;
        if self.irq_log_enabled {
            let backlog = queue.rx.len() as u32;
            queue.irq_log.push(now, (IrqMark::Fired, backlog));
        }
        self.update_itr(q, window);
        true
    }

    /// The spacing the moderation currently enforces on `q`.
    pub fn current_itr(&self, q: QueueId) -> SimDuration {
        self.queues[q.0].current_itr
    }

    /// NAPI disables `q`'s IRQ on entering polling mode.
    pub fn disable_irq(&mut self, q: QueueId, now: SimTime) {
        let queue = &mut self.queues[q.0];
        queue.irq_enabled = false;
        if self.irq_log_enabled {
            let backlog = queue.rx.len() as u32;
            queue.irq_log.push(now, (IrqMark::Masked, backlog));
        }
    }

    /// NAPI re-enables `q`'s IRQ on leaving polling mode. If work
    /// arrived during the final poll (the classic race), an IRQ is
    /// armed immediately and its fire time returned.
    pub fn enable_irq(&mut self, q: QueueId, now: SimTime) -> Option<SimTime> {
        let queue = &mut self.queues[q.0];
        queue.irq_enabled = true;
        if self.irq_log_enabled {
            let backlog = queue.rx.len() as u32;
            queue.irq_log.push(now, (IrqMark::Unmasked, backlog));
        }
        self.maybe_arm_irq(q, now)
    }

    /// True if `q`'s IRQ vector is enabled.
    pub fn irq_enabled(&self, q: QueueId) -> bool {
        self.queues[q.0].irq_enabled
    }

    /// One NAPI poll on `q`: cleans Tx completions first (cheap), then
    /// drains Rx packets, together bounded by `budget` descriptors.
    pub fn poll(&mut self, q: QueueId, budget: usize) -> PollResult {
        let queue = &mut self.queues[q.0];
        let tx_cleaned = queue.tx_clean.pop_up_to(budget).len();
        let rx = queue.rx.pop_up_to(budget - tx_cleaned);
        queue.rx_polled += rx.len() as u64;
        PollResult { rx, tx_cleaned }
    }

    /// Rx descriptors waiting on `q`.
    pub fn rx_backlog(&self, q: QueueId) -> usize {
        self.queues[q.0].rx.len()
    }

    /// Tx completions waiting on `q`.
    pub fn tx_backlog(&self, q: QueueId) -> usize {
        self.queues[q.0].tx_clean.len()
    }

    /// True if `q` has any pending descriptors.
    pub fn has_work(&self, q: QueueId) -> bool {
        self.queues[q.0].has_work()
    }

    /// Packets dropped on `q` due to Rx ring overflow.
    pub fn rx_dropped(&self, q: QueueId) -> u64 {
        self.queues[q.0].rx.dropped()
    }

    /// Total packets dropped across all queues.
    pub fn total_rx_dropped(&self) -> u64 {
        self.queues.iter().map(|q| q.rx.dropped()).sum()
    }

    /// IRQs delivered on `q`.
    pub fn irqs_raised(&self, q: QueueId) -> u64 {
        self.queues[q.0].irqs_raised
    }

    /// Total packets accepted into Rx rings across all queues.
    pub fn total_rx_enqueued(&self) -> u64 {
        self.queues.iter().map(|q| q.rx.total_enqueued()).sum()
    }

    /// Total Rx packets handed to NAPI polls across all queues.
    pub fn total_rx_polled(&self) -> u64 {
        self.queues.iter().map(|q| q.rx_polled).sum()
    }

    /// Request-kind packets lost to Rx overflow across all queues
    /// (subset of [`total_rx_dropped`](Nic::total_rx_dropped), which
    /// counts every packet kind).
    pub fn total_rx_req_dropped(&self) -> u64 {
        self.queues.iter().map(|q| q.rx_req_dropped).sum()
    }

    /// Tx completion descriptors lost to full clean rings across all
    /// queues (bookkeeping-only loss; the packet itself still leaves).
    pub fn total_tx_dropped(&self) -> u64 {
        self.queues.iter().map(|q| q.tx_clean.dropped()).sum()
    }

    /// Request-kind packets currently sitting in Rx rings across all
    /// queues — accepted from the wire, not yet polled.
    pub fn total_rx_backlog_requests(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| {
                q.rx.iter()
                    .filter(|p| p.kind == crate::packet::PacketKind::Request)
                    .count() as u64
            })
            .sum()
    }

    /// Turns per-queue IRQ mark recording on or off. Off by default:
    /// a non-tracing run keeps every log empty.
    pub fn set_irq_log_enabled(&mut self, enabled: bool) {
        self.irq_log_enabled = enabled;
    }

    /// The IRQ fire/mask/unmask marks recorded on `q` (empty unless
    /// [`set_irq_log_enabled`](Nic::set_irq_log_enabled) was called).
    /// Each mark carries the Rx-ring occupancy at that instant.
    pub fn irq_log(&self, q: QueueId) -> &EventLog<(IrqMark, u32)> {
        &self.queues[q.0].irq_log
    }

    /// Deepest Rx-ring occupancy observed on `q`.
    pub fn rx_high_water(&self, q: QueueId) -> usize {
        self.queues[q.0].rx_high_water
    }

    /// Replays every queue's IRQ marks into `buf` as instants on the
    /// `irq` category track of the queue's core (queue *i* interrupts
    /// core *i* under the one-queue-per-core affinity).
    pub fn trace_into(&self, buf: &mut simcore::TraceBuffer) {
        if !buf.is_recording() {
            return;
        }
        for (i, q) in self.queues.iter().enumerate() {
            for &(t, (mark, backlog)) in q.irq_log.entries() {
                buf.instant(
                    t,
                    simcore::TraceCategory::Irq,
                    i as u32,
                    mark.label(),
                    backlog as i64,
                );
            }
        }
    }

    /// Reports NIC-level totals into the metrics registry.
    pub fn record_metrics(&self, m: &mut simcore::MetricsRegistry) {
        if !simcore::MetricsRegistry::ENABLED {
            return;
        }
        m.set_counter("nic.rx_enqueued", self.total_rx_enqueued());
        m.set_counter("nic.rx_polled", self.total_rx_polled());
        m.set_counter("nic.rx_dropped", self.total_rx_dropped());
        m.set_counter("nic.rx_req_dropped", self.total_rx_req_dropped());
        m.set_counter("nic.tx_dropped", self.total_tx_dropped());
        m.set_counter(
            "nic.irqs_raised",
            self.queues.iter().map(|q| q.irqs_raised).sum(),
        );
        m.set_counter(
            "nic.rx_ring_high_water",
            self.queues
                .iter()
                .map(|q| q.rx_high_water as u64)
                .max()
                .unwrap_or(0),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, RequestId};

    fn pkt(n: u64) -> Packet {
        Packet::request(RequestId(n), FlowId(n), 64, SimTime::ZERO)
    }

    fn nic() -> Nic {
        Nic::new(NicConfig::intel_82599(2))
    }

    #[test]
    fn first_packet_raises_immediate_irq() {
        let mut n = nic();
        let out = n.enqueue_rx(QueueId(0), pkt(1), SimTime::from_micros(3));
        assert!(out.accepted);
        assert_eq!(out.irq_at, Some(SimTime::from_micros(3)));
    }

    #[test]
    fn itr_spaces_interrupts() {
        let mut n = nic();
        let q = QueueId(0);
        let t0 = SimTime::from_micros(0);
        let out = n.enqueue_rx(q, pkt(1), t0);
        let fire1 = out.irq_at.unwrap();
        assert!(n.irq_fired(q, fire1));
        // Drain so the next packet re-arms.
        n.poll(q, 64);
        // A packet 2 µs later must wait for the 10 µs ITR window.
        let t1 = SimTime::from_micros(2);
        let out2 = n.enqueue_rx(q, pkt(2), t1);
        assert_eq!(out2.irq_at, Some(SimTime::from_micros(10)));
    }

    #[test]
    fn no_second_irq_while_pending() {
        let mut n = nic();
        let q = QueueId(0);
        let out1 = n.enqueue_rx(q, pkt(1), SimTime::ZERO);
        assert!(out1.irq_at.is_some());
        let out2 = n.enqueue_rx(q, pkt(2), SimTime::ZERO);
        assert_eq!(out2.irq_at, None, "IRQ already pending");
    }

    #[test]
    fn masked_vector_suppresses_inflight_irq() {
        let mut n = nic();
        let q = QueueId(0);
        let fire = n.enqueue_rx(q, pkt(1), SimTime::ZERO).irq_at.unwrap();
        n.disable_irq(q, SimTime::ZERO);
        assert!(!n.irq_fired(q, fire), "IRQ must be suppressed by the mask");
        assert_eq!(n.irqs_raised(q), 0);
    }

    #[test]
    fn no_irq_while_disabled_and_reenable_rearms() {
        let mut n = nic();
        let q = QueueId(0);
        n.disable_irq(q, SimTime::ZERO);
        let out = n.enqueue_rx(q, pkt(1), SimTime::from_micros(1));
        assert!(out.accepted);
        assert_eq!(out.irq_at, None);
        // Re-enable with work pending → immediate IRQ.
        let irq = n.enable_irq(q, SimTime::from_micros(5));
        assert_eq!(irq, Some(SimTime::from_micros(5)));
    }

    #[test]
    fn reenable_with_empty_rings_stays_quiet() {
        let mut n = nic();
        let q = QueueId(0);
        n.disable_irq(q, SimTime::ZERO);
        assert_eq!(n.enable_irq(q, SimTime::from_micros(5)), None);
    }

    #[test]
    fn poll_budget_covers_tx_then_rx() {
        let mut n = nic();
        let q = QueueId(0);
        n.disable_irq(q, SimTime::ZERO);
        for i in 0..10 {
            n.enqueue_rx(q, pkt(i), SimTime::ZERO);
        }
        for i in 0..5 {
            n.enqueue_tx(q, &pkt(100 + i), SimTime::ZERO);
        }
        let r = n.poll(q, 8);
        assert_eq!(r.tx_cleaned, 5);
        assert_eq!(r.rx.len(), 3);
        assert_eq!(n.rx_backlog(q), 7);
        let r2 = n.poll(q, 64);
        assert_eq!(r2.rx.len(), 7);
        assert!(!n.has_work(q));
    }

    #[test]
    fn overflow_drops_are_counted() {
        let mut n = Nic::new(NicConfig {
            queues: 1,
            rx_ring_size: 2,
            tx_ring_size: 2,
            itr: ItrMode::Fixed(SimDuration::from_micros(10)),
        });
        let q = QueueId(0);
        for i in 0..5 {
            n.enqueue_rx(q, pkt(i), SimTime::ZERO);
        }
        assert_eq!(n.rx_dropped(q), 3);
        assert_eq!(n.total_rx_dropped(), 3);
        assert_eq!(n.rx_backlog(q), 2);
    }

    #[test]
    fn queues_are_independent() {
        let mut n = nic();
        n.disable_irq(QueueId(0), SimTime::ZERO);
        let out = n.enqueue_rx(QueueId(1), pkt(1), SimTime::ZERO);
        assert!(out.irq_at.is_some(), "queue 1 unaffected by queue 0 mask");
    }

    #[test]
    fn adaptive_itr_widens_under_load_and_recovers() {
        let mut n = Nic::new(NicConfig::intel_82599(1));
        let q = QueueId(0);
        assert_eq!(
            n.current_itr(q),
            SimDuration::from_micros(10),
            "starts low-latency"
        );
        // Burst: 60 descriptors over 200 µs between two IRQs → 300K/s.
        let fire = n.enqueue_rx(q, pkt(0), SimTime::ZERO).irq_at.unwrap();
        n.irq_fired(q, fire);
        n.poll(q, 64);
        for i in 1..=60 {
            n.enqueue_rx(q, pkt(i), SimTime::from_micros(i * 3));
        }
        let fire2 = SimTime::from_micros(200);
        n.irq_fired(q, fire2);
        assert_eq!(
            n.current_itr(q),
            SimDuration::from_micros(50),
            "bulk regime"
        );
        n.poll(q, 64);
        // Quiet period: one packet in 10 ms → back to low latency.
        n.enqueue_rx(q, pkt(99), SimTime::from_millis(10));
        n.irq_fired(q, SimTime::from_millis(10));
        assert_eq!(n.current_itr(q), SimDuration::from_micros(10));
    }

    #[test]
    fn fixed_itr_never_adapts() {
        let mut n = Nic::new(NicConfig::intel_82599_fixed_itr(
            1,
            SimDuration::from_micros(10),
        ));
        let q = QueueId(0);
        for i in 0..200 {
            n.enqueue_rx(q, pkt(i), SimTime::from_micros(i));
        }
        n.irq_fired(q, SimTime::from_micros(200));
        assert_eq!(n.current_itr(q), SimDuration::from_micros(10));
    }

    #[test]
    fn multi_segment_tx_counts_completions() {
        let mut n = nic();
        let q = QueueId(0);
        n.disable_irq(q, SimTime::ZERO);
        n.enqueue_tx_with_completions(q, &pkt(1), 6, SimTime::ZERO);
        assert_eq!(n.tx_backlog(q), 6);
        let r = n.poll(q, 64);
        assert_eq!(r.tx_cleaned, 6);
    }

    #[test]
    fn irq_log_records_marks_only_when_enabled() {
        let mut n = nic();
        let q = QueueId(0);
        // Disabled by default: nothing is recorded.
        let fire = n.enqueue_rx(q, pkt(1), SimTime::ZERO).irq_at.unwrap();
        n.irq_fired(q, fire);
        assert!(n.irq_log(q).is_empty());
        // Enabled: fire → mask → unmask marks land in order with the
        // ring occupancy attached.
        n.set_irq_log_enabled(true);
        let fire = n
            .enqueue_rx(q, pkt(2), SimTime::from_micros(100))
            .irq_at
            .unwrap();
        n.irq_fired(q, fire);
        n.disable_irq(q, fire);
        n.poll(q, 64);
        n.enable_irq(q, SimTime::from_micros(120));
        let marks: Vec<IrqMark> = n.irq_log(q).iter().map(|&(_, (m, _))| m).collect();
        assert_eq!(
            marks,
            vec![IrqMark::Fired, IrqMark::Masked, IrqMark::Unmasked]
        );
        let &(_, (_, backlog_at_fire)) = &n.irq_log(q).entries()[0];
        assert_eq!(backlog_at_fire, 2, "both packets still in the ring");
    }

    #[test]
    fn rx_high_water_tracks_deepest_occupancy() {
        let mut n = nic();
        let q = QueueId(0);
        n.disable_irq(q, SimTime::ZERO);
        for i in 0..7 {
            n.enqueue_rx(q, pkt(i), SimTime::ZERO);
        }
        n.poll(q, 64);
        n.enqueue_rx(q, pkt(99), SimTime::from_micros(5));
        assert_eq!(n.rx_high_water(q), 7, "high water survives the drain");
        assert_eq!(n.rx_high_water(QueueId(1)), 0);
    }

    #[test]
    fn rss_respects_queue_count() {
        let n = nic();
        for f in 0..100 {
            assert!(n.rss_queue(FlowId(f)).0 < n.num_queues());
        }
    }

    #[test]
    fn itr_minimum_interval_enforced_over_many_irqs() {
        // Drive a long arrival train through the full IRQ cycle and
        // check the hardware guarantee directly: consecutive delivered
        // IRQs are never closer than the ITR in force when the second
        // one was armed (10 µs fixed here — §5.1's floor).
        let itr = SimDuration::from_micros(10);
        let mut n = Nic::new(NicConfig::intel_82599_fixed_itr(1, itr));
        let q = QueueId(0);
        let mut fired = Vec::new();
        let mut pending: Option<SimTime> = None;
        for i in 0..500u64 {
            let now = SimTime::from_micros(i * 3); // 3 µs spacing < ITR
            if let Some(fire) = pending.filter(|f| *f <= now) {
                assert!(n.irq_fired(q, fire));
                fired.push(fire);
                n.poll(q, 64);
                pending = None;
            }
            let out = n.enqueue_rx(q, pkt(i), now);
            if let Some(at) = out.irq_at {
                assert!(pending.is_none(), "only one IRQ in flight per vector");
                pending = Some(at);
            }
        }
        assert!(
            fired.len() > 100,
            "train must deliver many IRQs, got {}",
            fired.len()
        );
        for w in fired.windows(2) {
            let gap = w[1].saturating_since(w[0]);
            assert!(
                gap >= itr,
                "IRQs {:?} and {:?} only {gap:?} apart",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn conservation_counters_track_wire_ring_and_poll() {
        let mut n = Nic::new(NicConfig {
            queues: 1,
            rx_ring_size: 4,
            tx_ring_size: 4,
            itr: ItrMode::Fixed(SimDuration::from_micros(10)),
        });
        let q = QueueId(0);
        // 4 accepted, 3 dropped (of which the ack is not a request).
        for i in 0..6 {
            n.enqueue_rx(q, pkt(i), SimTime::ZERO);
        }
        n.enqueue_rx(q, Packet::ack_on(&pkt(9)), SimTime::ZERO);
        assert_eq!(n.total_rx_enqueued(), 4);
        assert_eq!(n.total_rx_dropped(), 3);
        assert_eq!(n.total_rx_req_dropped(), 2);
        assert_eq!(n.total_rx_backlog_requests(), 4);
        assert_eq!(n.total_rx_polled(), 0);
        // Partial poll moves packets from ring to polled.
        let r = n.poll(q, 3);
        assert_eq!(r.rx.len(), 3);
        assert_eq!(n.total_rx_polled(), 3);
        assert_eq!(n.total_rx_backlog_requests(), 1);
        // Wire conservation at any instant: enqueued == polled + in-ring.
        assert_eq!(
            n.total_rx_enqueued(),
            n.total_rx_polled() + n.rx_backlog(q) as u64
        );
        n.poll(q, 64);
        assert_eq!(n.total_rx_polled(), 4);
        assert_eq!(n.total_rx_backlog_requests(), 0);
    }
}
