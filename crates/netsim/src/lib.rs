//! # netsim — network device model
//!
//! The NIC side of the NMAP reproduction: an Intel 82599-style
//! multi-queue NIC with Receive Side Scaling and interrupt
//! moderation, plus descriptor rings and a 10 GbE link-delay model.
//!
//! The NIC is a pure state machine: methods return *directives*
//! ("raise an IRQ to core k at time t") that the server glue turns
//! into simulator events, keeping this crate independent of the
//! world type.
//!
//! # Examples
//!
//! ```
//! use netsim::{Nic, NicConfig, Packet, RequestId, FlowId};
//! use simcore::SimTime;
//!
//! let mut nic = Nic::new(NicConfig::intel_82599(8));
//! let pkt = Packet::request(RequestId(1), FlowId(77), 64, SimTime::ZERO);
//! let queue = nic.rss_queue(pkt.flow);
//! let outcome = nic.enqueue_rx(queue, pkt, SimTime::ZERO);
//! assert!(outcome.irq_at.is_some()); // first packet raises an IRQ
//! ```

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod link;
pub mod nic;
pub mod packet;
pub mod ring;
pub mod rss;

pub use link::LinkModel;
pub use nic::{IrqMark, Nic, NicConfig, QueueId, RxOutcome};
pub use packet::{FlowId, Packet, PacketKind, RequestId};
pub use ring::DescRing;
pub use rss::RssHasher;
