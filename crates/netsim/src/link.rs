//! Link and switch delay model.
//!
//! The paper's testbed connects client and server through a D-Link
//! 10 GbE switch (§6.1). We model the one-way path as a fixed
//! propagation + switch latency plus per-byte serialization at line
//! rate. End-to-end response time = client→server link + server
//! processing + server→client link, matching the paper's client-side
//! measurement.

use crate::packet::Packet;
use simcore::SimDuration;

/// One-way link delay model.
///
/// # Examples
///
/// ```
/// use netsim::{LinkModel, Packet, RequestId, FlowId};
/// use simcore::{SimTime, SimDuration};
///
/// let link = LinkModel::ten_gbe();
/// let pkt = Packet::request(RequestId(1), FlowId(1), 1250, SimTime::ZERO);
/// let d = link.delay(&pkt);
/// // 20 µs base + 1250 B at 1 ns/byte
/// assert_eq!(d, SimDuration::from_nanos(21_250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Fixed one-way latency (propagation, switch, client stack).
    pub base: SimDuration,
    /// Serialization time per byte.
    pub per_byte: SimDuration,
}

impl LinkModel {
    /// A 10 GbE link through one switch: 20 µs one-way base latency,
    /// 1 ns/byte serialization (0.8 ns line rate rounded up to the
    /// integer-nanosecond grid).
    pub fn ten_gbe() -> Self {
        LinkModel {
            base: SimDuration::from_micros(20),
            per_byte: SimDuration::from_nanos(1),
        }
    }

    /// A zero-delay link (unit tests that isolate server latency).
    pub fn instant() -> Self {
        LinkModel {
            base: SimDuration::ZERO,
            per_byte: SimDuration::ZERO,
        }
    }

    /// One-way delay for `pkt`.
    pub fn delay(&self, pkt: &Packet) -> SimDuration {
        self.base + self.per_byte * pkt.size_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, RequestId};
    use simcore::SimTime;

    #[test]
    fn bigger_packets_take_longer() {
        let link = LinkModel::ten_gbe();
        let small = Packet::request(RequestId(1), FlowId(1), 64, SimTime::ZERO);
        let large = Packet::request(RequestId(2), FlowId(1), 9000, SimTime::ZERO);
        assert!(link.delay(&large) > link.delay(&small));
    }

    #[test]
    fn instant_link_is_free() {
        let link = LinkModel::instant();
        let pkt = Packet::request(RequestId(1), FlowId(1), 1500, SimTime::ZERO);
        assert_eq!(link.delay(&pkt), SimDuration::ZERO);
    }

    #[test]
    fn delay_is_base_plus_linear_serialization() {
        let link = LinkModel {
            base: SimDuration::from_micros(7),
            per_byte: SimDuration::from_nanos(3),
        };
        let zero = Packet::request(RequestId(1), FlowId(1), 0, SimTime::ZERO);
        assert_eq!(link.delay(&zero), SimDuration::from_micros(7));
        let big = Packet::request(RequestId(2), FlowId(1), 9000, SimTime::ZERO);
        assert_eq!(
            link.delay(&big),
            SimDuration::from_micros(7) + SimDuration::from_nanos(27_000)
        );
        // Delay depends on size alone, not kind.
        let resp = Packet::response_to(&big, 9000);
        assert_eq!(link.delay(&resp), link.delay(&big));
    }
}
