//! Request priority classes for overload brownout.
//!
//! When a fleet's load balancer detects server saturation it sheds
//! the *lowest-priority* arrivals first (brownout), keeping the
//! latency-critical traffic alive. The class mix models a typical
//! latency-critical service: a thin slice of high-priority control
//! traffic, a dominant body of normal requests, and a best-effort
//! tail (batch refreshes, prefetches) that is safe to drop.

/// Priority class of a generated request, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Control-plane / health traffic — never shed by brownout.
    High,
    /// The default request class.
    Normal,
    /// Best-effort traffic — first to be shed under brownout.
    Low,
}

/// Per-mille share of arrivals classified [`Priority::High`].
pub const HIGH_SHARE_PERMILLE: u32 = 100;
/// Per-mille share classified [`Priority::High`] or
/// [`Priority::Normal`]; the remainder is [`Priority::Low`].
pub const NORMAL_CUM_PERMILLE: u32 = 800;

impl Priority {
    /// Every class, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Stable label for metrics keys and reports.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Classifies an arrival from a uniform per-mille draw in
    /// `0..1000` (callers feed a dedicated deterministic RNG stream):
    /// 10% high, 70% normal, 20% low.
    pub fn classify(draw_permille: u32) -> Priority {
        if draw_permille < HIGH_SHARE_PERMILLE {
            Priority::High
        } else if draw_permille < NORMAL_CUM_PERMILLE {
            Priority::Normal
        } else {
            Priority::Low
        }
    }

    /// True if brownout at the given shedding floor drops this class
    /// (everything *below* `floor` is shed; `floor` itself survives).
    pub fn shed_under(self, floor: Priority) -> bool {
        self > floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_partitions_the_unit_interval() {
        let mut counts = [0u32; 3];
        for draw in 0..1000 {
            match Priority::classify(draw) {
                Priority::High => counts[0] += 1,
                Priority::Normal => counts[1] += 1,
                Priority::Low => counts[2] += 1,
            }
        }
        assert_eq!(counts, [100, 700, 200]);
    }

    #[test]
    fn ordering_is_highest_first() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        // Brownout at Normal floor sheds only Low.
        assert!(!Priority::High.shed_under(Priority::Normal));
        assert!(!Priority::Normal.shed_under(Priority::Normal));
        assert!(Priority::Low.shed_under(Priority::Normal));
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = Priority::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
