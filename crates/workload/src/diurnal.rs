//! Diurnal load curves and connection-churn presets for fleet runs.
//!
//! A real fleet never sees flat offered load: traffic follows a daily
//! curve (night trough, morning ramp, midday and evening peaks), and
//! client connections churn as users come and go. Fleet simulations
//! compress a "day" onto a sim-scale period (hundreds of
//! milliseconds) so a quick run still sweeps the whole curve. The
//! curve is a piecewise-linear 24-point table — no trigonometry, so
//! the factor is a pure function of integer nanoseconds and replays
//! byte-identically everywhere.

use simcore::{SimDuration, SimError, SimTime};

/// The canonical 24-"hour" shape, normalized to `[0, 1]`: a deep
/// night trough, a morning ramp, a midday plateau, and a taller
/// evening peak. Scaled between the configured trough and 1.0.
const DAY_SHAPE: [f64; 24] = [
    0.10, 0.05, 0.00, 0.00, 0.05, 0.15, // 00–05: night trough
    0.35, 0.55, 0.75, 0.85, 0.90, 0.92, // 06–11: morning ramp
    0.88, 0.85, 0.82, 0.80, 0.85, 0.90, // 12–17: midday plateau
    1.00, 0.95, 0.80, 0.55, 0.30, 0.18, // 18–23: evening peak, wind-down
];

/// A periodic diurnal multiplier for offered load.
///
/// [`factor_at`](DiurnalCurve::factor_at) interpolates linearly
/// between 24 evenly spaced points over one period and repeats
/// forever; the result lies in `[trough, 1.0]`, so the configured
/// total RPS is the *peak* rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalCurve {
    period: SimDuration,
    trough: f64,
}

impl DiurnalCurve {
    /// A curve with the canonical day shape, compressed onto `period`
    /// and scaled so the quietest hour runs at `trough` × peak.
    pub fn new(period: SimDuration, trough: f64) -> Self {
        DiurnalCurve { period, trough }
    }

    /// The compressed-day preset used by fleet artifacts: one "day"
    /// per `period` with a 40% night trough — deep enough to exercise
    /// governor downshifts without starving the arrival process.
    pub fn compressed_day(period: SimDuration) -> Self {
        DiurnalCurve::new(period, 0.4)
    }

    /// One full cycle of the curve.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Validates the curve: a non-zero period and a trough in
    /// `(0, 1]`. A zero trough would switch a server's offered load
    /// to zero RPS, which the arrival process rejects.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.period.is_zero() {
            return Err(SimError::invalid(
                "diurnal.period",
                "must be non-zero".to_string(),
            ));
        }
        if !self.trough.is_finite() || self.trough <= 0.0 || self.trough > 1.0 {
            return Err(SimError::invalid(
                "diurnal.trough",
                format!("must be within (0, 1] (got {})", self.trough),
            ));
        }
        Ok(())
    }

    /// The load multiplier at `now`, in `[trough, 1.0]`.
    pub fn factor_at(&self, now: SimTime) -> f64 {
        let period = self.period.as_nanos().max(1);
        let phase = now.as_nanos() % period;
        // Position within the 24-point table, in [0, 24).
        let pos = phase as f64 / period as f64 * 24.0;
        let idx = (pos as usize).min(23);
        let frac = pos - idx as f64;
        let a = DAY_SHAPE[idx];
        let b = DAY_SHAPE[(idx + 1) % 24];
        let shape = a + (b - a) * frac;
        self.trough + (1.0 - self.trough) * shape
    }
}

/// Periodic connection churn at the fleet tier: every `period`, a
/// `fraction` of client flows lose their server affinity and are
/// re-steered on next use (users reconnecting through the LB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Spacing between churn waves.
    pub period: SimDuration,
    /// Fraction of flows re-pinned per wave, in `(0, 1]`.
    pub fraction: f64,
}

impl ChurnSpec {
    /// A churn wave of `fraction` of flows every `period`.
    pub fn new(period: SimDuration, fraction: f64) -> Self {
        ChurnSpec { period, fraction }
    }

    /// Long-lived connections: 5% of flows re-pin every 200 ms.
    pub fn gentle() -> Self {
        ChurnSpec::new(SimDuration::from_millis(200), 0.05)
    }

    /// Flash-crowd reconnects: 40% of flows re-pin every 100 ms.
    pub fn aggressive() -> Self {
        ChurnSpec::new(SimDuration::from_millis(100), 0.40)
    }

    /// Validates the spec: a non-zero period (a zero period would
    /// livelock the event queue) and a fraction in `(0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.period.is_zero() {
            return Err(SimError::invalid(
                "churn.period",
                "must be non-zero".to_string(),
            ));
        }
        if !self.fraction.is_finite() || self.fraction <= 0.0 || self.fraction > 1.0 {
            return Err(SimError::invalid(
                "churn.fraction",
                format!("must be within (0, 1] (got {})", self.fraction),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn factor_stays_within_trough_and_peak() {
        let c = DiurnalCurve::compressed_day(SimDuration::from_millis(240));
        for t in 0..480 {
            let f = c.factor_at(ms(t));
            assert!(
                (0.4..=1.0).contains(&f),
                "factor {f} at {t} ms escapes [trough, 1]"
            );
        }
    }

    #[test]
    fn curve_repeats_every_period() {
        let c = DiurnalCurve::compressed_day(SimDuration::from_millis(240));
        for t in [0u64, 13, 57, 101, 239] {
            assert_eq!(c.factor_at(ms(t)), c.factor_at(ms(t + 240)));
        }
    }

    #[test]
    fn curve_reaches_trough_and_peak() {
        let period = SimDuration::from_millis(240);
        let c = DiurnalCurve::new(period, 0.25);
        let factors: Vec<f64> = (0..240).map(|t| c.factor_at(ms(t))).collect();
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0, f64::max);
        assert!(min <= 0.26, "night trough must approach 0.25 (got {min})");
        assert!(max >= 0.99, "evening peak must approach 1.0 (got {max})");
    }

    #[test]
    fn interpolation_is_continuous() {
        let c = DiurnalCurve::compressed_day(SimDuration::from_millis(240));
        // Adjacent millisecond samples never jump more than the
        // steepest table segment allows.
        let mut prev = c.factor_at(ms(0));
        for t in 1..240 {
            let f = c.factor_at(ms(t));
            assert!(
                (f - prev).abs() < 0.08,
                "discontinuity at {t} ms: {prev} -> {f}"
            );
            prev = f;
        }
    }

    #[test]
    fn validate_rejects_degenerate_curves_and_churn() {
        assert!(DiurnalCurve::new(SimDuration::ZERO, 0.5)
            .validate()
            .is_err());
        assert!(DiurnalCurve::new(SimDuration::from_millis(10), 0.0)
            .validate()
            .is_err());
        assert!(DiurnalCurve::new(SimDuration::from_millis(10), 1.5)
            .validate()
            .is_err());
        assert!(DiurnalCurve::new(SimDuration::from_millis(10), f64::NAN)
            .validate()
            .is_err());
        assert!(ChurnSpec::new(SimDuration::ZERO, 0.1).validate().is_err());
        assert!(ChurnSpec::new(SimDuration::from_millis(10), 0.0)
            .validate()
            .is_err());
        assert!(ChurnSpec::new(SimDuration::from_millis(10), 1.1)
            .validate()
            .is_err());
        assert!(ChurnSpec::gentle().validate().is_ok());
        assert!(ChurnSpec::aggressive().validate().is_ok());
    }
}
