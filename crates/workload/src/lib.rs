//! # workload — load generation and the client side
//!
//! The paper's clients (20 threads on a separate machine, §3.1/§6.1)
//! generate "repetitive bursts of network packets along with idle
//! periods". This crate reproduces that: a non-homogeneous Poisson
//! arrival process with a periodic burst envelope (idle → ramp →
//! peak), the three load-level presets per application, and the
//! client bookkeeping that measures end-to-end response latency.

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod arrivals;
pub mod client;
pub mod diurnal;
pub mod load;
pub mod priority;

pub use arrivals::{ArrivalProcess, BurstyArrivals, PoissonArrivals};
pub use client::Client;
pub use diurnal::{ChurnSpec, DiurnalCurve};
pub use load::{AppKind, LoadLevel, LoadSpec};
pub use priority::Priority;
