//! Load-level presets (§6.1).
//!
//! The paper drives memcached at 30K / 290K / 750K RPS and nginx at
//! 18K / 48K / 56K RPS from 20 client threads. Burstiness decreases
//! with offered load — a fixed client population produces relatively
//! shallower bursts as it approaches saturation — so each preset
//! carries its own duty cycle. The duty ladder is a calibration
//! choice (DESIGN.md §5) that puts each load level in the regime the
//! paper reports: low safe even at Pmin, medium overloading Pmin
//! only, high overloading everything below ~P4 while fitting P0.

use crate::arrivals::BurstyArrivals;
use simcore::SimDuration;
use std::fmt;

/// Which latency-critical application is being driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// memcached: µs-scale in-memory key-value store, SLO 1 ms.
    Memcached,
    /// nginx: tens-of-µs web server, SLO 10 ms.
    Nginx,
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppKind::Memcached => write!(f, "memcached"),
            AppKind::Nginx => write!(f, "nginx"),
        }
    }
}

/// The paper's three load levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadLevel {
    /// 30K RPS memcached / 18K RPS nginx.
    Low,
    /// 290K RPS memcached / 48K RPS nginx.
    Medium,
    /// 750K RPS memcached / 56K RPS nginx.
    High,
}

impl LoadLevel {
    /// All three, in report order.
    pub fn all() -> [LoadLevel; 3] {
        [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High]
    }
}

impl fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadLevel::Low => write!(f, "low"),
            LoadLevel::Medium => write!(f, "medium"),
            LoadLevel::High => write!(f, "high"),
        }
    }
}

/// A fully specified offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Average requests per second across the whole server.
    pub avg_rps: f64,
    /// Burst envelope period.
    pub burst_period: SimDuration,
    /// Fraction of the period that is burst (rest is idle).
    pub duty: f64,
    /// Fraction of the burst spent ramping linearly to the peak.
    pub ramp_frac: f64,
}

impl LoadSpec {
    /// The preset for `app` at `level` (§6.1 rates).
    pub fn preset(app: AppKind, level: LoadLevel) -> Self {
        let period = SimDuration::from_millis(100);
        let ramp_frac = 0.3;
        let (avg_rps, duty) = match (app, level) {
            (AppKind::Memcached, LoadLevel::Low) => (30_000.0, 0.25),
            (AppKind::Memcached, LoadLevel::Medium) => (290_000.0, 0.40),
            (AppKind::Memcached, LoadLevel::High) => (750_000.0, 0.75),
            (AppKind::Nginx, LoadLevel::Low) => (18_000.0, 0.55),
            (AppKind::Nginx, LoadLevel::Medium) => (48_000.0, 0.80),
            (AppKind::Nginx, LoadLevel::High) => (56_000.0, 0.92),
        };
        LoadSpec {
            avg_rps,
            burst_period: period,
            duty,
            ramp_frac,
        }
    }

    /// A custom steady or bursty load.
    pub fn custom(avg_rps: f64, burst_period: SimDuration, duty: f64, ramp_frac: f64) -> Self {
        LoadSpec {
            avg_rps,
            burst_period,
            duty,
            ramp_frac,
        }
    }

    /// Validates the spec: finite positive rate, a non-empty burst
    /// period, a duty cycle in `(0, 1]`, and a ramp fraction in
    /// `[0, 1)`. Degenerate values become typed errors here instead of
    /// NaN poisoning or a livelocked arrival process downstream.
    pub fn validate(&self) -> Result<(), simcore::SimError> {
        use simcore::SimError;
        if !self.avg_rps.is_finite() || self.avg_rps <= 0.0 {
            return Err(SimError::invalid(
                "load.avg_rps",
                format!("must be finite and positive (got {})", self.avg_rps),
            ));
        }
        // Above 1 GHz of arrivals the mean inter-arrival gap rounds to
        // zero nanoseconds, which would livelock the event queue.
        if self.avg_rps > 1e9 {
            return Err(SimError::invalid(
                "load.avg_rps",
                format!(
                    "{} rps exceeds the 1e9 rps integer-time ceiling",
                    self.avg_rps
                ),
            ));
        }
        if self.burst_period.is_zero() {
            return Err(SimError::invalid(
                "load.burst_period",
                "must be non-zero".to_string(),
            ));
        }
        if !self.duty.is_finite() || self.duty <= 0.0 || self.duty > 1.0 {
            return Err(SimError::invalid(
                "load.duty",
                format!("must be within (0, 1] (got {})", self.duty),
            ));
        }
        if !self.ramp_frac.is_finite() || !(0.0..1.0).contains(&self.ramp_frac) {
            return Err(SimError::invalid(
                "load.ramp_frac",
                format!("must be within [0, 1) (got {})", self.ramp_frac),
            ));
        }
        // The burst window must survive rounding to integer
        // nanoseconds: a duty so small that `period · duty` rounds to
        // zero leaves no instant at which the rate is non-zero, so the
        // thinning sampler could never accept an arrival.
        if self.burst_period.mul_f64(self.duty).is_zero() {
            return Err(SimError::invalid(
                "load.duty",
                format!(
                    "duty {} of a {} period leaves a burst window that \
                     rounds to zero nanoseconds",
                    self.duty, self.burst_period
                ),
            ));
        }
        // The burst *peak* obeys the same integer-time ceiling as the
        // average: a microscopic duty cycle concentrates the whole
        // period's load into a sliver and floods the event queue.
        let peak = self.avg_rps / (self.duty * (1.0 - self.ramp_frac / 2.0));
        if !peak.is_finite() || peak > 1e9 {
            return Err(SimError::invalid(
                "load.duty",
                format!(
                    "duty {} compresses {} avg rps into a {:.3e} rps burst \
                     peak, past the 1e9 rps integer-time ceiling",
                    self.duty, self.avg_rps, peak
                ),
            ));
        }
        Ok(())
    }

    /// Builds the arrival process for this spec.
    pub fn arrivals(&self) -> BurstyArrivals {
        BurstyArrivals::from_average(self.avg_rps, self.burst_period, self.duty, self.ramp_frac)
    }

    /// Peak requests per second during the burst plateau.
    pub fn peak_rps(&self) -> f64 {
        self.arrivals().peak_rps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_rates() {
        assert_eq!(
            LoadSpec::preset(AppKind::Memcached, LoadLevel::High).avg_rps,
            750_000.0
        );
        assert_eq!(
            LoadSpec::preset(AppKind::Memcached, LoadLevel::Low).avg_rps,
            30_000.0
        );
        assert_eq!(
            LoadSpec::preset(AppKind::Nginx, LoadLevel::Medium).avg_rps,
            48_000.0
        );
        assert_eq!(
            LoadSpec::preset(AppKind::Nginx, LoadLevel::High).avg_rps,
            56_000.0
        );
    }

    #[test]
    fn peaks_exceed_averages() {
        for app in [AppKind::Memcached, AppKind::Nginx] {
            for level in LoadLevel::all() {
                let spec = LoadSpec::preset(app, level);
                assert!(
                    spec.peak_rps() > spec.avg_rps,
                    "{app}/{level}: peak must exceed average"
                );
            }
        }
    }

    #[test]
    fn burstiness_decreases_with_load() {
        // Peak-to-average ratio shrinks as offered load grows.
        let ratio = |l| {
            let s = LoadSpec::preset(AppKind::Memcached, l);
            s.peak_rps() / s.avg_rps
        };
        assert!(ratio(LoadLevel::Low) > ratio(LoadLevel::Medium));
        assert!(ratio(LoadLevel::Medium) > ratio(LoadLevel::High));
    }

    #[test]
    fn display_names() {
        assert_eq!(AppKind::Memcached.to_string(), "memcached");
        assert_eq!(LoadLevel::Medium.to_string(), "medium");
    }

    #[test]
    fn validate_accepts_all_presets() {
        for app in [AppKind::Memcached, AppKind::Nginx] {
            for level in LoadLevel::all() {
                LoadSpec::preset(app, level)
                    .validate()
                    .expect("presets are valid");
            }
        }
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let p = SimDuration::from_millis(100);
        let bad = [
            LoadSpec::custom(0.0, p, 0.4, 0.3),
            LoadSpec::custom(-10.0, p, 0.4, 0.3),
            LoadSpec::custom(f64::NAN, p, 0.4, 0.3),
            LoadSpec::custom(f64::INFINITY, p, 0.4, 0.3),
            LoadSpec::custom(2e9, p, 0.4, 0.3),
            LoadSpec::custom(1000.0, SimDuration::ZERO, 0.4, 0.3),
            LoadSpec::custom(1000.0, p, 0.0, 0.3),
            LoadSpec::custom(1000.0, p, 1.5, 0.3),
            LoadSpec::custom(1000.0, p, f64::NAN, 0.3),
            LoadSpec::custom(1000.0, p, 0.4, 1.0),
            LoadSpec::custom(1000.0, p, 0.4, -0.1),
            // Burst peak past the 1e9 rps integer-time ceiling.
            LoadSpec::custom(1000.0, p, 1e-9, 0.0),
            // Burst window that rounds to zero nanoseconds.
            LoadSpec::custom(1e-300, SimDuration::MAX, 1e-300, 0.0),
        ];
        for (i, spec) in bad.iter().enumerate() {
            assert!(
                spec.validate().is_err(),
                "case {i} must be rejected: {spec:?}"
            );
        }
    }
}
