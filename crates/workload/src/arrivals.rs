//! Arrival processes.
//!
//! [`BurstyArrivals`] is the paper's workload shape: a periodic
//! envelope of *idle → linear ramp → peak* repeated every burst
//! period, sampled as a non-homogeneous Poisson process by thinning.
//! The ramp matters: NMAP's claim is that it reacts during the
//! *early part* of the burst, before the load reaches the peak
//! (§4.2), so the burst must actually have an early part.

use simcore::{RngStream, SimDuration, SimTime};

/// A point process producing request send times.
pub trait ArrivalProcess {
    /// The first arrival strictly after `t`, or `None` if the process
    /// has ended.
    fn next_after(&mut self, t: SimTime, rng: &mut RngStream) -> Option<SimTime>;

    /// Long-run average arrivals per second.
    fn average_rate(&self) -> f64;
}

/// Homogeneous Poisson arrivals at a constant rate.
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        PoissonArrivals { rate_per_sec }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_after(&mut self, t: SimTime, rng: &mut RngStream) -> Option<SimTime> {
        let gap = rng.exponential(1.0 / self.rate_per_sec);
        Some(t + SimDuration::from_secs_f64(gap))
    }

    fn average_rate(&self) -> f64 {
        self.rate_per_sec
    }
}

/// Periodic bursts: each period of length `period` starts with a
/// burst of `duty · period`, inside which the rate ramps linearly
/// from 0 to `peak_rps` over the first `ramp_frac` of the burst and
/// then holds the peak; the rest of the period is idle.
///
/// # Examples
///
/// ```
/// use workload::{ArrivalProcess, BurstyArrivals};
/// use simcore::{RngStream, SimDuration, SimTime};
///
/// // 100 ms period, 40% burst duty, average 100k rps.
/// let mut arr = BurstyArrivals::from_average(100_000.0, SimDuration::from_millis(100), 0.4, 0.3);
/// assert!((arr.average_rate() - 100_000.0).abs() < 1.0);
/// let mut rng = RngStream::from_seed(1);
/// let t = arr.next_after(SimTime::ZERO, &mut rng).unwrap();
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BurstyArrivals {
    peak_rps: f64,
    period: SimDuration,
    duty: f64,
    ramp_frac: f64,
}

impl BurstyArrivals {
    /// Creates the process from its peak rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty ≤ 1`, `0 ≤ ramp_frac < 1`, the period
    /// is positive and `peak_rps` is positive.
    pub fn new(peak_rps: f64, period: SimDuration, duty: f64, ramp_frac: f64) -> Self {
        assert!(peak_rps > 0.0, "peak rate must be positive");
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        assert!(
            (0.0..1.0).contains(&ramp_frac),
            "ramp_frac must be in [0, 1)"
        );
        assert!(!period.is_zero(), "period must be positive");
        BurstyArrivals {
            peak_rps,
            period,
            duty,
            ramp_frac,
        }
    }

    /// Creates the process from the desired *average* rate. With a
    /// linear ramp over `ramp_frac` of the burst, the average is
    /// `peak · duty · (1 - ramp_frac/2)`.
    pub fn from_average(avg_rps: f64, period: SimDuration, duty: f64, ramp_frac: f64) -> Self {
        let effective = duty * (1.0 - ramp_frac / 2.0);
        Self::new(avg_rps / effective, period, duty, ramp_frac)
    }

    /// The peak rate during the burst plateau.
    pub fn peak_rps(&self) -> f64 {
        self.peak_rps
    }

    /// The burst period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Burst length within each period.
    pub fn burst_len(&self) -> SimDuration {
        self.period.mul_f64(self.duty)
    }

    /// Instantaneous rate at absolute time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let pos = SimDuration::from_nanos(t.as_nanos() % self.period.as_nanos());
        let burst_len = self.burst_len();
        if pos >= burst_len {
            return 0.0;
        }
        let ramp_len = burst_len.mul_f64(self.ramp_frac);
        if ramp_len.is_zero() || pos >= ramp_len {
            self.peak_rps
        } else {
            self.peak_rps * pos.as_secs_f64() / ramp_len.as_secs_f64()
        }
    }

    /// Start of the burst containing-or-after `t`.
    fn next_burst_start(&self, t: SimTime) -> SimTime {
        let pos = t.as_nanos() % self.period.as_nanos();
        if pos < self.burst_len().as_nanos() {
            t
        } else {
            SimTime::from_nanos(
                t.as_nanos()
                    .saturating_sub(pos)
                    .saturating_add(self.period.as_nanos()),
            )
        }
    }
}

/// Thinning rejections tolerated per `next_after` call before the
/// process declares itself exhausted. A sound spec accepts within a
/// handful of samples; only a degenerate window (e.g. a burst length
/// that rounds to zero nanoseconds, where the rate is zero everywhere)
/// can reject this many times in a row, and for those the alternative
/// is an unbounded spin.
const MAX_THINNING_REJECTIONS: u32 = 1_000_000;

impl ArrivalProcess for BurstyArrivals {
    fn next_after(&mut self, t: SimTime, rng: &mut RngStream) -> Option<SimTime> {
        // Thinning against the peak rate, with an explicit skip over
        // idle stretches so gaps cost nothing.
        let mut t = t;
        for _ in 0..MAX_THINNING_REJECTIONS {
            t = self.next_burst_start(t);
            let gap = rng.exponential(1.0 / self.peak_rps);
            t += SimDuration::from_secs_f64(gap.max(1e-9));
            let rate = self.rate_at(t);
            if rate > 0.0 && rng.uniform() < rate / self.peak_rps {
                return Some(t);
            }
        }
        None
    }

    fn average_rate(&self) -> f64 {
        self.peak_rps * self.duty * (1.0 - self.ramp_frac / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let mut p = PoissonArrivals::new(10_000.0);
        let mut rng = RngStream::from_seed(3);
        let mut t = SimTime::ZERO;
        let mut n = 0u64;
        while t < SimTime::from_secs(10) {
            t = p.next_after(t, &mut rng).unwrap();
            n += 1;
        }
        let rate = n as f64 / 10.0;
        assert!((rate - 10_000.0).abs() < 300.0, "rate {rate}");
    }

    #[test]
    fn bursty_average_rate_converges() {
        let mut a = BurstyArrivals::from_average(50_000.0, SimDuration::from_millis(100), 0.4, 0.3);
        let mut rng = RngStream::from_seed(5);
        let mut t = SimTime::ZERO;
        let mut n = 0u64;
        while t < SimTime::from_secs(20) {
            t = a.next_after(t, &mut rng).unwrap();
            n += 1;
        }
        let rate = n as f64 / 20.0;
        assert!(
            (rate - 50_000.0).abs() < 0.03 * 50_000.0,
            "average rate {rate}"
        );
    }

    #[test]
    fn idle_gaps_are_empty() {
        let mut a = BurstyArrivals::from_average(50_000.0, SimDuration::from_millis(100), 0.4, 0.3);
        let mut rng = RngStream::from_seed(7);
        let mut t = SimTime::ZERO;
        let burst_len = a.burst_len();
        for _ in 0..50_000 {
            t = a.next_after(t, &mut rng).unwrap();
            let pos = SimDuration::from_nanos(t.as_nanos() % a.period().as_nanos());
            assert!(pos < burst_len, "arrival at {pos} outside the burst window");
        }
    }

    #[test]
    fn ramp_grows_towards_peak() {
        let a = BurstyArrivals::new(100_000.0, SimDuration::from_millis(100), 0.4, 0.5);
        // Ramp covers the first 20 ms of the 40 ms burst.
        assert_eq!(a.rate_at(SimTime::ZERO), 0.0);
        let early = a.rate_at(SimTime::from_millis(5));
        let later = a.rate_at(SimTime::from_millis(15));
        assert!(early < later && later < 100_000.0);
        assert_eq!(a.rate_at(SimTime::from_millis(25)), 100_000.0);
        assert_eq!(a.rate_at(SimTime::from_millis(60)), 0.0, "idle tail");
    }

    #[test]
    fn periodic_envelope_repeats() {
        let a = BurstyArrivals::new(100_000.0, SimDuration::from_millis(100), 0.4, 0.25);
        for ms in [3u64, 17, 33, 77] {
            assert_eq!(
                a.rate_at(SimTime::from_millis(ms)),
                a.rate_at(SimTime::from_millis(ms + 300)),
                "rate at {ms}ms differs a few periods later"
            );
        }
    }

    #[test]
    fn from_average_inverts_peak_formula() {
        let a = BurstyArrivals::from_average(80_000.0, SimDuration::from_millis(100), 0.4, 0.3);
        assert!((a.average_rate() - 80_000.0).abs() < 1e-6);
        // peak = avg / (duty·(1 - ramp/2)) = 80k / (0.4·0.85)
        assert!((a.peak_rps() - 80_000.0 / 0.34).abs() < 1e-6);
    }

    #[test]
    fn empty_burst_window_terminates_instead_of_spinning() {
        // A duty so small the burst window rounds to zero nanoseconds:
        // the rate is zero everywhere, so thinning can never accept.
        // `LoadSpec::validate` rejects such specs, but the raw process
        // must still bail out rather than loop forever.
        let mut a = BurstyArrivals::new(1.0, SimDuration::MAX, 1e-300, 0.0);
        assert!(a.burst_len().is_zero());
        let mut rng = RngStream::from_seed(23);
        assert_eq!(a.next_after(SimTime::ZERO, &mut rng), None);
    }

    #[test]
    fn arrivals_strictly_advance() {
        let mut a =
            BurstyArrivals::from_average(500_000.0, SimDuration::from_millis(100), 0.75, 0.3);
        let mut rng = RngStream::from_seed(11);
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            let next = a.next_after(t, &mut rng).unwrap();
            assert!(next > t);
            t = next;
        }
    }
}
