//! The client side: request generation and end-to-end latency
//! recording.
//!
//! The client is open-loop (sends follow the arrival process
//! regardless of outstanding responses, like mutilate's agent mode)
//! and measures latency from the moment a request is handed to the
//! client NIC to the moment the response arrives back — the paper's
//! client-side "end-to-end response time".

use netsim::{FlowId, Packet, PacketKind, RequestId};
use simcore::{Cdf, RngStream, SimDuration, SimTime};

/// Client state: id allocation, flow selection, latency statistics.
///
/// # Examples
///
/// ```
/// use workload::Client;
/// use netsim::Packet;
/// use simcore::{RngStream, SimTime, SimDuration};
///
/// let mut client = Client::new(64, 64);
/// let mut rng = RngStream::from_seed(1);
/// let req = client.build_request(SimTime::ZERO, &mut rng);
/// let resp = Packet::response_to(&req, 256);
/// client.on_response(&resp, SimTime::ZERO + SimDuration::from_micros(150));
/// assert_eq!(client.received(), 1);
/// assert_eq!(client.latencies().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Client {
    flows: u64,
    /// Base added to every generated flow id — bumped by
    /// [`churn_flows`](Client::churn_flows) to model connection churn
    /// (old connections close, new 5-tuples hash to new queues).
    flow_offset: u64,
    request_size: u32,
    next_id: u64,
    sent: u64,
    received: u64,
    latencies: Cdf,
    /// Per-response `(receive time at client, latency)` — the raw
    /// series behind Fig 3/10/16.
    response_log: Vec<(SimTime, SimDuration)>,
}

impl Client {
    /// Creates a client with `flows` connections sending
    /// `request_size`-byte requests.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero.
    pub fn new(flows: u64, request_size: u32) -> Self {
        assert!(flows > 0, "need at least one flow");
        Client {
            flows,
            flow_offset: 0,
            request_size,
            next_id: 0,
            sent: 0,
            received: 0,
            latencies: Cdf::new(),
            response_log: Vec::new(),
        }
    }

    /// Builds the next request, stamped with `now` as the client send
    /// time, on a uniformly chosen flow.
    pub fn build_request(&mut self, now: SimTime, rng: &mut RngStream) -> Packet {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.sent += 1;
        let flow = FlowId(self.flow_offset + rng.below(self.flows));
        Packet::request(id, flow, self.request_size, now)
    }

    /// Replaces the connection pool: every live flow id shifts by
    /// `shift`, so subsequent requests carry fresh 5-tuples that hash
    /// to (generally) different RSS queues. In-flight requests keep
    /// their old flow ids, exactly like real connections draining
    /// during churn.
    pub fn churn_flows(&mut self, shift: u64) {
        self.flow_offset = self.flow_offset.wrapping_add(shift);
    }

    /// The current flow-id base (0 until churn occurs).
    pub fn flow_offset(&self) -> u64 {
        self.flow_offset
    }

    /// A response arrived back at the client at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a response (requests don't come
    /// back).
    pub fn on_response(&mut self, pkt: &Packet, now: SimTime) -> SimDuration {
        assert_eq!(pkt.kind, PacketKind::Response, "client received a request");
        let latency = now.saturating_since(pkt.client_sent_at);
        self.received += 1;
        self.latencies.record_duration(latency);
        self.response_log.push((now, latency));
        latency
    }

    /// Requests sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Responses received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Requests still in flight (sent − received).
    pub fn outstanding(&self) -> u64 {
        self.sent - self.received
    }

    /// The latency distribution (mutable: quantile queries sort).
    pub fn latencies_mut(&mut self) -> &mut Cdf {
        &mut self.latencies
    }

    /// The latency distribution.
    pub fn latencies(&self) -> &Cdf {
        &self.latencies
    }

    /// Raw `(receive time, latency)` series.
    pub fn response_log(&self) -> &[(SimTime, SimDuration)] {
        &self.response_log
    }

    /// Discards all recorded statistics (used to cut off warm-up).
    pub fn reset_stats(&mut self) {
        self.latencies = Cdf::new();
        self.response_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_flows_bounded() {
        let mut c = Client::new(8, 64);
        let mut rng = RngStream::from_seed(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let p = c.build_request(SimTime::ZERO, &mut rng);
            assert!(seen.insert(p.id), "duplicate id {:?}", p.id);
            assert!(p.flow.0 < 8);
        }
        assert_eq!(c.sent(), 1000);
    }

    #[test]
    fn latency_is_measured_from_send_to_receive() {
        let mut c = Client::new(1, 64);
        let mut rng = RngStream::from_seed(2);
        let req = c.build_request(SimTime::from_micros(100), &mut rng);
        let resp = Packet::response_to(&req, 128);
        let lat = c.on_response(&resp, SimTime::from_micros(350));
        assert_eq!(lat, SimDuration::from_micros(250));
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn reset_stats_clears_but_keeps_accounting_consistent() {
        let mut c = Client::new(1, 64);
        let mut rng = RngStream::from_seed(2);
        let a = c.build_request(SimTime::ZERO, &mut rng);
        let _b = c.build_request(SimTime::ZERO, &mut rng);
        c.on_response(&Packet::response_to(&a, 1), SimTime::from_micros(10));
        c.reset_stats();
        assert_eq!(c.latencies().len(), 0);
        assert!(c.response_log().is_empty());
        assert_eq!(c.outstanding(), 1, "the unanswered request is still out");
    }

    #[test]
    fn churn_shifts_flow_ids_without_breaking_bounds() {
        let mut c = Client::new(8, 64);
        let mut rng = RngStream::from_seed(2);
        c.churn_flows(1000);
        for _ in 0..100 {
            let p = c.build_request(SimTime::ZERO, &mut rng);
            assert!(p.flow.0 >= 1000 && p.flow.0 < 1008);
        }
        assert_eq!(c.flow_offset(), 1000);
    }

    #[test]
    #[should_panic(expected = "client received a request")]
    fn rejects_non_responses() {
        let mut c = Client::new(1, 64);
        let mut rng = RngStream::from_seed(2);
        let req = c.build_request(SimTime::ZERO, &mut rng);
        c.on_response(&req.clone(), SimTime::from_micros(10));
    }
}
