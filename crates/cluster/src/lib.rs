//! # cluster — the fleet tier
//!
//! Composes N independent [`appsim::Testbed`] server instances behind
//! a simulated front-end load balancer: consistent-hash steering with
//! per-connection affinity, hysteretic health-checked ejection and
//! readmission, client-side timeouts with capped-exponential-backoff
//! retries, and optional tail-latency hedging with first-response-wins
//! duplicate suppression. The same discipline the single-box sim has
//! applies one level up: every retry, hedge, duplicate, ejection, and
//! failover is counted, and a fleet-level conservation roll-up proves
//! that `admitted == completed + timed-out + in-flight-at-end`
//! integer-exactly, even under crash schedules.
//!
//! The fleet runs as a two-level discrete-event simulation: one outer
//! [`simcore::Simulator`] carries the request-level events (arrivals,
//! dispatches, responses, timeouts, hedges, probes), while each server
//! holds its own nested simulator + testbed pair advanced in epoch
//! lockstep. Each epoch the fleet feeds every server the request rate
//! it actually absorbed (so retries and hedges visibly re-inject load
//! onto degraded servers) and harvests the server's recent internal
//! latencies as the sampling table for fleet response times.
//!
//! # Examples
//!
//! ```
//! use cluster::{run_fleet, FleetConfig, GovernorKind};
//! use simcore::SimDuration;
//! use workload::AppKind;
//!
//! let cfg = FleetConfig::new(2, AppKind::Memcached, 4_000.0, GovernorKind::Ondemand)
//!     .with_window(SimDuration::from_millis(40), SimDuration::from_millis(120));
//! let result = run_fleet(cfg);
//! assert_eq!(
//!     result.admitted,
//!     result.completed + result.timed_out + result.in_flight_at_end
//! );
//! ```

// Library code must stay panic-free on arbitrary inputs: failures are
// typed `SimError`s, never `unwrap()`/`panic!`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod fleet;
pub mod health;
pub mod kinds;
pub mod overload;
pub mod ring;

pub use fleet::{
    run_fleet, run_fleet_many, try_run_fleet, try_run_fleet_budgeted, FleetConfig, FleetResult,
    HedgePolicy, ProbePolicy, RetryPolicy, ServerReport,
};
pub use health::{HealthTracker, HealthTransition};
pub use kinds::{build_policies, GovernorKind, SleepKind};
pub use overload::{
    BreakerPolicy, BreakerState, BreakerStats, Brownout, BrownoutPolicy, CircuitBreaker,
    RetryBudget, RetryBudgetPolicy,
};
pub use ring::HashRing;
