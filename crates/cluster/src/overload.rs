//! Fleet-tier overload control: retry budgets, per-server circuit
//! breakers, and LB-side brownout.
//!
//! These three mechanisms close the metastable-failure loop that
//! timeout/retry/hedge machinery opens: without them, a transient
//! trigger (crash + load spike) leaves the fleet in a self-sustaining
//! retry storm after the trigger clears — the retried work keeps the
//! servers saturated, which keeps producing timeouts, which keeps
//! producing retries. With them, shed work leaves the system instead
//! of recirculating:
//!
//! - a **retry budget** (token bucket per flow, refilled by
//!   successes) bounds the retry amplification factor;
//! - a **circuit breaker** per server (closed → open → half-open with
//!   hysteresis) stops steering attempts at a server that is failing
//!   them, composing with — not replacing — health-probe ejection;
//! - **brownout** sheds the lowest-priority arrivals at the load
//!   balancer while the up-coupled saturation signal is high, so the
//!   latency-critical traffic keeps its SLO while best-effort work
//!   waits out the storm.

use simcore::{SimDuration, SimError, SimTime};

/// Token-bucket retry budget, per client flow. Retries spend a whole
/// token; successes refill a fraction of one, so the sustained
/// retry-to-success ratio is bounded by `refill_permille / 1000`
/// (the classic "retry budget" discipline) while short bursts ride
/// on the bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudgetPolicy {
    /// Tokens each flow starts with (burst allowance).
    pub initial: u32,
    /// Token cap per flow.
    pub cap: u32,
    /// Milli-tokens refilled per successful completion.
    pub refill_permille: u32,
}

impl Default for RetryBudgetPolicy {
    fn default() -> Self {
        RetryBudgetPolicy {
            initial: 2,
            cap: 5,
            refill_permille: 100,
        }
    }
}

impl RetryBudgetPolicy {
    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cap == 0 {
            return Err(SimError::invalid(
                "retry_budget.cap",
                "a zero-token cap denies every retry",
            ));
        }
        if self.initial > self.cap {
            return Err(SimError::invalid(
                "retry_budget.initial",
                "initial tokens exceed the cap",
            ));
        }
        if self.refill_permille == 0 {
            return Err(SimError::invalid(
                "retry_budget.refill_permille",
                "a zero refill starves the budget permanently",
            ));
        }
        Ok(())
    }
}

/// One flow's budget state (integer milli-tokens — exact).
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget {
    milli: u64,
    cap_milli: u64,
    refill_milli: u64,
}

impl RetryBudget {
    /// A fresh bucket at the policy's initial fill.
    pub fn new(policy: RetryBudgetPolicy) -> Self {
        RetryBudget {
            milli: policy.initial as u64 * 1000,
            cap_milli: policy.cap as u64 * 1000,
            refill_milli: policy.refill_permille as u64,
        }
    }

    /// Spends one whole token for a retry; `false` = budget denied.
    pub fn try_spend(&mut self) -> bool {
        if self.milli >= 1000 {
            self.milli -= 1000;
            true
        } else {
            false
        }
    }

    /// A success on this flow refills a fraction of a token.
    pub fn on_success(&mut self) {
        self.milli = (self.milli + self.refill_milli).min(self.cap_milli);
    }

    /// Current fill, milli-tokens.
    pub fn milli_tokens(&self) -> u64 {
        self.milli
    }
}

/// Circuit-breaker thresholds and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures before the breaker opens.
    pub fail_threshold: u32,
    /// How long an open breaker blocks before probing (half-open).
    pub cooldown: SimDuration,
    /// Maximum trial attempts admitted while half-open.
    pub probe_cap: u32,
    /// Successes while half-open before the breaker closes.
    pub ok_threshold: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            fail_threshold: 5,
            cooldown: SimDuration::from_millis(20),
            probe_cap: 3,
            ok_threshold: 2,
        }
    }
}

impl BreakerPolicy {
    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.fail_threshold == 0 || self.ok_threshold == 0 || self.probe_cap == 0 {
            return Err(SimError::invalid(
                "breaker",
                "fail_threshold, ok_threshold, and probe_cap must be ≥ 1",
            ));
        }
        if self.cooldown.is_zero() {
            return Err(SimError::invalid(
                "breaker.cooldown",
                "a zero cooldown makes the open state unreachable",
            ));
        }
        Ok(())
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counting consecutive failures.
    Closed,
    /// Blocking all traffic until the cooldown elapses.
    Open,
    /// Admitting up to `probe_cap` trial attempts.
    HalfOpen,
}

/// Lifetime transition counts of one breaker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/half-open → open transitions.
    pub opens: u64,
    /// Half-open → closed transitions.
    pub closes: u64,
    /// Open → half-open transitions.
    pub half_opens: u64,
}

/// Per-server circuit breaker with hysteresis: consecutive-failure
/// trip (so an oscillating error rate never flaps it), a cooldown
/// before probing, and a capped half-open trial window.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_fails: u32,
    half_open_ok: u32,
    probes_used: u32,
    opened_at: SimTime,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_fails: 0,
            half_open_ok: 0,
            probes_used: 0,
            opened_at: SimTime::ZERO,
            stats: BreakerStats::default(),
        }
    }

    /// Current state (after any cooldown-driven transition the last
    /// [`admits`](CircuitBreaker::admits) performed).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Transition counts.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Would the breaker admit an attempt at `now`? An open breaker
    /// whose cooldown has elapsed transitions to half-open here.
    pub fn admits(&mut self, now: SimTime) -> bool {
        if self.state == BreakerState::Open && now >= self.opened_at + self.policy.cooldown {
            self.state = BreakerState::HalfOpen;
            self.half_open_ok = 0;
            self.probes_used = 0;
            self.stats.half_opens += 1;
        }
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => self.probes_used < self.policy.probe_cap,
        }
    }

    /// An attempt was actually dispatched through this breaker
    /// (consumes a half-open probe slot).
    pub fn on_dispatch(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probes_used += 1;
        }
    }

    /// Feed one attempt outcome. Results arriving while open (late
    /// responses from before the trip) are ignored.
    pub fn record(&mut self, now: SimTime, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.consecutive_fails = 0;
                } else {
                    self.consecutive_fails += 1;
                    if self.consecutive_fails >= self.policy.fail_threshold {
                        self.trip(now);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.half_open_ok += 1;
                    if self.half_open_ok >= self.policy.ok_threshold {
                        self.state = BreakerState::Closed;
                        self.consecutive_fails = 0;
                        self.stats.closes += 1;
                    }
                } else {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_fails = 0;
        self.stats.opens += 1;
    }
}

/// Brownout activation thresholds over the up-coupled saturation
/// signal (per-mille of admission capacity, the maximum across
/// servers). `restore < threshold` gives the hysteresis band that
/// keeps brownout from flapping at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutPolicy {
    /// Saturation at or above which brownout activates.
    pub threshold_permille: u32,
    /// Saturation at or below which brownout deactivates.
    pub restore_permille: u32,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            threshold_permille: 700,
            restore_permille: 300,
        }
    }
}

impl BrownoutPolicy {
    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.threshold_permille > 1000 {
            return Err(SimError::invalid(
                "brownout.threshold_permille",
                "saturation is a per-mille signal (≤ 1000)",
            ));
        }
        if self.restore_permille > self.threshold_permille {
            return Err(SimError::invalid(
                "brownout.restore_permille",
                "restore above threshold inverts the hysteresis band",
            ));
        }
        Ok(())
    }
}

/// LB-side brownout state machine, fed once per coupling epoch.
#[derive(Debug, Clone, Copy)]
pub struct Brownout {
    policy: BrownoutPolicy,
    active: bool,
    activations: u64,
}

impl Brownout {
    /// Inactive brownout under `policy`.
    pub fn new(policy: BrownoutPolicy) -> Self {
        Brownout {
            policy,
            active: false,
            activations: 0,
        }
    }

    /// Feed the current fleet-max saturation (per mille).
    pub fn observe(&mut self, saturation_permille: u32) {
        if !self.active && saturation_permille >= self.policy.threshold_permille {
            self.active = true;
            self.activations += 1;
        } else if self.active && saturation_permille <= self.policy.restore_permille {
            self.active = false;
        }
    }

    /// Is low-priority shedding currently on?
    pub fn active(&self) -> bool {
        self.active
    }

    /// How many times brownout activated.
    pub fn activations(&self) -> u64 {
        self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_budget_bounds_retry_ratio() {
        let mut b = RetryBudget::new(RetryBudgetPolicy {
            initial: 1,
            cap: 2,
            refill_permille: 100,
        });
        assert!(b.try_spend(), "initial token missing");
        assert!(!b.try_spend(), "spent bucket still paid out");
        // Ten successes refill exactly one token.
        for _ in 0..10 {
            b.on_success();
        }
        assert!(b.try_spend());
        assert!(!b.try_spend());
        // Refills cap at the bucket size.
        for _ in 0..1000 {
            b.on_success();
        }
        assert_eq!(b.milli_tokens(), 2000);
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_only() {
        let mut cb = CircuitBreaker::new(BreakerPolicy {
            fail_threshold: 3,
            ..BreakerPolicy::default()
        });
        let t = SimTime::ZERO;
        // An oscillating error rate (fail, ok, fail, ok, ...) never
        // accumulates 3 consecutive failures: no flapping.
        for _ in 0..50 {
            cb.record(t, false);
            cb.record(t, true);
        }
        assert_eq!(cb.state(), BreakerState::Closed);
        assert_eq!(cb.stats().opens, 0);
        // Three in a row trips it.
        for _ in 0..3 {
            cb.record(t, false);
        }
        assert_eq!(cb.state(), BreakerState::Open);
        assert!(!cb.admits(t));
    }

    #[test]
    fn breaker_half_open_probe_cap_and_close() {
        let policy = BreakerPolicy {
            fail_threshold: 1,
            cooldown: SimDuration::from_millis(10),
            probe_cap: 2,
            ok_threshold: 2,
        };
        let mut cb = CircuitBreaker::new(policy);
        cb.record(SimTime::ZERO, false);
        assert_eq!(cb.state(), BreakerState::Open);
        assert!(!cb.admits(SimTime::from_millis(5)), "cooldown ignored");
        // Cooldown elapsed: half-open, capped at 2 probes.
        let t = SimTime::from_millis(10);
        assert!(cb.admits(t));
        cb.on_dispatch();
        assert!(cb.admits(t));
        cb.on_dispatch();
        assert!(!cb.admits(t), "probe cap exceeded");
        assert_eq!(cb.stats().half_opens, 1);
        // Two probe successes close it.
        cb.record(t, true);
        cb.record(t, true);
        assert_eq!(cb.state(), BreakerState::Closed);
        assert_eq!(cb.stats().closes, 1);
    }

    #[test]
    fn breaker_half_open_failure_reopens() {
        let policy = BreakerPolicy {
            fail_threshold: 1,
            cooldown: SimDuration::from_millis(10),
            probe_cap: 3,
            ok_threshold: 2,
        };
        let mut cb = CircuitBreaker::new(policy);
        cb.record(SimTime::ZERO, false);
        let t = SimTime::from_millis(10);
        assert!(cb.admits(t));
        cb.on_dispatch();
        cb.record(t, false);
        assert_eq!(cb.state(), BreakerState::Open);
        assert_eq!(cb.stats().opens, 2);
        // The cooldown restarts from the re-trip.
        assert!(!cb.admits(SimTime::from_millis(19)));
        assert!(cb.admits(SimTime::from_millis(20)));
    }

    #[test]
    fn brownout_hysteresis_band() {
        let mut b = Brownout::new(BrownoutPolicy {
            threshold_permille: 700,
            restore_permille: 300,
        });
        assert!(!b.active());
        b.observe(650);
        assert!(!b.active());
        b.observe(700);
        assert!(b.active());
        // Inside the band: stays active (no flapping).
        b.observe(500);
        assert!(b.active());
        b.observe(301);
        assert!(b.active());
        b.observe(300);
        assert!(!b.active());
        assert_eq!(b.activations(), 1);
    }

    #[test]
    fn policies_validate() {
        assert!(RetryBudgetPolicy::default().validate().is_ok());
        assert!(RetryBudgetPolicy {
            cap: 0,
            ..RetryBudgetPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryBudgetPolicy {
            initial: 9,
            cap: 5,
            ..RetryBudgetPolicy::default()
        }
        .validate()
        .is_err());
        assert!(BreakerPolicy::default().validate().is_ok());
        assert!(BreakerPolicy {
            probe_cap: 0,
            ..BreakerPolicy::default()
        }
        .validate()
        .is_err());
        assert!(BrownoutPolicy::default().validate().is_ok());
        assert!(BrownoutPolicy {
            threshold_permille: 200,
            restore_permille: 600,
        }
        .validate()
        .is_err());
    }
}
