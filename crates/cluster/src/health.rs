//! Hysteretic health tracking — NMAP's degradation hysteresis applied
//! to the load balancer's view of a server.
//!
//! A server is ejected only after `fail_threshold` *consecutive*
//! probe failures and readmitted only after `ok_threshold`
//! consecutive successes, so a single dropped probe never flaps the
//! routing table, and a recovering server must prove itself before
//! taking traffic again.

/// A change in a server's LB-visible health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// The server crossed the failure threshold and left the pool.
    Ejected,
    /// The server crossed the success threshold and rejoined.
    Readmitted,
}

/// Per-server probe hysteresis state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTracker {
    fail_threshold: u32,
    ok_threshold: u32,
    consecutive_fails: u32,
    consecutive_oks: u32,
    ejected: bool,
}

impl HealthTracker {
    /// A healthy tracker with the given hysteresis thresholds
    /// (both floored at 1).
    pub fn new(fail_threshold: u32, ok_threshold: u32) -> Self {
        HealthTracker {
            fail_threshold: fail_threshold.max(1),
            ok_threshold: ok_threshold.max(1),
            consecutive_fails: 0,
            consecutive_oks: 0,
            ejected: false,
        }
    }

    /// True while the server is out of the pool.
    pub fn is_ejected(&self) -> bool {
        self.ejected
    }

    /// Feeds one probe result; returns the transition it caused, if
    /// any.
    pub fn record(&mut self, ok: bool) -> Option<HealthTransition> {
        if ok {
            self.consecutive_fails = 0;
            self.consecutive_oks = self.consecutive_oks.saturating_add(1);
            if self.ejected && self.consecutive_oks >= self.ok_threshold {
                self.ejected = false;
                return Some(HealthTransition::Readmitted);
            }
        } else {
            self.consecutive_oks = 0;
            self.consecutive_fails = self.consecutive_fails.saturating_add(1);
            if !self.ejected && self.consecutive_fails >= self.fail_threshold {
                self.ejected = true;
                return Some(HealthTransition::Ejected);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejection_needs_consecutive_failures() {
        let mut t = HealthTracker::new(3, 2);
        assert_eq!(t.record(false), None);
        assert_eq!(t.record(false), None);
        assert_eq!(t.record(true), None, "success resets the fail streak");
        assert_eq!(t.record(false), None);
        assert_eq!(t.record(false), None);
        assert_eq!(t.record(false), Some(HealthTransition::Ejected));
        assert!(t.is_ejected());
    }

    #[test]
    fn readmission_needs_consecutive_successes() {
        let mut t = HealthTracker::new(1, 2);
        assert_eq!(t.record(false), Some(HealthTransition::Ejected));
        assert_eq!(t.record(true), None);
        assert_eq!(
            t.record(false),
            Some(HealthTransition::Ejected).filter(|_| false),
            "fail resets the ok streak"
        );
        assert_eq!(t.record(true), None);
        assert_eq!(t.record(true), Some(HealthTransition::Readmitted));
        assert!(!t.is_ejected());
    }

    #[test]
    fn no_duplicate_transitions_while_state_holds() {
        let mut t = HealthTracker::new(2, 2);
        assert_eq!(t.record(false), None);
        assert_eq!(t.record(false), Some(HealthTransition::Ejected));
        assert_eq!(t.record(false), None, "already ejected: no re-ejection");
        assert_eq!(t.record(true), None);
        assert_eq!(t.record(true), Some(HealthTransition::Readmitted));
        assert_eq!(t.record(true), None, "already healthy: no re-admission");
    }

    #[test]
    fn thresholds_floor_at_one() {
        let mut t = HealthTracker::new(0, 0);
        assert_eq!(t.record(false), Some(HealthTransition::Ejected));
        assert_eq!(t.record(true), Some(HealthTransition::Readmitted));
    }
}
