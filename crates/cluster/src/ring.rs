//! Consistent-hash request steering — the per-core RSS model one
//! level up.
//!
//! Each server owns a fixed set of virtual nodes on a 64-bit hash
//! ring. A flow hashes to a ring position and walks clockwise to the
//! first *healthy* server, so removing (ejecting) one server only
//! re-steers the flows that hashed to its arcs — everyone else keeps
//! their affinity, exactly the property consistent hashing buys a
//! real front-end tier. All hashing is FNV-1a over fixed-width
//! little-endian bytes: a pure integer function, byte-identical on
//! every platform.

/// Virtual nodes per server. 64 arcs per server keeps the worst-case
/// share imbalance in the few-percent range for single-digit fleets.
const VNODES: u64 = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for word in words {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Hashes a flow (plus its churn incarnation) to a ring key. Bumping
/// `incarnation` models a reconnect: the new connection gets a fresh
/// source port, so it lands on a fresh ring position.
pub fn flow_key(flow: u64, incarnation: u64) -> u64 {
    fnv1a(&[flow, incarnation])
}

/// A consistent-hash ring over `servers` backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(ring position, server)`, sorted by position.
    points: Vec<(u64, usize)>,
    servers: usize,
}

impl HashRing {
    /// A ring with [`VNODES`] virtual nodes per server. A zero-server
    /// ring is valid but steers everything to server 0 (callers
    /// validate fleet sizes before building one).
    pub fn new(servers: usize) -> Self {
        let mut points = Vec::with_capacity(servers * VNODES as usize);
        for server in 0..servers {
            for replica in 0..VNODES {
                points.push((fnv1a(&[server as u64, replica, 0x5e1f]), server));
            }
        }
        points.sort_unstable();
        HashRing { points, servers }
    }

    /// Number of backends on the ring.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The first healthy server clockwise from `key`. Falls back to
    /// the raw ring successor when every server is unhealthy (keep
    /// steering; the dispatch path will fail and count the loss).
    pub fn steer(&self, key: u64, healthy: &[bool]) -> usize {
        self.walk(key, healthy, None)
    }

    /// The first healthy server clockwise from `key` that is not
    /// `exclude` — the hedge/failover target. Falls back to `exclude`
    /// itself when it is the only server left.
    pub fn successor(&self, key: u64, exclude: usize, healthy: &[bool]) -> usize {
        self.walk(key, healthy, Some(exclude))
    }

    fn walk(&self, key: u64, healthy: &[bool], exclude: Option<usize>) -> usize {
        if self.points.is_empty() {
            return 0;
        }
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        let n = self.points.len();
        let mut fallback = None;
        for i in 0..n {
            let (_, server) = self.points[(start + i) % n];
            if Some(server) == exclude {
                continue;
            }
            if fallback.is_none() {
                fallback = Some(server);
            }
            if healthy.get(server).copied().unwrap_or(false) {
                return server;
            }
        }
        // Nothing healthy (or only the excluded server exists).
        fallback.or(exclude).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_is_deterministic_and_in_range() {
        let ring = HashRing::new(8);
        let healthy = vec![true; 8];
        for flow in 0..1000u64 {
            let key = flow_key(flow, 0);
            let a = ring.steer(key, &healthy);
            let b = ring.steer(key, &healthy);
            assert_eq!(a, b);
            assert!(a < 8);
        }
    }

    #[test]
    fn shares_are_roughly_balanced() {
        let ring = HashRing::new(8);
        let healthy = vec![true; 8];
        let mut counts = [0u32; 8];
        for flow in 0..8000u64 {
            counts[ring.steer(flow_key(flow, 0), &healthy)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (400..=1800).contains(&c),
                "server {s} got {c}/8000 flows — ring badly skewed"
            );
        }
    }

    #[test]
    fn ejection_only_moves_the_ejected_servers_flows() {
        let ring = HashRing::new(8);
        let healthy = vec![true; 8];
        let mut degraded = healthy.clone();
        degraded[3] = false;
        for flow in 0..2000u64 {
            let key = flow_key(flow, 0);
            let before = ring.steer(key, &healthy);
            let after = ring.steer(key, &degraded);
            if before != 3 {
                assert_eq!(before, after, "flow {flow} moved without cause");
            } else {
                assert_ne!(after, 3, "flow {flow} still steered to ejected server");
            }
        }
    }

    #[test]
    fn successor_skips_the_primary() {
        let ring = HashRing::new(4);
        let healthy = vec![true; 4];
        for flow in 0..500u64 {
            let key = flow_key(flow, 0);
            let primary = ring.steer(key, &healthy);
            let hedge = ring.successor(key, primary, &healthy);
            assert_ne!(hedge, primary);
        }
    }

    #[test]
    fn single_server_successor_falls_back_to_it() {
        let ring = HashRing::new(1);
        let healthy = vec![true];
        assert_eq!(ring.successor(flow_key(7, 0), 0, &healthy), 0);
    }

    #[test]
    fn all_unhealthy_still_steers_deterministically() {
        let ring = HashRing::new(4);
        let dead = vec![false; 4];
        let s = ring.steer(flow_key(42, 0), &dead);
        assert!(s < 4);
        assert_eq!(s, ring.steer(flow_key(42, 0), &dead));
    }

    #[test]
    fn incarnation_changes_the_key() {
        assert_ne!(flow_key(9, 0), flow_key(9, 1));
    }
}
