//! Governor and sleep-policy selection, shared by the single-box
//! runner and the fleet tier.
//!
//! These used to live in `experiments::runner`; they moved here so the
//! fleet can instantiate per-server governors without depending on the
//! experiment harness (which depends on this crate). `experiments`
//! re-exports them, so `experiments::{GovernorKind, SleepKind}` paths
//! — and the derived-`Debug` checkpoint keys built from them — are
//! unchanged.

use appsim::AppModel;
use cpusim::{PState, ProcessorProfile};
use governors::ncap::NcapSleepGate;
use governors::{
    C6OnlyPolicy, Conservative, DisablePolicy, IntelPowersave, MenuPolicy, Ncap, NcapConfig,
    Ondemand, PStateGovernor, Parties, PartiesConfig, Performance, Powersave, SleepPolicy,
    Userspace,
};
use nmap::{NmapConfig, NmapGovernor, NmapSimpl};
use simcore::SimError;

/// Which V/F governor a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorKind {
    /// cpufreq `performance` (static max).
    Performance,
    /// cpufreq `powersave` (static min).
    Powersave,
    /// cpufreq `userspace` pinned at the given index.
    Userspace(u8),
    /// cpufreq `ondemand`.
    Ondemand,
    /// cpufreq `conservative`.
    Conservative,
    /// `schedutil` (modern kernel default; beyond-paper baseline).
    Schedutil,
    /// `intel_pstate` powersave.
    IntelPowersave,
    /// NMAP-simpl (§4.1).
    NmapSimpl,
    /// Full NMAP with profiled thresholds (§4.2).
    Nmap(NmapConfig),
    /// NMAP with online threshold adaptation (beyond-paper: the
    /// future work §4.2 names).
    NmapOnline,
    /// Software NCAP with sleep gating, boost threshold in pps.
    Ncap(f64),
    /// NCAP with the menu governor left on.
    NcapMenu(f64),
    /// Parties (500 ms latency feedback).
    Parties,
}

impl GovernorKind {
    /// Stable display label, usable before a governor object exists —
    /// e.g. for quarantine placeholders in sweep artifacts. Matches
    /// the governor's `name()` except for parameterized variants.
    pub fn label(&self) -> &'static str {
        match self {
            GovernorKind::Performance => "performance",
            GovernorKind::Powersave => "powersave",
            GovernorKind::Userspace(_) => "userspace",
            GovernorKind::Ondemand => "ondemand",
            GovernorKind::Conservative => "conservative",
            GovernorKind::Schedutil => "schedutil",
            GovernorKind::IntelPowersave => "intel_powersave",
            GovernorKind::NmapSimpl => "NMAP-simpl",
            GovernorKind::Nmap(_) => "NMAP",
            GovernorKind::NmapOnline => "NMAP-online",
            GovernorKind::Ncap(_) => "NCAP",
            GovernorKind::NcapMenu(_) => "NCAP-menu",
            GovernorKind::Parties => "Parties",
        }
    }

    /// Validates the parameterized variants: NMAP threshold configs
    /// and NCAP boost thresholds become typed
    /// [`SimError::InvalidConfig`]s here instead of downstream panics.
    pub fn validate(&self) -> Result<(), SimError> {
        match *self {
            GovernorKind::Nmap(config) => config.validate(),
            GovernorKind::Ncap(t) | GovernorKind::NcapMenu(t) if !t.is_finite() || t <= 0.0 => {
                Err(SimError::invalid(
                    "governor.ncap_threshold",
                    format!("boost threshold must be finite and positive (got {t})"),
                ))
            }
            _ => Ok(()),
        }
    }
}

/// Which sleep policy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SleepKind {
    /// Linux menu governor (default).
    Menu,
    /// Sleep states disabled.
    Disable,
    /// Always the deepest state.
    C6Only,
}

impl SleepKind {
    /// All three, in report order.
    pub fn all() -> [SleepKind; 3] {
        [SleepKind::Menu, SleepKind::Disable, SleepKind::C6Only]
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            SleepKind::Menu => "menu",
            SleepKind::Disable => "disable",
            SleepKind::C6Only => "c6only",
        }
    }
}

/// Instantiates the governor and sleep-policy objects for one server.
pub fn build_policies(
    governor: &GovernorKind,
    sleep: SleepKind,
    profile: &ProcessorProfile,
    app: &AppModel,
) -> (Box<dyn PStateGovernor>, Box<dyn SleepPolicy>) {
    let cores = profile.cores;
    let table = profile.pstates.clone();
    let sleep: Box<dyn SleepPolicy> = match sleep {
        SleepKind::Menu => Box::new(MenuPolicy::new(cores)),
        SleepKind::Disable => Box::new(DisablePolicy::new()),
        SleepKind::C6Only => Box::new(C6OnlyPolicy::new()),
    };
    match *governor {
        GovernorKind::Performance => (Box::new(Performance::new()), sleep),
        GovernorKind::Powersave => (Box::new(Powersave::new(table.slowest())), sleep),
        GovernorKind::Userspace(idx) => (
            Box::new(Userspace::new(table.clamp(PState::new(idx)))),
            sleep,
        ),
        GovernorKind::Ondemand => (Box::new(Ondemand::new(table, cores)), sleep),
        GovernorKind::Conservative => (Box::new(Conservative::new(table, cores)), sleep),
        GovernorKind::Schedutil => (Box::new(governors::Schedutil::new(table, cores)), sleep),
        GovernorKind::IntelPowersave => (Box::new(IntelPowersave::new(table, cores)), sleep),
        GovernorKind::NmapSimpl => (Box::new(NmapSimpl::new(table, cores)), sleep),
        GovernorKind::Nmap(config) => (Box::new(NmapGovernor::new(table, cores, config)), sleep),
        GovernorKind::NmapOnline => (
            Box::new(nmap::OnlineNmap::new(
                table,
                cores,
                nmap::OnlineConfig::default(),
            )),
            sleep,
        ),
        GovernorKind::Ncap(threshold) => {
            let ncap = Ncap::new(table, cores, NcapConfig::with_threshold(threshold));
            let gate = NcapSleepGate::new(MenuPolicy::new(cores), ncap.burst_flag());
            (Box::new(ncap), Box::new(gate))
        }
        GovernorKind::NcapMenu(threshold) => {
            let mut nc = NcapConfig::with_threshold(threshold);
            nc.gate_sleep = false;
            (Box::new(Ncap::new(table, cores, nc)), sleep)
        }
        GovernorKind::Parties => (
            Box::new(Parties::new(table, PartiesConfig::new(app.slo))),
            sleep,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::AppKind;

    #[test]
    fn every_kind_builds_a_policy_pair() {
        let profile = ProcessorProfile::xeon_gold_6134();
        let app = AppModel::for_kind(AppKind::Memcached);
        let kinds = [
            GovernorKind::Performance,
            GovernorKind::Powersave,
            GovernorKind::Userspace(7),
            GovernorKind::Ondemand,
            GovernorKind::Conservative,
            GovernorKind::Schedutil,
            GovernorKind::IntelPowersave,
            GovernorKind::NmapSimpl,
            GovernorKind::Nmap(NmapConfig::new(32, 1.0)),
            GovernorKind::NmapOnline,
            GovernorKind::Ncap(50_000.0),
            GovernorKind::NcapMenu(50_000.0),
            GovernorKind::Parties,
        ];
        for (i, kind) in kinds.iter().enumerate() {
            kind.validate().expect("all sample kinds are valid");
            for sleep in SleepKind::all() {
                let (gov, slp) = build_policies(kind, sleep, &profile, &app);
                assert!(!gov.name().is_empty(), "kind #{i}");
                assert!(!slp.name().is_empty(), "kind #{i}");
            }
        }
    }

    #[test]
    fn validate_rejects_bad_thresholds() {
        assert!(GovernorKind::Ncap(f64::NAN).validate().is_err());
        assert!(GovernorKind::Ncap(-1.0).validate().is_err());
        assert!(GovernorKind::NcapMenu(0.0).validate().is_err());
        assert!(GovernorKind::Nmap(NmapConfig {
            ni_threshold: 0,
            ..NmapConfig::new(64, 1.5)
        })
        .validate()
        .is_err());
        assert!(GovernorKind::Performance.validate().is_ok());
    }
}
