//! The fleet simulation: N testbed servers behind a simulated
//! front-end tier, with exact cross-server conservation.
//!
//! # Two-level simulation
//!
//! The fleet runs one *outer* discrete-event simulator whose world is
//! the load balancer: request arrivals, consistent-hash steering,
//! dispatches, responses, client timeouts, retries, hedges, and
//! health probes are all outer events. Each server is a full
//! [`appsim::Testbed`] with its own *inner* simulator, advanced in
//! epoch lockstep with the outer clock. The coupling runs both ways
//! every epoch:
//!
//! - **down** — each server's arrival process is re-targeted (via
//!   [`Testbed::switch_load`]) at the request rate the fleet actually
//!   steered to it, so retries, hedges, failover, and LB skew visibly
//!   re-inject load onto the surviving servers;
//! - **up** — each server's recently completed internal latencies are
//!   harvested as the sampling table the fleet draws per-dispatch
//!   service times from, so a server melting down under inherited
//!   load answers its fleet requests slowly, trips client timeouts,
//!   and sheds load to its neighbors.
//!
//! # Conservation
//!
//! Every request and every attempt is accounted for with integer
//! exactness, even under crash schedules:
//!
//! ```text
//! admitted   == completed + timed_out + shed + in_flight_at_end
//! dispatched == attempts_completed + attempts_failed
//!             + hedges_suppressed + attempts_in_flight_at_end
//! ```
//!
//! `shed` counts requests the LB's brownout dropped before dispatch;
//! attempts rejected by a saturated server's admission gate land in
//! `attempts_failed` (never `hedges_suppressed`, even when their
//! request has already closed) with `attempts_shed` as the audited
//! sub-account.
//!
//! Both identities are evaluated in the [`FleetResult::audit`]
//! report, cross-checked against the [`ConservationLedger`] when the
//! `audit` feature is on, and a violation turns the run into
//! [`SimError::Accounting`] instead of a silently wrong result.

use std::collections::{HashMap, VecDeque};
use std::mem;
use std::sync::{Mutex, MutexGuard, PoisonError};

use appsim::{AdmissionPolicy, AppModel, Testbed, TestbedConfig};
use cpusim::ProcessorProfile;
use governors::DegradationStats;
use simcore::{
    Account, AuditReport, ConservationLedger, EventId, FaultInjector, FaultKind, FaultPlan,
    FaultStats, MetricsRegistry, MetricsSnapshot, RngStream, SimDuration, SimError, SimTime,
    Simulator, StepBudget, StreamingQuantiles, TimelineConfig,
};
use workload::{AppKind, ChurnSpec, DiurnalCurve, LoadSpec, Priority};

use crate::health::{HealthTracker, HealthTransition};
use crate::kinds::{build_policies, GovernorKind, SleepKind};
use crate::overload::{
    BreakerPolicy, Brownout, BrownoutPolicy, CircuitBreaker, RetryBudget, RetryBudgetPolicy,
};
use crate::ring::{flow_key, HashRing};

/// Locks a mutex, shrugging off poisoning: a panicking worker must
/// not cascade into every other thread that shares the sweep state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Client-side timeout and retry discipline for fleet requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Per-attempt response deadline.
    pub timeout: SimDuration,
    /// Total attempts per request, including the first (≥ 1).
    pub max_attempts: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base: SimDuration,
    /// Backoff ceiling for the exponential doubling.
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_millis(5),
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(20),
        }
    }
}

/// Tail-latency hedging: duplicate a still-open request to a second
/// server once it has been outstanding longer than a quantile of
/// recent fleet latencies. First response wins; the loser is counted
/// as suppressed, never double-completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Latency quantile (of the merged fleet distribution) the hedge
    /// delay tracks, e.g. `0.95`.
    pub quantile: f64,
    /// Lower bound on the hedge delay, so a cold or idle fleet never
    /// hedges every request.
    pub floor: SimDuration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            quantile: 0.95,
            floor: SimDuration::from_millis(1),
        }
    }
}

/// Health-check probing and hysteresis thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePolicy {
    /// Gap between successive probes of one server.
    pub interval: SimDuration,
    /// Probe RTT budget; a slower (or dead) server fails the probe.
    pub timeout: SimDuration,
    /// Consecutive failures before ejection.
    pub fail_threshold: u32,
    /// Consecutive successes before readmission.
    pub ok_threshold: u32,
}

impl Default for ProbePolicy {
    fn default() -> Self {
        ProbePolicy {
            interval: SimDuration::from_millis(10),
            timeout: SimDuration::from_millis(1),
            fail_threshold: 3,
            ok_threshold: 2,
        }
    }
}

/// Configuration for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of servers (≥ 1).
    pub servers: usize,
    /// Application every server runs.
    pub app: AppKind,
    /// Aggregate offered load across the fleet, requests/s.
    pub total_rps: f64,
    /// Governor every server runs.
    pub governor: GovernorKind,
    /// Sleep policy every server runs.
    pub sleep: SleepKind,
    /// Processor model every server runs.
    pub profile: ProcessorProfile,
    /// Master seed; per-server and per-stream seeds derive from it.
    pub seed: u64,
    /// Settling time before measurement starts.
    pub warmup: SimDuration,
    /// Measured window after warmup.
    pub duration: SimDuration,
    /// Cluster-scope fault schedule (`scope.core` = server index).
    pub fault_plan: FaultPlan,
    /// Timeout/retry discipline.
    pub retry: RetryPolicy,
    /// Tail-latency hedging; `None` disables it.
    pub hedge: Option<HedgePolicy>,
    /// Health-check probing.
    pub probe: ProbePolicy,
    /// Diurnal modulation of the offered load; `None` = steady.
    pub diurnal: Option<DiurnalCurve>,
    /// Periodic connection churn; `None` = stable flows.
    pub churn: Option<ChurnSpec>,
    /// Inner/outer coupling interval (load re-targeting and latency
    /// harvesting cadence).
    pub epoch: SimDuration,
    /// Client connection (flow) population steered by affinity.
    pub flows: usize,
    /// One-way LB↔server network hop.
    pub lb_hop: SimDuration,
    /// Admission policy every server bounds its app queues with; the
    /// fleet also rejects attempts at servers whose harvested
    /// saturation hits 1000 ‰ (the server-side gate seen from the LB).
    pub admission: AdmissionPolicy,
    /// Per-flow retry budgets; `None` = unconditional backoff-retry.
    pub retry_budget: Option<RetryBudgetPolicy>,
    /// Per-server circuit breakers composing with health ejection;
    /// `None` disables them.
    pub breaker: Option<BreakerPolicy>,
    /// LB-side brownout over the up-coupled saturation signal;
    /// `None` disables it.
    pub brownout: Option<BrownoutPolicy>,
}

impl FleetConfig {
    /// A fleet with library defaults: menu sleep, Xeon Gold 6134
    /// servers, 200 ms warmup + 800 ms measured, default retry and
    /// probe policies, hedging on, no faults, steady load.
    pub fn new(servers: usize, app: AppKind, total_rps: f64, governor: GovernorKind) -> Self {
        FleetConfig {
            servers,
            app,
            total_rps,
            governor,
            sleep: SleepKind::Menu,
            profile: ProcessorProfile::xeon_gold_6134(),
            seed: 42,
            warmup: SimDuration::from_millis(200),
            duration: SimDuration::from_millis(800),
            fault_plan: FaultPlan::new(),
            retry: RetryPolicy::default(),
            hedge: Some(HedgePolicy::default()),
            probe: ProbePolicy::default(),
            diurnal: None,
            churn: None,
            epoch: SimDuration::from_millis(5),
            flows: 512,
            lb_hop: SimDuration::from_micros(20),
            admission: AdmissionPolicy::None,
            retry_budget: None,
            breaker: None,
            brownout: None,
        }
    }

    /// Sets warmup and measured duration.
    pub fn with_window(mut self, warmup: SimDuration, duration: SimDuration) -> Self {
        self.warmup = warmup;
        self.duration = duration;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sleep policy.
    pub fn with_sleep(mut self, sleep: SleepKind) -> Self {
        self.sleep = sleep;
        self
    }

    /// Sets the processor model.
    pub fn with_profile(mut self, profile: ProcessorProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the cluster-scope fault schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the timeout/retry discipline.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables hedging.
    pub fn with_hedge(mut self, hedge: Option<HedgePolicy>) -> Self {
        self.hedge = hedge;
        self
    }

    /// Sets the health-check policy.
    pub fn with_probe(mut self, probe: ProbePolicy) -> Self {
        self.probe = probe;
        self
    }

    /// Modulates offered load with a diurnal curve.
    pub fn with_diurnal(mut self, diurnal: DiurnalCurve) -> Self {
        self.diurnal = Some(diurnal);
        self
    }

    /// Enables periodic connection churn.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Sets the flow population.
    pub fn with_flows(mut self, flows: usize) -> Self {
        self.flows = flows;
        self
    }

    /// Sets the inner/outer coupling epoch.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the servers' admission policy (also arming the fleet-side
    /// saturation gate).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Enables or disables per-flow retry budgets.
    pub fn with_retry_budget(mut self, budget: Option<RetryBudgetPolicy>) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Enables or disables per-server circuit breakers.
    pub fn with_breaker(mut self, breaker: Option<BreakerPolicy>) -> Self {
        self.breaker = breaker;
        self
    }

    /// Enables or disables LB-side brownout.
    pub fn with_brownout(mut self, brownout: Option<BrownoutPolicy>) -> Self {
        self.brownout = brownout;
        self
    }

    /// Arms the whole overload-control stack with library defaults:
    /// sojourn-threshold admission on every server, default retry
    /// budgets, circuit breakers, and brownout. The one-switch "on"
    /// side of the metastability experiment.
    pub fn with_overload_control(mut self) -> Self {
        self.admission = AdmissionPolicy::Sojourn {
            target: SimDuration::from_micros(200),
            limit: 64,
        };
        self.retry_budget = Some(RetryBudgetPolicy::default());
        self.breaker = Some(BreakerPolicy::default());
        self.brownout = Some(BrownoutPolicy::default());
        self
    }

    /// Validates the configuration, including a representative
    /// per-server testbed config at the initial load split.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.servers == 0 {
            return Err(SimError::invalid("fleet.servers", "need at least 1 server"));
        }
        if self.servers > 4096 {
            return Err(SimError::invalid("fleet.servers", "more than 4096 servers"));
        }
        if self.flows == 0 {
            return Err(SimError::invalid("fleet.flows", "need at least 1 flow"));
        }
        if !self.total_rps.is_finite() || self.total_rps <= 0.0 || self.total_rps > 1e9 {
            return Err(SimError::invalid(
                "fleet.total_rps",
                format!(
                    "rate must be finite, positive, and ≤ 1e9 (got {})",
                    self.total_rps
                ),
            ));
        }
        if self.duration.is_zero() {
            return Err(SimError::invalid(
                "fleet.duration",
                "measured window is empty",
            ));
        }
        if self.warmup.checked_add(self.duration).is_none() {
            return Err(SimError::invalid(
                "fleet.duration",
                "warmup + duration overflows",
            ));
        }
        if self.epoch.is_zero() || self.epoch > self.duration {
            return Err(SimError::invalid(
                "fleet.epoch",
                "epoch must be non-zero and no longer than the measured window",
            ));
        }
        if self.retry.max_attempts == 0 {
            return Err(SimError::invalid(
                "fleet.retry.max_attempts",
                "need ≥ 1 attempt",
            ));
        }
        if self.retry.timeout.is_zero() {
            return Err(SimError::invalid("fleet.retry.timeout", "timeout is zero"));
        }
        if self.retry.backoff_cap < self.retry.backoff_base {
            return Err(SimError::invalid(
                "fleet.retry.backoff_cap",
                "backoff cap below backoff base",
            ));
        }
        if let Some(h) = self.hedge {
            if !h.quantile.is_finite() || h.quantile <= 0.0 || h.quantile >= 1.0 {
                return Err(SimError::invalid(
                    "fleet.hedge.quantile",
                    format!("hedge quantile must be in (0, 1) (got {})", h.quantile),
                ));
            }
        }
        if self.probe.interval.is_zero() {
            return Err(SimError::invalid(
                "fleet.probe.interval",
                "probe interval is zero",
            ));
        }
        if self.probe.fail_threshold == 0 || self.probe.ok_threshold == 0 {
            return Err(SimError::invalid(
                "fleet.probe",
                "hysteresis thresholds must be ≥ 1",
            ));
        }
        if let Some(d) = &self.diurnal {
            d.validate()?;
        }
        if let Some(c) = &self.churn {
            c.validate()?;
        }
        self.governor.validate()?;
        self.fault_plan.validate(self.servers)?;
        self.admission.validate()?;
        if let Some(b) = &self.retry_budget {
            b.validate()?;
        }
        if let Some(b) = &self.breaker {
            b.validate()?;
        }
        if let Some(b) = &self.brownout {
            b.validate()?;
        }
        let sample = TestbedConfig::new(AppModel::for_kind(self.app), self.initial_load())
            .with_profile(self.profile.clone())
            .with_admission(self.admission);
        sample.validate()
    }

    /// The steady per-server load the fleet starts every server at.
    fn initial_load(&self) -> LoadSpec {
        let per = (self.total_rps / self.servers as f64).max(1.0);
        LoadSpec::custom(per, self.epoch, 1.0, 0.0)
    }

    /// End of simulated time.
    fn end(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.duration
    }

    /// Streaming-quantile window long enough that fleet windows never
    /// rotate within a run — all servers' sketches stay epoch-aligned
    /// and merge exactly.
    fn quantile_window(&self) -> SimDuration {
        (self.warmup + self.duration) + self.duration + SimDuration::from_secs(1)
    }
}

/// Per-server slice of a [`FleetResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// Attempts the LB steered here (including ones that failed
    /// instantly against a crashed/partitioned server).
    pub dispatched: u64,
    /// Attempts that reached the server and whose response made (or
    /// will make) it back to the LB — crash-cancelled responses move
    /// to the fleet's failed column instead.
    pub delivered: u64,
    /// Requests this server's response closed (first response wins).
    pub won: u64,
    /// Crash events this server absorbed.
    pub crashes: u64,
    /// Whether the LB view had this server ejected at the end.
    pub ejected_at_end: bool,
    /// The server's internal (single-box) p99 over the measured
    /// window.
    pub p99_internal: SimDuration,
    /// Measured package energy over the measured window, joules.
    pub energy_j: f64,
    /// Governor graceful-degradation counters.
    pub degradation: DegradationStats,
}

/// The outcome of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Governor label (same on every server).
    pub governor: String,
    /// Sleep-policy label.
    pub sleep: String,
    /// Per-server reports, indexed by server id.
    pub servers: Vec<ServerReport>,
    /// Requests admitted at the front end.
    pub admitted: u64,
    /// Requests closed by a response.
    pub completed: u64,
    /// Requests closed by exhausting every attempt.
    pub timed_out: u64,
    /// Requests still open when time ran out.
    pub in_flight_at_end: u64,
    /// Attempts dispatched (first sends + retries + hedges).
    pub dispatched: u64,
    /// Attempts whose response closed their request.
    pub attempts_completed: u64,
    /// Attempts lost to a crashed or partitioned server.
    pub attempts_failed: u64,
    /// Duplicate responses suppressed after their request closed.
    pub suppressed: u64,
    /// Attempts still outstanding when time ran out.
    pub attempts_in_flight_at_end: u64,
    /// Retry dispatches (timeout-driven re-sends).
    pub retries: u64,
    /// Hedge dispatches (quantile-delay duplicates).
    pub hedges: u64,
    /// Requests re-steered off their affinity server.
    pub failovers: u64,
    /// Health ejections.
    pub ejections: u64,
    /// Health readmissions.
    pub readmissions: u64,
    /// Flows that lost affinity to connection churn.
    pub churned_flows: u64,
    /// Requests shed by LB-side brownout (admitted, closed shed).
    pub shed: u64,
    /// Attempts rejected by a saturated server's admission gate — an
    /// audited sub-account of [`attempts_failed`](Self::attempts_failed).
    pub attempts_shed: u64,
    /// Retries paid for from a flow's retry budget.
    pub retry_budget_spent: u64,
    /// Retries denied by an exhausted retry budget (the request closes
    /// as timed out instead of re-dispatching).
    pub retry_budget_denied: u64,
    /// Circuit-breaker trips (closed/half-open → open), all servers.
    pub breaker_opens: u64,
    /// Circuit-breaker recoveries (half-open → closed).
    pub breaker_closes: u64,
    /// Circuit-breaker probe windows (open → half-open).
    pub breaker_half_opens: u64,
    /// Steers diverted away from a breaker-blocked affinity server.
    pub breaker_short_circuits: u64,
    /// Fleet-level p99 (merged across servers), measured window only.
    pub p99: SimDuration,
    /// Fleet-level p50.
    pub p50: SimDuration,
    /// completed / (completed + timed_out); 1.0 when nothing closed.
    pub availability: f64,
    /// Total measured energy across servers, joules.
    pub energy_j: f64,
    /// Measured window length.
    pub duration: SimDuration,
    /// Fleet metrics snapshot (empty without the `obs` feature).
    pub metrics: MetricsSnapshot,
    /// Cluster-scope fault injection counts.
    pub faults: FaultStats,
    /// The conservation roll-up; always balanced when this struct is
    /// returned (violations become [`SimError::Accounting`]).
    pub audit: AuditReport,
}

/// One fleet request attempt: where it went and whether it resolved.
#[derive(Debug)]
struct AttemptState {
    server: usize,
    response_ev: Option<EventId>,
    done: bool,
}

/// One admitted fleet request.
#[derive(Debug)]
struct RequestState {
    flow: usize,
    admitted_at: SimTime,
    attempts: Vec<AttemptState>,
    timeout_ev: Option<EventId>,
    hedge_ev: Option<EventId>,
    hedged: bool,
    closed: bool,
}

/// One server: a nested simulator/testbed pair plus fleet-side state.
struct ServerInstance {
    sim: Simulator<Testbed>,
    tb: Testbed,
    /// Recent internal latencies (ns) the fleet samples service times
    /// from; replaced wholesale each epoch that produced responses.
    latatable: Vec<u64>,
    /// High-water mark into `tb.client.response_log()`.
    resp_cursor: usize,
    /// Outstanding fleet attempts on this server: `(request id,
    /// attempt index)`, cancelled wholesale on crash.
    inflight: Vec<(u64, usize)>,
    /// Delivered attempts this epoch — drives next epoch's load.
    dispatched_epoch: u64,
    dispatched_total: u64,
    delivered: u64,
    won: u64,
    crashes: u64,
    /// Fleet-request latencies this server won, for the merged p99.
    q: StreamingQuantiles,
    current_rps: f64,
    /// Harvested admission-queue saturation (per mille), refreshed at
    /// each epoch — the up-coupled overload signal brownout and the
    /// fleet-side admission gate read.
    sat_permille: u32,
}

#[derive(Debug, Default, Clone, Copy)]
struct FleetCounters {
    admitted: u64,
    completed: u64,
    timed_out: u64,
    open_requests: u64,
    dispatched: u64,
    attempts_completed: u64,
    attempts_failed: u64,
    suppressed: u64,
    attempts_outstanding: u64,
    retries: u64,
    hedges: u64,
    failovers: u64,
    ejections: u64,
    readmissions: u64,
    churned_flows: u64,
    shed_requests: u64,
    attempts_shed: u64,
    retry_budget_spent: u64,
    retry_budget_denied: u64,
    breaker_short_circuits: u64,
}

/// The outer simulator's world.
struct FleetWorld {
    cfg: FleetConfig,
    servers: Vec<ServerInstance>,
    ring: HashRing,
    trackers: Vec<HealthTracker>,
    /// The LB's (possibly stale) health view.
    lb_view: Vec<bool>,
    /// Per-flow sticky server.
    affinity: Vec<Option<usize>>,
    /// Per-flow connection incarnation; bumped on churn.
    affinity_gen: Vec<u64>,
    /// Open request table — keyed access only, never iterated, so the
    /// map's nondeterministic iteration order can't leak into the run.
    reqs: HashMap<u64, RequestState>,
    faults: FaultInjector,
    ledger: ConservationLedger,
    rng_arrival: RngStream,
    rng_steer: RngStream,
    rng_latency: RngStream,
    rng_churn: RngStream,
    /// Per-arrival priority-class draws (its own stream, so enabling
    /// brownout perturbs no other concern's randomness).
    rng_priority: RngStream,
    counters: FleetCounters,
    /// Per-flow retry budgets; empty when the policy is off.
    budgets: Vec<RetryBudget>,
    /// Per-server circuit breakers; empty when the policy is off.
    breakers: Vec<CircuitBreaker>,
    /// LB-side brownout state; `None` when the policy is off.
    brownout: Option<Brownout>,
    /// Scratch steering view: `lb_view` AND breaker admission,
    /// refreshed before every steer decision.
    steer_view: Vec<bool>,
    /// Current hedge delay; re-derived from the merged latency
    /// quantile every epoch.
    hedge_delay: SimDuration,
    end: SimTime,
    budget: StepBudget,
    /// First inner-simulator budget failure; aborts the run.
    budget_err: Option<SimError>,
    next_req: u64,
}

type FleetSim = Simulator<FleetWorld>;

impl FleetWorld {
    fn offered_rate(&self, now: SimTime) -> f64 {
        let factor = self.cfg.diurnal.as_ref().map_or(1.0, |d| d.factor_at(now));
        // Fleet-scope load-spike faults multiply the offered rate —
        // the trigger half of the metastability experiment.
        let spike = self.faults.load_factor(now);
        (self.cfg.total_rps * factor * spike).max(1.0)
    }
}

fn backoff_for(retry: &RetryPolicy, retries_so_far: u32) -> SimDuration {
    let mult = 1u64 << retries_so_far.min(20);
    let ns = retry.backoff_base.as_nanos().saturating_mul(mult);
    SimDuration::from_nanos(ns.min(retry.backoff_cap.as_nanos()))
}

/// Rebuilds the effective steering view: a server is steerable when
/// the LB's health view admits it AND its circuit breaker (if any)
/// does. An open breaker whose cooldown elapsed transitions to
/// half-open here.
fn refresh_steer_view(w: &mut FleetWorld, now: SimTime) {
    let mut view = mem::take(&mut w.steer_view);
    view.clear();
    for i in 0..w.cfg.servers {
        let mut ok = w.lb_view.get(i).copied().unwrap_or(false);
        if ok {
            if let Some(b) = w.breakers.get_mut(i) {
                ok = b.admits(now);
            }
        }
        view.push(ok);
    }
    w.steer_view = view;
}

/// Steers one request: affinity if the LB believes it healthy (and it
/// is not excluded), else a consistent-hash walk. Counts failovers
/// and applies any active hash-skew fault as a per-request override.
fn steer(w: &mut FleetWorld, now: SimTime, flow: usize, exclude: Option<usize>) -> usize {
    refresh_steer_view(w, now);
    let key = flow_key(flow as u64, w.affinity_gen[flow]);
    let prior = w.affinity[flow];
    // A healthy affinity server blocked only by its breaker is a
    // short-circuit: the breaker, not health ejection, diverted it.
    if let Some(p) = prior {
        if exclude != Some(p)
            && w.lb_view.get(p).copied().unwrap_or(false)
            && !w.steer_view.get(p).copied().unwrap_or(false)
        {
            w.counters.breaker_short_circuits += 1;
        }
    }
    let candidate = match prior {
        Some(p) if exclude != Some(p) && w.steer_view.get(p).copied().unwrap_or(false) => p,
        _ => match exclude {
            Some(ex) => w.ring.successor(key, ex, &w.steer_view),
            None => w.ring.steer(key, &w.steer_view),
        },
    };
    if let Some(p) = prior {
        if candidate != p {
            w.counters.failovers += 1;
        }
    }
    w.affinity[flow] = Some(candidate);
    // A skew fault over-concentrates steering onto one victim server
    // for the duration of its scope, without rewriting affinity.
    let mut chosen = candidate;
    if let Some((factor, target)) = w.faults.hash_skew(now) {
        if target < w.cfg.servers && chosen != target && w.rng_steer.chance(1.0 - 1.0 / factor) {
            w.faults.note_skewed_steer(now, target);
            chosen = target;
        }
    }
    chosen
}

/// Draws a service latency for `server` from its harvested table.
fn sample_latency_ns(w: &mut FleetWorld, server: usize) -> u64 {
    let len = w.servers[server].latatable.len() as u64;
    if len == 0 {
        // No harvest yet (first epochs): a cold optimistic guess.
        (w.servers[server].tb.app().slo.as_nanos() / 8).max(1)
    } else {
        let idx = w.rng_latency.below(len) as usize;
        w.servers[server].latatable[idx]
    }
}

/// Dispatches one attempt of request `id` to `server`.
fn dispatch(w: &mut FleetWorld, sim: &mut FleetSim, id: u64, server: usize) {
    let now = sim.now();
    w.counters.dispatched += 1;
    w.ledger.credit(Account::FleetAttemptsDispatched, 1);
    w.servers[server].dispatched_total += 1;
    if let Some(b) = w.breakers.get_mut(server) {
        b.on_dispatch();
    }
    let crashed = w.faults.server_crashed(now, server);
    let partitioned = w.faults.link_partitioned(now, server);
    if crashed || partitioned {
        if partitioned && !crashed {
            w.faults.note_partition_drop(now, server);
        }
        w.counters.attempts_failed += 1;
        w.ledger.credit(Account::FleetAttemptsFailed, 1);
        if let Some(b) = w.breakers.get_mut(server) {
            b.record(now, false);
        }
        if let Some(req) = w.reqs.get_mut(&id) {
            req.attempts.push(AttemptState {
                server,
                response_ev: None,
                done: true,
            });
        }
        return;
    }
    let extra = w.faults.link_extra(now, server);
    let hop = w.cfg.lb_hop + extra;
    let attempt_idx = w.reqs.get(&id).map_or(0, |r| r.attempts.len());
    // The server-side admission gate, seen from the LB: a server whose
    // harvested saturation pegged at 1000 ‰ rejects the attempt after
    // one round trip. The rejection lands in `attempts_failed` (with
    // `attempts_shed` as its audited sub-account) — never in
    // `suppressed`, even if the request has closed by then.
    if w.cfg.admission != AdmissionPolicy::None && w.servers[server].sat_permille >= 1000 {
        let ev = sim.schedule_at(now + hop + hop, move |w, sim| {
            shed_response(w, sim, id, attempt_idx);
        });
        if let Some(req) = w.reqs.get_mut(&id) {
            req.attempts.push(AttemptState {
                server,
                response_ev: Some(ev),
                done: false,
            });
        }
        w.counters.attempts_outstanding += 1;
        let s = &mut w.servers[server];
        s.inflight.push((id, attempt_idx));
        s.dispatched_epoch += 1;
        s.delivered += 1;
        return;
    }
    let service = SimDuration::from_nanos(sample_latency_ns(w, server));
    let ev = sim.schedule_at(now + hop + service + hop, move |w, sim| {
        response(w, sim, id, attempt_idx);
    });
    if let Some(req) = w.reqs.get_mut(&id) {
        req.attempts.push(AttemptState {
            server,
            response_ev: Some(ev),
            done: false,
        });
    }
    w.counters.attempts_outstanding += 1;
    let s = &mut w.servers[server];
    s.inflight.push((id, attempt_idx));
    s.dispatched_epoch += 1;
    s.delivered += 1;
}

/// A response for attempt `attempt_idx` of request `id` reached the
/// LB. First response wins; later ones are suppressed duplicates.
fn response(w: &mut FleetWorld, sim: &mut FleetSim, id: u64, attempt_idx: usize) {
    let now = sim.now();
    let Some((server, flow, was_closed, admitted_at, timeout_ev, hedge_ev)) =
        w.reqs.get_mut(&id).and_then(|req| {
            let att = req.attempts.get_mut(attempt_idx)?;
            att.done = true;
            att.response_ev = None;
            let server = att.server;
            let was_closed = req.closed;
            let (t, h) = if was_closed {
                (None, None)
            } else {
                req.closed = true;
                (req.timeout_ev.take(), req.hedge_ev.take())
            };
            Some((server, req.flow, was_closed, req.admitted_at, t, h))
        })
    else {
        return;
    };
    w.counters.attempts_outstanding = w.counters.attempts_outstanding.saturating_sub(1);
    let s = &mut w.servers[server];
    if let Some(pos) = s
        .inflight
        .iter()
        .position(|&(r, a)| r == id && a == attempt_idx)
    {
        s.inflight.swap_remove(pos);
    }
    // Any response proves the server answered — even a suppressed
    // duplicate feeds the breaker's success side.
    if let Some(b) = w.breakers.get_mut(server) {
        b.record(now, true);
    }
    if was_closed {
        w.counters.suppressed += 1;
        w.ledger.credit(Account::FleetHedgesSuppressed, 1);
    } else {
        if let Some(ev) = timeout_ev {
            sim.cancel(ev);
        }
        if let Some(ev) = hedge_ev {
            sim.cancel(ev);
        }
        w.counters.completed += 1;
        w.ledger.credit(Account::FleetRequestsCompleted, 1);
        w.counters.attempts_completed += 1;
        w.ledger.credit(Account::FleetAttemptsCompleted, 1);
        w.counters.open_requests = w.counters.open_requests.saturating_sub(1);
        if let Some(b) = w.budgets.get_mut(flow) {
            b.on_success();
        }
        let latency = now.saturating_since(admitted_at);
        let s = &mut w.servers[server];
        s.won += 1;
        s.q.record(now, latency.as_nanos().max(1));
    }
    maybe_gc(w, id);
}

/// A saturated server's admission gate rejected attempt `attempt_idx`
/// of request `id`: the attempt closes as failed (`attempts_shed`
/// sub-account), never as a suppressed duplicate — the request itself
/// stays open for its timeout to retry or close.
fn shed_response(w: &mut FleetWorld, sim: &mut FleetSim, id: u64, attempt_idx: usize) {
    let now = sim.now();
    let Some(server) = w.reqs.get_mut(&id).and_then(|req| {
        let att = req.attempts.get_mut(attempt_idx)?;
        if att.done {
            return None;
        }
        att.done = true;
        att.response_ev = None;
        Some(att.server)
    }) else {
        return;
    };
    w.counters.attempts_outstanding = w.counters.attempts_outstanding.saturating_sub(1);
    w.counters.attempts_failed += 1;
    w.counters.attempts_shed += 1;
    w.ledger.credit(Account::FleetAttemptsFailed, 1);
    w.ledger.credit(Account::FleetAttemptsShed, 1);
    let s = &mut w.servers[server];
    if let Some(pos) = s
        .inflight
        .iter()
        .position(|&(r, a)| r == id && a == attempt_idx)
    {
        s.inflight.swap_remove(pos);
    }
    // The rejection never reached the app: it moves from the server's
    // delivered column into the fleet's failed column.
    s.delivered = s.delivered.saturating_sub(1);
    if let Some(b) = w.breakers.get_mut(server) {
        b.record(now, false);
    }
    maybe_gc(w, id);
}

/// Closes request `id` as timed out (attempts exhausted or retry
/// budget denied).
fn close_timed_out(w: &mut FleetWorld, sim: &mut FleetSim, id: u64) {
    let hedge_ev = w.reqs.get_mut(&id).and_then(|req| {
        req.closed = true;
        req.hedge_ev.take()
    });
    if let Some(ev) = hedge_ev {
        sim.cancel(ev);
    }
    w.counters.timed_out += 1;
    w.ledger.credit(Account::FleetRequestsTimedOut, 1);
    w.counters.open_requests = w.counters.open_requests.saturating_sub(1);
    maybe_gc(w, id);
}

/// The per-attempt deadline fired: retry (with backoff, paying from
/// the flow's retry budget when one is configured) or close the
/// request as timed out once attempts — or the budget — run out.
fn timeout_fired(w: &mut FleetWorld, sim: &mut FleetSim, id: u64) {
    let now = sim.now();
    let Some((closed, attempts_len, flow)) = w.reqs.get_mut(&id).map(|req| {
        req.timeout_ev = None;
        (req.closed, req.attempts.len(), req.flow)
    }) else {
        return;
    };
    if closed {
        return;
    }
    if (attempts_len as u32) < w.cfg.retry.max_attempts {
        // A configured retry budget replaces unconditional retry: the
        // retry must buy a token, and an empty bucket closes the
        // request instead of amplifying the storm.
        if let Some(budget) = w.budgets.get_mut(flow) {
            if !budget.try_spend() {
                w.counters.retry_budget_denied += 1;
                close_timed_out(w, sim, id);
                return;
            }
            w.counters.retry_budget_spent += 1;
        }
        w.counters.retries += 1;
        let backoff = backoff_for(&w.cfg.retry, attempts_len.saturating_sub(1) as u32);
        let ev = sim.schedule_at(now + backoff, move |w, sim| retry_fire(w, sim, id));
        if let Some(req) = w.reqs.get_mut(&id) {
            req.timeout_ev = Some(ev);
        }
    } else {
        close_timed_out(w, sim, id);
    }
}

/// Backoff elapsed: re-steer (excluding the server that just timed
/// out) and dispatch the retry with a fresh deadline.
fn retry_fire(w: &mut FleetWorld, sim: &mut FleetSim, id: u64) {
    let now = sim.now();
    let Some((closed, flow, last_server)) = w
        .reqs
        .get(&id)
        .map(|req| (req.closed, req.flow, req.attempts.last().map(|a| a.server)))
    else {
        return;
    };
    if closed {
        return;
    }
    let server = steer(w, now, flow, last_server);
    dispatch(w, sim, id, server);
    let ev = sim.schedule_at(now + w.cfg.retry.timeout, move |w, sim| {
        timeout_fired(w, sim, id);
    });
    if let Some(req) = w.reqs.get_mut(&id) {
        req.timeout_ev = Some(ev);
    }
}

/// Hedge delay elapsed with the request still open: duplicate it to
/// the ring successor of its primary server.
fn hedge_fired(w: &mut FleetWorld, sim: &mut FleetSim, id: u64) {
    let now = sim.now();
    let Some((flow, primary)) = w.reqs.get_mut(&id).and_then(|req| {
        req.hedge_ev = None;
        if req.closed || req.hedged {
            return None;
        }
        req.hedged = true;
        Some((req.flow, req.attempts.first().map(|a| a.server)?))
    }) else {
        return;
    };
    refresh_steer_view(w, now);
    let key = flow_key(flow as u64, w.affinity_gen[flow]);
    let target = w.ring.successor(key, primary, &w.steer_view);
    if target != primary {
        w.counters.hedges += 1;
        dispatch(w, sim, id, target);
    }
}

/// One health probe of `server`, feeding the hysteresis tracker —
/// unless an LB staleness fault eats the result.
fn probe(w: &mut FleetWorld, sim: &mut FleetSim, server: usize) {
    let now = sim.now();
    let crashed = w.faults.server_crashed(now, server);
    let partitioned = w.faults.link_partitioned(now, server);
    let extra = w.faults.link_extra(now, server);
    let rtt = (w.cfg.lb_hop + extra) + (w.cfg.lb_hop + extra);
    let ok = !crashed && !partitioned && rtt <= w.cfg.probe.timeout;
    if w.faults.health_view_stale(now) {
        w.faults.note_stale_probe(now, server);
    } else if let Some(tracker) = w.trackers.get_mut(server) {
        match tracker.record(ok) {
            Some(HealthTransition::Ejected) => {
                w.counters.ejections += 1;
                w.lb_view[server] = false;
            }
            Some(HealthTransition::Readmitted) => {
                w.counters.readmissions += 1;
                w.lb_view[server] = true;
            }
            None => {}
        }
    }
    let next = now + w.cfg.probe.interval;
    if next < w.end {
        sim.schedule_at(next, move |w, sim| probe(w, sim, server));
    }
}

/// Harvests the delta of a server's internal response log into its
/// latency sampling table.
fn harvest(s: &mut ServerInstance) {
    let log = s.tb.client.response_log();
    if s.resp_cursor > log.len() {
        // The log was reset under us (measurement boundary).
        s.resp_cursor = 0;
    }
    let delta = &log[s.resp_cursor..];
    if !delta.is_empty() {
        const CAP: usize = 2048;
        let skip = delta.len().saturating_sub(CAP);
        s.latatable.clear();
        s.latatable
            .extend(delta[skip..].iter().map(|&(_, d)| d.as_nanos().max(1)));
    }
    s.resp_cursor = log.len();
}

/// Recomputes the hedge delay from the merged fleet latency quantile.
fn recompute_hedge_delay(w: &mut FleetWorld) {
    let Some(h) = w.cfg.hedge else { return };
    let mut merged: Option<StreamingQuantiles> = None;
    for s in &w.servers {
        match &mut merged {
            None => merged = Some(s.q.clone()),
            Some(m) => m.merge(&s.q),
        }
    }
    let q_ns = merged.map_or(0, |m| m.quantile(h.quantile));
    w.hedge_delay = SimDuration::from_nanos(q_ns).max(h.floor);
}

/// The epoch tick: advance every inner simulator to now, harvest
/// latencies, re-target each server's arrival process at the load it
/// actually absorbed, and refresh the hedge delay.
fn epoch_tick(w: &mut FleetWorld, sim: &mut FleetSim) {
    let now = sim.now();
    if w.budget_err.is_none() {
        let epoch_secs = w.cfg.epoch.as_secs_f64();
        for s in &mut w.servers {
            if let Err(e) = s.sim.run_until_budgeted(&mut s.tb, now, &w.budget) {
                w.budget_err = Some(e);
                break;
            }
            harvest(s);
            // Refresh the up-coupled saturation signal brownout and
            // the fleet-side admission gate read until the next epoch.
            s.sat_permille = s.tb.max_saturation_permille();
            let rate = ((s.dispatched_epoch as f64) / epoch_secs).clamp(1.0, 1e9);
            s.dispatched_epoch = 0;
            // Only re-target on a meaningful shift: switching the load
            // restarts the arrival chain, so hold small deltas steady.
            if (rate - s.current_rps).abs() > 0.05 * s.current_rps {
                let ServerInstance { sim: inner, tb, .. } = s;
                tb.switch_load(inner, LoadSpec::custom(rate, w.cfg.epoch, 1.0, 0.0));
                s.current_rps = rate;
            }
        }
        let max_sat = w.servers.iter().map(|s| s.sat_permille).max().unwrap_or(0);
        if let Some(b) = w.brownout.as_mut() {
            b.observe(max_sat);
        }
        recompute_hedge_delay(w);
    }
    let next = now + w.cfg.epoch;
    if next < w.end {
        sim.schedule_at(next, epoch_tick);
    }
}

/// The measurement boundary: anchor every server's energy/latency
/// measurement and start fresh fleet latency sketches.
fn warmup_boundary(w: &mut FleetWorld, sim: &mut FleetSim) {
    let now = sim.now();
    let window = w.cfg.quantile_window();
    for s in &mut w.servers {
        if w.budget_err.is_none() {
            if let Err(e) = s.sim.run_until_budgeted(&mut s.tb, now, &w.budget) {
                w.budget_err = Some(e);
            }
        }
        harvest(s);
        s.tb.begin_measurement(now);
        // begin_measurement clears the response log.
        s.resp_cursor = 0;
        s.q = StreamingQuantiles::new(window);
    }
}

/// A churn wave: a random `fraction` of flows reconnect, losing
/// affinity and re-hashing to a fresh ring position.
fn churn_wave(w: &mut FleetWorld, sim: &mut FleetSim) {
    let now = sim.now();
    let Some(churn) = w.cfg.churn else { return };
    for flow in 0..w.cfg.flows {
        if w.rng_churn.chance(churn.fraction) {
            w.affinity[flow] = None;
            w.affinity_gen[flow] = w.affinity_gen[flow].wrapping_add(1);
            w.counters.churned_flows += 1;
        }
    }
    let next = now + churn.period;
    if next < w.end {
        sim.schedule_at(next, churn_wave);
    }
}

/// A server-crash boundary: every outstanding attempt on the server
/// dies (no response will come); the requests stay open and their
/// client timeouts drive retry/failover.
fn crash_server(w: &mut FleetWorld, sim: &mut FleetSim, server: usize) {
    let now = sim.now();
    w.faults.note_server_crash(now, server);
    w.servers[server].crashes += 1;
    let inflight = mem::take(&mut w.servers[server].inflight);
    let mut failed = 0u64;
    for (id, attempt_idx) in inflight {
        let Some(req) = w.reqs.get_mut(&id) else {
            continue;
        };
        let Some(att) = req.attempts.get_mut(attempt_idx) else {
            continue;
        };
        if att.done {
            continue;
        }
        att.done = true;
        if let Some(ev) = att.response_ev.take() {
            sim.cancel(ev);
        }
        failed += 1;
    }
    w.counters.attempts_outstanding = w.counters.attempts_outstanding.saturating_sub(failed);
    w.counters.attempts_failed += failed;
    // Those responses will never arrive: they move from the server's
    // delivered column into the fleet's failed column.
    w.servers[server].delivered = w.servers[server].delivered.saturating_sub(failed);
    w.ledger.credit(Account::FleetAttemptsFailed, failed);
    // Every cancelled attempt is a failure the breaker sees; a crash
    // with enough in-flight work trips it immediately.
    if let Some(b) = w.breakers.get_mut(server) {
        for _ in 0..failed {
            b.record(now, false);
        }
    }
}

/// Admits one request and schedules the next arrival.
fn arrival(w: &mut FleetWorld, sim: &mut FleetSim) {
    let now = sim.now();
    let id = w.next_req;
    w.next_req += 1;
    w.counters.admitted += 1;
    w.ledger.credit(Account::FleetRequestsAdmitted, 1);
    w.counters.open_requests += 1;
    let flow = w.rng_arrival.below(w.cfg.flows as u64) as usize;
    // Brownout: while the saturation signal is high, the LB sheds the
    // lowest-priority slice of arrivals before dispatch. The request
    // counts as admitted and closes immediately as shed, keeping the
    // request identity integer-exact.
    let priority = Priority::classify(w.rng_priority.below(1000) as u32);
    if w.brownout.is_some_and(|b| b.active()) && priority == Priority::Low {
        w.counters.shed_requests += 1;
        w.ledger.credit(Account::FleetRequestsShed, 1);
        w.counters.open_requests = w.counters.open_requests.saturating_sub(1);
        schedule_next_arrival(w, sim, now);
        return;
    }
    w.reqs.insert(
        id,
        RequestState {
            flow,
            admitted_at: now,
            attempts: Vec::new(),
            timeout_ev: None,
            hedge_ev: None,
            hedged: false,
            closed: false,
        },
    );
    let server = steer(w, now, flow, None);
    dispatch(w, sim, id, server);
    let timeout_ev = sim.schedule_at(now + w.cfg.retry.timeout, move |w, sim| {
        timeout_fired(w, sim, id);
    });
    let hedge_ev = (w.cfg.hedge.is_some() && w.cfg.servers > 1)
        .then(|| sim.schedule_at(now + w.hedge_delay, move |w, sim| hedge_fired(w, sim, id)));
    if let Some(req) = w.reqs.get_mut(&id) {
        req.timeout_ev = Some(timeout_ev);
        req.hedge_ev = hedge_ev;
    }
    schedule_next_arrival(w, sim, now);
}

fn schedule_next_arrival(w: &mut FleetWorld, sim: &mut FleetSim, now: SimTime) {
    let mean_ns = 1e9 / w.offered_rate(now);
    let gap_ns = w.rng_arrival.exponential(mean_ns).clamp(1.0, 1e15);
    let next = now + SimDuration::from_nanos(gap_ns as u64);
    if next < w.end {
        sim.schedule_at(next, arrival);
    }
}

/// Drops a request once it is closed and every attempt has resolved.
fn maybe_gc(w: &mut FleetWorld, id: u64) {
    if let Some(req) = w.reqs.get(&id) {
        if req.closed
            && req.timeout_ev.is_none()
            && req.hedge_ev.is_none()
            && req.attempts.iter().all(|a| a.done)
        {
            w.reqs.remove(&id);
        }
    }
}

/// Runs a fleet, panicking on an invalid config — the ergonomic entry
/// point for examples and tests.
pub fn run_fleet(cfg: FleetConfig) -> FleetResult {
    try_run_fleet(cfg).expect("invalid FleetConfig")
}

/// Fallible [`run_fleet`]: invalid configs and conservation
/// violations come back as typed [`SimError`]s.
pub fn try_run_fleet(cfg: FleetConfig) -> Result<FleetResult, SimError> {
    try_run_fleet_budgeted(cfg, &StepBudget::unlimited())
}

/// Like [`try_run_fleet`] with a runaway guard: the outer simulator
/// and each server's inner simulator are all held to `budget`
/// individually.
pub fn try_run_fleet_budgeted(
    cfg: FleetConfig,
    budget: &StepBudget,
) -> Result<FleetResult, SimError> {
    cfg.validate()?;
    let end = cfg.end();
    let n = cfg.servers;
    let app_model = AppModel::for_kind(cfg.app);
    let init_load = cfg.initial_load();
    let per_rps = (cfg.total_rps / n as f64).max(1.0);
    let window = cfg.quantile_window();

    let mut servers = Vec::with_capacity(n);
    for i in 0..n {
        let seed = RngStream::derive(cfg.seed, "server", i as u64).next_u64();
        let tb_cfg = TestbedConfig::new(app_model, init_load)
            .with_seed(seed)
            .with_profile(cfg.profile.clone())
            .with_timeline(TimelineConfig::OFF)
            .with_admission(cfg.admission);
        let (governor, sleep) = build_policies(&cfg.governor, cfg.sleep, &cfg.profile, &app_model);
        let mut inner: Simulator<Testbed> = Simulator::new();
        let tb = Testbed::try_new(tb_cfg, governor, sleep, &mut inner)?;
        servers.push(ServerInstance {
            sim: inner,
            tb,
            latatable: Vec::new(),
            resp_cursor: 0,
            inflight: Vec::new(),
            dispatched_epoch: 0,
            dispatched_total: 0,
            delivered: 0,
            won: 0,
            crashes: 0,
            q: StreamingQuantiles::new(window),
            current_rps: per_rps,
            sat_permille: 0,
        });
    }

    let faults = FaultInjector::from_plan(&cfg.fault_plan, cfg.seed);
    let hedge_floor = cfg.hedge.map_or(SimDuration::from_millis(1), |h| h.floor);
    let mut world = FleetWorld {
        ring: HashRing::new(n),
        trackers: vec![HealthTracker::new(cfg.probe.fail_threshold, cfg.probe.ok_threshold); n],
        lb_view: vec![true; n],
        affinity: vec![None; cfg.flows],
        affinity_gen: vec![0u64; cfg.flows],
        reqs: HashMap::new(),
        faults,
        ledger: ConservationLedger::new(),
        rng_arrival: RngStream::derive(cfg.seed, "fleet-arrival", 0),
        rng_steer: RngStream::derive(cfg.seed, "fleet-steer", 0),
        rng_latency: RngStream::derive(cfg.seed, "fleet-latency", 0),
        rng_churn: RngStream::derive(cfg.seed, "fleet-churn", 0),
        rng_priority: RngStream::derive(cfg.seed, "fleet-priority", 0),
        counters: FleetCounters::default(),
        budgets: cfg
            .retry_budget
            .map_or_else(Vec::new, |p| vec![RetryBudget::new(p); cfg.flows]),
        breakers: cfg
            .breaker
            .map_or_else(Vec::new, |p| vec![CircuitBreaker::new(p); n]),
        brownout: cfg.brownout.map(Brownout::new),
        steer_view: Vec::with_capacity(n),
        hedge_delay: hedge_floor,
        end,
        budget: *budget,
        budget_err: None,
        next_req: 0,
        servers,
        cfg,
    };

    let mut sim: FleetSim = Simulator::new();
    // First arrival.
    {
        let mean_ns = 1e9 / world.offered_rate(SimTime::ZERO);
        let gap = world.rng_arrival.exponential(mean_ns).clamp(1.0, 1e15);
        sim.schedule_at(SimTime::ZERO + SimDuration::from_nanos(gap as u64), arrival);
    }
    // Staggered health probes.
    for server in 0..n {
        let offset = SimDuration::from_nanos(
            ((server as u64 + 1) * world.cfg.probe.interval.as_nanos()) / (n as u64 + 1),
        );
        sim.schedule_at(SimTime::ZERO + offset, move |w, sim| probe(w, sim, server));
    }
    // Epoch coupling, measurement boundary, churn waves.
    sim.schedule_at(SimTime::ZERO + world.cfg.epoch, epoch_tick);
    sim.schedule_at(SimTime::ZERO + world.cfg.warmup, warmup_boundary);
    if let Some(churn) = world.cfg.churn {
        sim.schedule_at(SimTime::ZERO + churn.period, churn_wave);
    }
    // Server-crash boundaries from the fault plan (scope.core = server
    // index; an unpinned scope crashes the whole fleet).
    for spec in world.cfg.fault_plan.specs.clone() {
        if spec.kind != FaultKind::ServerCrash {
            continue;
        }
        let targets: Vec<usize> = match spec.scope.core {
            Some(c) => vec![c],
            None => (0..n).collect(),
        };
        for server in targets {
            sim.schedule_at(spec.scope.start, move |w, sim| crash_server(w, sim, server));
            if spec.scope.end < end {
                sim.schedule_at(
                    spec.scope.end,
                    move |w: &mut FleetWorld, sim: &mut FleetSim| {
                        let now = sim.now();
                        w.faults.note_server_recover(now, server);
                    },
                );
            }
        }
    }

    sim.run_until_budgeted(&mut world, end, budget)?;
    if let Some(e) = world.budget_err.take() {
        return Err(e);
    }
    extract(world, end)
}

fn extract(mut world: FleetWorld, end: SimTime) -> Result<FleetResult, SimError> {
    // Final inner advance to the common end time.
    for s in &mut world.servers {
        s.sim.run_until_budgeted(&mut s.tb, end, &world.budget)?;
    }
    let c = world.counters;

    // The conservation roll-up: integer-exact, counter-based (so it
    // holds with or without the `audit` feature), cross-checked
    // against the ledger when the feature is on.
    let mut audit = AuditReport::new();
    audit.check_exact(
        "fleet: admitted == completed + timed_out + shed + in_flight",
        c.admitted,
        c.completed + c.timed_out + c.shed_requests + c.open_requests,
    );
    audit.check_exact(
        "fleet: shed attempts within failed attempts",
        c.attempts_shed + c.attempts_failed.saturating_sub(c.attempts_shed),
        c.attempts_failed,
    );
    audit.check_exact(
        "fleet: dispatched == completed + failed + suppressed + outstanding",
        c.dispatched,
        c.attempts_completed + c.attempts_failed + c.suppressed + c.attempts_outstanding,
    );
    let won_sum: u64 = world.servers.iter().map(|s| s.won).sum();
    audit.check_exact("fleet: server wins == completions", won_sum, c.completed);
    let delivered_sum: u64 = world.servers.iter().map(|s| s.delivered).sum();
    audit.check_exact(
        "fleet: deliveries == dispatched - failed",
        delivered_sum,
        c.dispatched.saturating_sub(c.attempts_failed),
    );
    let steered_sum: u64 = world.servers.iter().map(|s| s.dispatched_total).sum();
    audit.check_exact(
        "fleet: per-server steers == dispatched",
        steered_sum,
        c.dispatched,
    );
    if ConservationLedger::ENABLED {
        let pairs = [
            (
                Account::FleetRequestsAdmitted,
                c.admitted,
                "ledger: admitted",
            ),
            (
                Account::FleetRequestsCompleted,
                c.completed,
                "ledger: completed",
            ),
            (
                Account::FleetRequestsTimedOut,
                c.timed_out,
                "ledger: timed out",
            ),
            (
                Account::FleetAttemptsDispatched,
                c.dispatched,
                "ledger: dispatched",
            ),
            (
                Account::FleetAttemptsCompleted,
                c.attempts_completed,
                "ledger: attempts completed",
            ),
            (
                Account::FleetAttemptsFailed,
                c.attempts_failed,
                "ledger: attempts failed",
            ),
            (
                Account::FleetHedgesSuppressed,
                c.suppressed,
                "ledger: suppressed",
            ),
            (
                Account::FleetRequestsShed,
                c.shed_requests,
                "ledger: requests shed",
            ),
            (
                Account::FleetAttemptsShed,
                c.attempts_shed,
                "ledger: attempts shed",
            ),
        ];
        for (account, counter, name) in pairs {
            audit.check_exact(name, world.ledger.balance(account), counter);
        }
    }
    // Per-server single-box audits must also balance.
    for (i, s) in world.servers.iter_mut().enumerate() {
        if let Some(report) = s.tb.audit_report(end) {
            if !report.is_balanced() {
                return Err(SimError::Accounting {
                    context: "fleet.server_audit",
                    reason: format!(
                        "server {i} conservation audit failed ({} violation(s))",
                        report.violations().len()
                    ),
                });
            }
        }
    }
    if !audit.is_balanced() {
        let names: Vec<String> = audit.violations().iter().map(|v| v.name.clone()).collect();
        return Err(SimError::Accounting {
            context: "fleet.audit",
            reason: format!("fleet conservation roll-up failed: {}", names.join("; ")),
        });
    }

    // Fleet latency: merged per-server streaming sketches.
    for s in &mut world.servers {
        s.q.advance_to(end);
    }
    let mut merged: Option<StreamingQuantiles> = None;
    for s in &world.servers {
        match &mut merged {
            None => merged = Some(s.q.clone()),
            Some(m) => m.merge(&s.q),
        }
    }
    let (p99, p50) = merged.map_or((SimDuration::ZERO, SimDuration::ZERO), |m| {
        (
            SimDuration::from_nanos(m.p99_ns()),
            SimDuration::from_nanos(m.p50_ns()),
        )
    });

    // Fleet metrics (no-op snapshot without `obs`).
    let crashes_sum: u64 = world.servers.iter().map(|s| s.crashes).sum();
    let mut reg = MetricsRegistry::new();
    reg.set_counter("fleet.requests.admitted", c.admitted);
    reg.set_counter("fleet.requests.completed", c.completed);
    reg.set_counter("fleet.requests.timed_out", c.timed_out);
    reg.set_counter("fleet.requests.in_flight", c.open_requests);
    reg.set_counter("fleet.attempts.dispatched", c.dispatched);
    reg.set_counter("fleet.attempts.completed", c.attempts_completed);
    reg.set_counter("fleet.attempts.failed", c.attempts_failed);
    reg.set_counter("fleet.attempts.suppressed", c.suppressed);
    reg.set_counter("fleet.attempts.in_flight", c.attempts_outstanding);
    reg.set_counter("fleet.retries", c.retries);
    reg.set_counter("fleet.hedges", c.hedges);
    reg.set_counter("fleet.failovers", c.failovers);
    reg.set_counter("fleet.health.ejections", c.ejections);
    reg.set_counter("fleet.health.readmissions", c.readmissions);
    reg.set_counter("fleet.churned_flows", c.churned_flows);
    reg.set_counter("fleet.server_crashes", crashes_sum);
    let mut breaker_opens = 0u64;
    let mut breaker_closes = 0u64;
    let mut breaker_half_opens = 0u64;
    for b in &world.breakers {
        let s = b.stats();
        breaker_opens += s.opens;
        breaker_closes += s.closes;
        breaker_half_opens += s.half_opens;
    }
    reg.set_counter("fleet.shed.requests", c.shed_requests);
    reg.set_counter("fleet.shed.attempts", c.attempts_shed);
    reg.set_counter("fleet.breaker.opens", breaker_opens);
    reg.set_counter("fleet.breaker.closes", breaker_closes);
    reg.set_counter("fleet.breaker.half_opens", breaker_half_opens);
    reg.set_counter("fleet.breaker.short_circuits", c.breaker_short_circuits);
    reg.set_counter("retry_budget.spent", c.retry_budget_spent);
    reg.set_counter("retry_budget.denied", c.retry_budget_denied);
    let metrics = reg.snapshot();

    let ejected: Vec<bool> = world.trackers.iter().map(|t| t.is_ejected()).collect();
    let mut energy_total = 0.0;
    let mut server_reports = Vec::with_capacity(world.servers.len());
    for (i, s) in world.servers.iter_mut().enumerate() {
        let energy_j = s.tb.measured_energy(end);
        energy_total += energy_j;
        server_reports.push(ServerReport {
            dispatched: s.dispatched_total,
            delivered: s.delivered,
            won: s.won,
            crashes: s.crashes,
            ejected_at_end: ejected[i],
            p99_internal: s.tb.client.latencies_mut().p99(),
            energy_j,
            degradation: s.tb.governor.degradation(),
        });
    }

    let closed = c.completed + c.timed_out;
    let availability = if closed > 0 {
        c.completed as f64 / closed as f64
    } else {
        1.0
    };

    Ok(FleetResult {
        governor: world.cfg.governor.label().to_string(),
        sleep: world.cfg.sleep.label().to_string(),
        servers: server_reports,
        admitted: c.admitted,
        completed: c.completed,
        timed_out: c.timed_out,
        in_flight_at_end: c.open_requests,
        dispatched: c.dispatched,
        attempts_completed: c.attempts_completed,
        attempts_failed: c.attempts_failed,
        suppressed: c.suppressed,
        attempts_in_flight_at_end: c.attempts_outstanding,
        retries: c.retries,
        hedges: c.hedges,
        failovers: c.failovers,
        ejections: c.ejections,
        readmissions: c.readmissions,
        churned_flows: c.churned_flows,
        shed: c.shed_requests,
        attempts_shed: c.attempts_shed,
        retry_budget_spent: c.retry_budget_spent,
        retry_budget_denied: c.retry_budget_denied,
        breaker_opens,
        breaker_closes,
        breaker_half_opens,
        breaker_short_circuits: c.breaker_short_circuits,
        p99,
        p50,
        availability,
        energy_j: energy_total,
        duration: world.cfg.duration,
        metrics,
        faults: world.faults.stats(),
        audit,
    })
}

/// Runs many fleet configs across worker threads (testbeds are not
/// `Send`, so each fleet is built and run entirely inside its worker),
/// preserving input order in the output.
pub fn run_fleet_many(configs: Vec<FleetConfig>) -> Vec<FleetResult> {
    if configs.len() <= 1 {
        return configs.into_iter().map(run_fleet).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(configs.len());
    let jobs: Mutex<VecDeque<(usize, FleetConfig)>> =
        Mutex::new(configs.into_iter().enumerate().collect());
    let n = lock(&jobs).len();
    let results: Mutex<Vec<Option<FleetResult>>> = Mutex::new(vec![None; n]);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = lock(&jobs).pop_front();
                let Some((idx, cfg)) = job else { break };
                let result = run_fleet(cfg);
                lock(&results)[idx] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("worker skipped a job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::FaultScope;

    fn quick(servers: usize, governor: GovernorKind) -> FleetConfig {
        FleetConfig::new(servers, AppKind::Memcached, 6_000.0, governor)
            .with_window(SimDuration::from_millis(40), SimDuration::from_millis(120))
    }

    #[test]
    fn smoke_conserves_and_completes() {
        let r = run_fleet(quick(2, GovernorKind::Ondemand));
        assert!(r.admitted > 100, "admitted {}", r.admitted);
        assert_eq!(r.admitted, r.completed + r.timed_out + r.in_flight_at_end);
        assert_eq!(
            r.dispatched,
            r.attempts_completed + r.attempts_failed + r.suppressed + r.attempts_in_flight_at_end
        );
        assert!(r.audit.is_balanced());
        assert!(r.availability > 0.9, "availability {}", r.availability);
        assert!(r.p99 > SimDuration::ZERO);
        assert!(r.energy_j > 0.0);
        assert_eq!(r.servers.len(), 2);
        let won: u64 = r.servers.iter().map(|s| s.won).sum();
        assert_eq!(won, r.completed);
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let a = run_fleet(quick(3, GovernorKind::Performance));
        let b = run_fleet(quick(3, GovernorKind::Performance));
        assert_eq!(a, b);
    }

    #[test]
    fn crash_schedule_conserves_exactly() {
        let plan = FaultPlan::new().inject(
            FaultKind::ServerCrash,
            FaultScope::window(SimTime::from_millis(60), SimTime::from_millis(100)).on_core(0),
        );
        let r = run_fleet(quick(3, GovernorKind::Ondemand).with_fault_plan(plan));
        assert_eq!(r.admitted, r.completed + r.timed_out + r.in_flight_at_end);
        assert_eq!(
            r.dispatched,
            r.attempts_completed + r.attempts_failed + r.suppressed + r.attempts_in_flight_at_end
        );
        if FaultInjector::ENABLED {
            assert_eq!(r.servers[0].crashes, 1);
            assert!(r.attempts_failed > 0, "crash lost no attempts");
            assert!(r.faults.server_crashes >= 1);
        }
    }

    #[test]
    fn aggressive_hedging_produces_hedges_and_suppressions() {
        let cfg = quick(2, GovernorKind::Performance).with_hedge(Some(HedgePolicy {
            quantile: 0.5,
            floor: SimDuration::from_nanos(1),
        }));
        let r = run_fleet(cfg);
        assert!(r.hedges > 0, "hedge floor of 1 ns never hedged");
        assert!(r.suppressed > 0, "winners never suppressed a duplicate");
        assert_eq!(
            r.dispatched,
            r.attempts_completed + r.attempts_failed + r.suppressed + r.attempts_in_flight_at_end
        );
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(quick(0, GovernorKind::Ondemand).validate().is_err());
        let mut bad = quick(2, GovernorKind::Ondemand);
        bad.total_rps = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = quick(2, GovernorKind::Ondemand);
        bad.epoch = SimDuration::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = quick(2, GovernorKind::Ondemand);
        bad.hedge = Some(HedgePolicy {
            quantile: 1.5,
            floor: SimDuration::from_millis(1),
        });
        assert!(bad.validate().is_err());
        let mut bad = quick(2, GovernorKind::Ondemand);
        bad.retry.max_attempts = 0;
        assert!(bad.validate().is_err());
        assert!(quick(2, GovernorKind::Ncap(f64::NAN)).validate().is_err());
    }

    #[test]
    fn budget_guard_aborts() {
        let err = try_run_fleet_budgeted(
            quick(2, GovernorKind::Ondemand),
            &StepBudget::unlimited().with_max_events(50),
        )
        .expect_err("a 50-event budget cannot finish a fleet run");
        assert!(err.is_budget(), "unexpected error: {err}");
    }

    #[test]
    fn run_fleet_many_matches_serial() {
        let cfgs = vec![
            quick(2, GovernorKind::Ondemand),
            quick(2, GovernorKind::Performance),
        ];
        let parallel = run_fleet_many(cfgs.clone());
        let serial: Vec<FleetResult> = cfgs.into_iter().map(run_fleet).collect();
        assert_eq!(parallel, serial);
    }
}
