//! Crash-safe sweep checkpointing: completed cells stream to an
//! append-only `checkpoint.jsonl`, keyed by a content hash of their
//! [`RunConfig`], so a re-invoked sweep skips finished cells and
//! reproduces a byte-identical merged artifact.
//!
//! # File format
//!
//! One JSON object per line (JSONL):
//!
//! * `{"kind":"header","version":1}` — first line of a fresh file;
//! * `{"kind":"cell","key":"<16-hex>","result":{...}}` — one
//!   completed cell, floats as IEEE-754 bit patterns for exact
//!   round-trips;
//! * `{"kind":"quarantine","key":"<16-hex>","governor":...,
//!   "error":...,"attempts":N}` — a cell the supervisor gave up on.
//!
//! Loading tolerates torn tails and corrupt lines: anything that
//! fails to parse or decode is skipped (and counted), because a
//! crash mid-append must not invalidate the finished prefix. Cells
//! that collect traces are never checkpointed — traces are too large
//! to persist and re-run deterministically anyway.

use crate::json::{self, Value};
use crate::runner::{RunConfig, RunResult};
use simcore::{
    AttribSummary, FaultStats, RecoverySummary, SimDuration, Stage, StageSummary, WatchdogReport,
};
use simcore::{
    CoreEnergySummary, DecisionTrigger, EnergyBreakdown, EnergyComponent, EnergySummary,
    FlightSummary, GovDecision, ModeEnergy, SimTime,
};
use simcore::{HistogramSnapshot, MetricsSnapshot};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Current checkpoint format version. Version 2 added the energy
/// attribution and flight-recorder summaries to each cell; version 3
/// added the telemetry timeline (per-core gauge samples); version 4
/// widened the timeline stride with the saturation gauge and added
/// admission-bypass fault stats. Older files simply re-run their
/// cells.
pub const CHECKPOINT_VERSION: u64 = 4;

/// Stable content key for a sweep cell: FNV-1a 64 over the config's
/// `Debug` rendering. Any field change — seed, load, governor,
/// thresholds, fault plan — changes the key, so a stale checkpoint
/// can never satisfy an edited sweep.
pub fn cell_key(cfg: &RunConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// Whether the file at `path` is empty or ends with a newline — i.e.
/// whether appending a fresh record is safe without a separator.
fn ends_with_newline(path: &Path) -> std::io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(true),
        Err(e) => return Err(e),
    };
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] == b'\n')
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A cell the supervisor retried to exhaustion and gave up on.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// The cell's content key.
    pub key: u64,
    /// The governor label, for the artifact's quarantine section.
    pub governor: String,
    /// Display of the final error.
    pub error: String,
    /// Attempts spent before quarantining.
    pub attempts: u32,
}

/// Decode failure inside an otherwise parseable line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint decode error: {}", self.0)
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn enc_metrics(m: &MetricsSnapshot) -> Value {
    Value::obj(vec![
        (
            "counters",
            Value::Arr(
                m.counters
                    .iter()
                    .map(|(k, v)| Value::Arr(vec![Value::Str(k.clone()), Value::UInt(*v)]))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Value::Arr(
                m.gauges
                    .iter()
                    .map(|(k, v)| Value::Arr(vec![Value::Str(k.clone()), Value::bits(*v)]))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Value::Arr(
                m.histograms
                    .iter()
                    .map(|(k, h)| Value::Arr(vec![Value::Str(k.clone()), enc_histogram(h)]))
                    .collect(),
            ),
        ),
    ])
}

fn enc_histogram(h: &HistogramSnapshot) -> Value {
    Value::obj(vec![
        ("count", Value::UInt(h.count)),
        ("sum", Value::UInt(h.sum)),
        ("max", Value::UInt(h.max)),
        (
            "buckets",
            Value::Arr(
                h.buckets
                    .iter()
                    .map(|&(w, c)| Value::Arr(vec![Value::UInt(u64::from(w)), Value::UInt(c)]))
                    .collect(),
            ),
        ),
    ])
}

fn enc_attrib(a: &AttribSummary) -> Value {
    Value::obj(vec![
        ("requests", Value::UInt(a.requests)),
        ("pending", Value::UInt(a.pending)),
        ("mismatches", Value::UInt(a.mismatches)),
        ("attributed_total_ns", Value::UInt(a.attributed_total_ns)),
        ("e2e_total_ns", Value::UInt(a.e2e_total_ns)),
        (
            "stages",
            Value::Arr(
                a.stages
                    .iter()
                    .map(|s| {
                        Value::obj(vec![
                            ("stage", Value::UInt(stage_index(s.stage))),
                            ("sum_ns", Value::UInt(s.sum_ns)),
                            ("p50_ns", Value::UInt(s.p50_ns)),
                            ("p99_ns", Value::UInt(s.p99_ns)),
                            ("max_ns", Value::UInt(s.max_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn stage_index(stage: Stage) -> u64 {
    Stage::ALL.iter().position(|&s| s == stage).unwrap_or(0) as u64
}

fn enc_watchdog(w: &WatchdogReport) -> Value {
    Value::obj(vec![
        ("samples", Value::UInt(w.samples)),
        ("episodes", Value::UInt(u64::from(w.episodes))),
        ("open_episode", Value::Bool(w.open_episode)),
        ("first_detect_ns", Value::UInt(w.first_detect_ns)),
        ("total_violation_ns", Value::UInt(w.total_violation_ns)),
        ("mean_detect_ns", Value::UInt(w.mean_detect_ns)),
        ("mean_recover_ns", Value::UInt(w.mean_recover_ns)),
    ])
}

fn enc_faults(s: &FaultStats) -> Value {
    Value::obj(vec![
        (
            "wire_requests_dropped",
            Value::UInt(s.wire_requests_dropped),
        ),
        (
            "wire_responses_dropped",
            Value::UInt(s.wire_responses_dropped),
        ),
        ("irqs_lost", Value::UInt(s.irqs_lost)),
        ("spurious_irqs", Value::UInt(s.spurious_irqs)),
        ("irq_unmasks_blocked", Value::UInt(s.irq_unmasks_blocked)),
        ("wakes_delayed", Value::UInt(s.wakes_delayed)),
        ("signals_suppressed", Value::UInt(s.signals_suppressed)),
        ("signals_replayed", Value::UInt(s.signals_replayed)),
        ("polls_clamped", Value::UInt(s.polls_clamped)),
        ("dvfs_delays", Value::UInt(s.dvfs_delays)),
        ("pstate_clamps", Value::UInt(s.pstate_clamps)),
        ("exec_stalls", Value::UInt(s.exec_stalls)),
        ("load_switches", Value::UInt(s.load_switches)),
        ("incast_requests", Value::UInt(s.incast_requests)),
        ("flow_churns", Value::UInt(s.flow_churns)),
        ("server_crashes", Value::UInt(s.server_crashes)),
        ("server_recoveries", Value::UInt(s.server_recoveries)),
        ("link_delays", Value::UInt(s.link_delays)),
        ("partition_drops", Value::UInt(s.partition_drops)),
        ("skewed_steers", Value::UInt(s.skewed_steers)),
        ("stale_probes", Value::UInt(s.stale_probes)),
        ("admission_bypasses", Value::UInt(s.admission_bypasses)),
    ])
}

fn enc_breakdown(b: &EnergyBreakdown) -> Value {
    Value::Arr(b.iter().map(|(_, uj)| Value::UInt(uj)).collect())
}

fn enc_energy(e: &EnergySummary) -> Value {
    Value::obj(vec![
        (
            "cores",
            Value::Arr(
                e.cores
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("core", Value::UInt(u64::from(c.core))),
                            ("measured_uj", Value::UInt(c.measured_uj)),
                            ("breakdown", enc_breakdown(&c.breakdown)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("uncore_uj", Value::UInt(e.uncore_uj)),
        ("interrupt_uj", Value::UInt(e.modes.interrupt_uj)),
        ("polling_uj", Value::UInt(e.modes.polling_uj)),
        ("transition_uj", Value::UInt(e.modes.transition_uj)),
        ("rapl_clamps", Value::UInt(e.rapl_clamps)),
    ])
}

fn enc_flight(f: &FlightSummary) -> Value {
    Value::obj(vec![
        ("total", Value::UInt(f.total)),
        ("evicted", Value::UInt(f.evicted)),
        ("raises", Value::UInt(f.raises)),
        ("lowers", Value::UInt(f.lowers)),
        (
            "by_trigger",
            Value::Arr(f.by_trigger.iter().map(|&n| Value::UInt(n)).collect()),
        ),
        (
            "decisions",
            Value::Arr(
                f.decisions
                    .iter()
                    .map(|d| {
                        Value::obj(vec![
                            ("at_ns", Value::UInt(d.at.as_nanos())),
                            ("core", Value::UInt(u64::from(d.core))),
                            ("trigger", Value::UInt(d.trigger as u64)),
                            ("util_permille", Value::UInt(u64::from(d.util_permille))),
                            ("polling", Value::Bool(d.polling)),
                            ("queue_depth", Value::UInt(u64::from(d.queue_depth))),
                            ("from_pstate", Value::UInt(u64::from(d.from_pstate))),
                            ("to_pstate", Value::UInt(u64::from(d.to_pstate))),
                            ("chip_wide", Value::Bool(d.chip_wide)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn enc_timeline(t: &simcore::Timeline) -> Value {
    // Gauge values are i64; they travel as their two's-complement
    // bit pattern in a u64 (the same lossless trick floats use), so
    // a resumed sweep's timeline CSV stays byte-identical.
    Value::obj(vec![
        ("cores", Value::UInt(u64::from(t.cores))),
        ("base_interval_ns", Value::UInt(t.base_interval_ns)),
        ("interval_ns", Value::UInt(t.interval_ns)),
        ("decimations", Value::UInt(t.decimations)),
        ("dropped", Value::UInt(t.dropped)),
        (
            "times_ns",
            Value::Arr(t.times_ns.iter().map(|&n| Value::UInt(n)).collect()),
        ),
        (
            "values",
            Value::Arr(t.values.iter().map(|&v| Value::UInt(v as u64)).collect()),
        ),
    ])
}

fn enc_recovery(r: &RecoverySummary) -> Value {
    Value::obj(vec![
        ("attributed", Value::UInt(r.attributed)),
        ("recovered", Value::UInt(r.recovered)),
        ("unrecovered", Value::UInt(r.unrecovered)),
        ("unattributed", Value::UInt(r.unattributed)),
        ("mean_recovery_ns", Value::UInt(r.mean_recovery_ns)),
        ("max_recovery_ns", Value::UInt(r.max_recovery_ns)),
    ])
}

/// Encodes a trace-free [`RunResult`] for a checkpoint line.
pub fn encode_result(r: &RunResult) -> Value {
    let d = &r.degradation;
    Value::obj(vec![
        ("governor", Value::Str(r.governor.clone())),
        ("sleep", Value::Str(r.sleep.clone())),
        ("sent", Value::UInt(r.sent)),
        ("received", Value::UInt(r.received)),
        ("p99_ns", Value::UInt(r.p99.as_nanos())),
        ("p50_ns", Value::UInt(r.p50.as_nanos())),
        ("frac_above_slo", Value::bits(r.frac_above_slo)),
        ("slo_ns", Value::UInt(r.slo.as_nanos())),
        ("energy_j", Value::bits(r.energy_j)),
        ("duration_ns", Value::UInt(r.duration.as_nanos())),
        ("avg_power_w", Value::bits(r.avg_power_w)),
        ("rx_dropped", Value::UInt(r.rx_dropped)),
        ("dvfs_transitions", Value::UInt(r.dvfs_transitions)),
        ("c6_entries", Value::UInt(r.c6_entries)),
        ("metrics", enc_metrics(&r.metrics)),
        ("attrib", enc_attrib(&r.attrib)),
        ("energy", enc_energy(&r.energy)),
        ("gov_flight", enc_flight(&r.gov_flight)),
        ("watchdog", enc_watchdog(&r.watchdog)),
        ("faults", enc_faults(&r.faults)),
        (
            "degradation",
            Value::obj(vec![
                ("degradations", Value::UInt(d.degradations)),
                ("recoveries", Value::UInt(d.recoveries)),
                ("degraded_cores", Value::UInt(d.degraded_cores)),
            ]),
        ),
        ("fault_recovery", enc_recovery(&r.fault_recovery)),
        ("timeline", enc_timeline(&r.timeline)),
    ])
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn need<'v>(v: &'v Value, key: &'static str) -> Result<&'v Value, DecodeError> {
    v.get(key).ok_or(DecodeError(key))
}

fn need_u64(v: &Value, key: &'static str) -> Result<u64, DecodeError> {
    need(v, key)?.as_u64().ok_or(DecodeError(key))
}

fn need_f64(v: &Value, key: &'static str) -> Result<f64, DecodeError> {
    need(v, key)?.as_bits_f64().ok_or(DecodeError(key))
}

fn need_str(v: &Value, key: &'static str) -> Result<String, DecodeError> {
    Ok(need(v, key)?.as_str().ok_or(DecodeError(key))?.to_string())
}

fn need_dur(v: &Value, key: &'static str) -> Result<SimDuration, DecodeError> {
    Ok(SimDuration::from_nanos(need_u64(v, key)?))
}

fn dec_pairs<T>(
    v: &Value,
    key: &'static str,
    dec: impl Fn(&Value) -> Result<T, DecodeError>,
) -> Result<Vec<(String, T)>, DecodeError> {
    need(v, key)?
        .as_arr()
        .ok_or(DecodeError(key))?
        .iter()
        .map(|pair| {
            let items = pair.as_arr().ok_or(DecodeError(key))?;
            match items {
                [k, payload] => Ok((
                    k.as_str().ok_or(DecodeError(key))?.to_string(),
                    dec(payload)?,
                )),
                _ => Err(DecodeError(key)),
            }
        })
        .collect()
}

fn dec_histogram(v: &Value) -> Result<HistogramSnapshot, DecodeError> {
    let buckets = need(v, "buckets")?
        .as_arr()
        .ok_or(DecodeError("buckets"))?
        .iter()
        .map(|pair| {
            let items = pair.as_arr().ok_or(DecodeError("buckets"))?;
            match items {
                [w, c] => {
                    let w = w.as_u64().ok_or(DecodeError("buckets"))?;
                    let w = u32::try_from(w).map_err(|_| DecodeError("buckets"))?;
                    Ok((w, c.as_u64().ok_or(DecodeError("buckets"))?))
                }
                _ => Err(DecodeError("buckets")),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(HistogramSnapshot {
        count: need_u64(v, "count")?,
        sum: need_u64(v, "sum")?,
        max: need_u64(v, "max")?,
        buckets,
    })
}

fn dec_metrics(v: &Value) -> Result<MetricsSnapshot, DecodeError> {
    Ok(MetricsSnapshot {
        counters: dec_pairs(v, "counters", |p| p.as_u64().ok_or(DecodeError("counters")))?,
        gauges: dec_pairs(v, "gauges", |p| {
            p.as_bits_f64().ok_or(DecodeError("gauges"))
        })?,
        histograms: dec_pairs(v, "histograms", dec_histogram)?,
    })
}

fn dec_attrib(v: &Value) -> Result<AttribSummary, DecodeError> {
    let stages = need(v, "stages")?
        .as_arr()
        .ok_or(DecodeError("stages"))?
        .iter()
        .map(|s| {
            let idx = need_u64(s, "stage")? as usize;
            let stage = *Stage::ALL.get(idx).ok_or(DecodeError("stage"))?;
            Ok(StageSummary {
                stage,
                sum_ns: need_u64(s, "sum_ns")?,
                p50_ns: need_u64(s, "p50_ns")?,
                p99_ns: need_u64(s, "p99_ns")?,
                max_ns: need_u64(s, "max_ns")?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(AttribSummary {
        requests: need_u64(v, "requests")?,
        pending: need_u64(v, "pending")?,
        mismatches: need_u64(v, "mismatches")?,
        attributed_total_ns: need_u64(v, "attributed_total_ns")?,
        e2e_total_ns: need_u64(v, "e2e_total_ns")?,
        stages,
    })
}

fn dec_watchdog(v: &Value) -> Result<WatchdogReport, DecodeError> {
    Ok(WatchdogReport {
        samples: need_u64(v, "samples")?,
        episodes: u32::try_from(need_u64(v, "episodes")?).map_err(|_| DecodeError("episodes"))?,
        open_episode: need(v, "open_episode")?
            .as_bool()
            .ok_or(DecodeError("open_episode"))?,
        first_detect_ns: need_u64(v, "first_detect_ns")?,
        total_violation_ns: need_u64(v, "total_violation_ns")?,
        mean_detect_ns: need_u64(v, "mean_detect_ns")?,
        mean_recover_ns: need_u64(v, "mean_recover_ns")?,
    })
}

fn dec_faults(v: &Value) -> Result<FaultStats, DecodeError> {
    Ok(FaultStats {
        wire_requests_dropped: need_u64(v, "wire_requests_dropped")?,
        wire_responses_dropped: need_u64(v, "wire_responses_dropped")?,
        irqs_lost: need_u64(v, "irqs_lost")?,
        spurious_irqs: need_u64(v, "spurious_irqs")?,
        irq_unmasks_blocked: need_u64(v, "irq_unmasks_blocked")?,
        wakes_delayed: need_u64(v, "wakes_delayed")?,
        signals_suppressed: need_u64(v, "signals_suppressed")?,
        signals_replayed: need_u64(v, "signals_replayed")?,
        polls_clamped: need_u64(v, "polls_clamped")?,
        dvfs_delays: need_u64(v, "dvfs_delays")?,
        pstate_clamps: need_u64(v, "pstate_clamps")?,
        exec_stalls: need_u64(v, "exec_stalls")?,
        load_switches: need_u64(v, "load_switches")?,
        incast_requests: need_u64(v, "incast_requests")?,
        flow_churns: need_u64(v, "flow_churns")?,
        server_crashes: need_u64(v, "server_crashes")?,
        server_recoveries: need_u64(v, "server_recoveries")?,
        link_delays: need_u64(v, "link_delays")?,
        partition_drops: need_u64(v, "partition_drops")?,
        skewed_steers: need_u64(v, "skewed_steers")?,
        stale_probes: need_u64(v, "stale_probes")?,
        admission_bypasses: need_u64(v, "admission_bypasses")?,
    })
}

fn need_u32(v: &Value, key: &'static str) -> Result<u32, DecodeError> {
    u32::try_from(need_u64(v, key)?).map_err(|_| DecodeError(key))
}

fn need_bool(v: &Value, key: &'static str) -> Result<bool, DecodeError> {
    need(v, key)?.as_bool().ok_or(DecodeError(key))
}

fn dec_breakdown(v: &Value) -> Result<EnergyBreakdown, DecodeError> {
    let slots = v.as_arr().ok_or(DecodeError("breakdown"))?;
    if slots.len() != EnergyComponent::ALL.len() {
        return Err(DecodeError("breakdown"));
    }
    let mut out = EnergyBreakdown::default();
    for (component, slot) in EnergyComponent::ALL.iter().zip(slots) {
        out.add_uj(*component, slot.as_u64().ok_or(DecodeError("breakdown"))?);
    }
    Ok(out)
}

fn dec_energy(v: &Value) -> Result<EnergySummary, DecodeError> {
    let cores = need(v, "cores")?
        .as_arr()
        .ok_or(DecodeError("cores"))?
        .iter()
        .map(|c| {
            Ok(CoreEnergySummary {
                core: need_u32(c, "core")?,
                measured_uj: need_u64(c, "measured_uj")?,
                breakdown: dec_breakdown(need(c, "breakdown")?)?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(EnergySummary {
        cores,
        uncore_uj: need_u64(v, "uncore_uj")?,
        modes: ModeEnergy {
            interrupt_uj: need_u64(v, "interrupt_uj")?,
            polling_uj: need_u64(v, "polling_uj")?,
            transition_uj: need_u64(v, "transition_uj")?,
        },
        rapl_clamps: need_u64(v, "rapl_clamps")?,
    })
}

fn dec_timeline(v: &Value) -> Result<simcore::Timeline, DecodeError> {
    let times_ns = need(v, "times_ns")?
        .as_arr()
        .ok_or(DecodeError("times_ns"))?
        .iter()
        .map(|n| n.as_u64().ok_or(DecodeError("times_ns")))
        .collect::<Result<Vec<_>, _>>()?;
    let values = need(v, "values")?
        .as_arr()
        .ok_or(DecodeError("values"))?
        .iter()
        .map(|n| n.as_u64().map(|u| u as i64).ok_or(DecodeError("values")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(simcore::Timeline {
        cores: need_u32(v, "cores")?,
        base_interval_ns: need_u64(v, "base_interval_ns")?,
        interval_ns: need_u64(v, "interval_ns")?,
        decimations: need_u64(v, "decimations")?,
        dropped: need_u64(v, "dropped")?,
        times_ns,
        values,
    })
}

fn dec_flight(v: &Value) -> Result<FlightSummary, DecodeError> {
    let by_trigger = need(v, "by_trigger")?
        .as_arr()
        .ok_or(DecodeError("by_trigger"))?
        .iter()
        .map(|n| n.as_u64().ok_or(DecodeError("by_trigger")))
        .collect::<Result<Vec<_>, _>>()?;
    let decisions = need(v, "decisions")?
        .as_arr()
        .ok_or(DecodeError("decisions"))?
        .iter()
        .map(|d| {
            let idx = need_u64(d, "trigger")? as usize;
            let trigger = *DecisionTrigger::ALL
                .get(idx)
                .ok_or(DecodeError("trigger"))?;
            Ok(GovDecision {
                at: SimTime::from_nanos(need_u64(d, "at_ns")?),
                core: need_u32(d, "core")?,
                trigger,
                util_permille: need_u32(d, "util_permille")?,
                polling: need_bool(d, "polling")?,
                queue_depth: need_u32(d, "queue_depth")?,
                from_pstate: need_u32(d, "from_pstate")?,
                to_pstate: need_u32(d, "to_pstate")?,
                chip_wide: need_bool(d, "chip_wide")?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(FlightSummary {
        total: need_u64(v, "total")?,
        evicted: need_u64(v, "evicted")?,
        raises: need_u64(v, "raises")?,
        lowers: need_u64(v, "lowers")?,
        by_trigger,
        decisions,
    })
}

/// Decodes a checkpointed [`RunResult`] (always trace-free).
pub fn decode_result(v: &Value) -> Result<RunResult, DecodeError> {
    let deg = need(v, "degradation")?;
    let rec = need(v, "fault_recovery")?;
    Ok(RunResult {
        governor: need_str(v, "governor")?,
        sleep: need_str(v, "sleep")?,
        sent: need_u64(v, "sent")?,
        received: need_u64(v, "received")?,
        p99: need_dur(v, "p99_ns")?,
        p50: need_dur(v, "p50_ns")?,
        frac_above_slo: need_f64(v, "frac_above_slo")?,
        slo: need_dur(v, "slo_ns")?,
        energy_j: need_f64(v, "energy_j")?,
        duration: need_dur(v, "duration_ns")?,
        avg_power_w: need_f64(v, "avg_power_w")?,
        rx_dropped: need_u64(v, "rx_dropped")?,
        dvfs_transitions: need_u64(v, "dvfs_transitions")?,
        c6_entries: need_u64(v, "c6_entries")?,
        metrics: dec_metrics(need(v, "metrics")?)?,
        attrib: dec_attrib(need(v, "attrib")?)?,
        energy: dec_energy(need(v, "energy")?)?,
        gov_flight: dec_flight(need(v, "gov_flight")?)?,
        watchdog: dec_watchdog(need(v, "watchdog")?)?,
        faults: dec_faults(need(v, "faults")?)?,
        degradation: governors::DegradationStats {
            degradations: need_u64(deg, "degradations")?,
            recoveries: need_u64(deg, "recoveries")?,
            degraded_cores: need_u64(deg, "degraded_cores")?,
        },
        fault_recovery: RecoverySummary {
            attributed: need_u64(rec, "attributed")?,
            recovered: need_u64(rec, "recovered")?,
            unrecovered: need_u64(rec, "unrecovered")?,
            unattributed: need_u64(rec, "unattributed")?,
            mean_recovery_ns: need_u64(rec, "mean_recovery_ns")?,
            max_recovery_ns: need_u64(rec, "max_recovery_ns")?,
        },
        timeline: dec_timeline(need(v, "timeline")?)?,
        traces: None,
    })
}

// ---------------------------------------------------------------------
// The checkpoint file
// ---------------------------------------------------------------------

/// An append-only sweep checkpoint.
///
/// Open with [`Checkpoint::open`]; every line is flushed as it is
/// appended, so the finished prefix survives a crash or SIGKILL at
/// any point.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    file: File,
    cells: HashMap<u64, RunResult>,
    quarantined: HashMap<u64, QuarantineRecord>,
    skipped_lines: usize,
}

impl Checkpoint {
    /// Opens (or creates) the checkpoint at `path`, loading every
    /// decodable line already present. Corrupt or torn lines are
    /// skipped and counted in [`skipped_lines`](Self::skipped_lines).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Checkpoint> {
        let path = path.as_ref().to_path_buf();
        let mut cells = HashMap::new();
        let mut quarantined = HashMap::new();
        let mut skipped = 0usize;
        let mut has_header = false;
        if let Ok(existing) = File::open(&path) {
            for line in BufReader::new(existing).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match Self::load_line(&line) {
                    Ok(Line::Header) => has_header = true,
                    Ok(Line::Cell(key, result)) => {
                        cells.insert(key, *result);
                    }
                    Ok(Line::Quarantine(record)) => {
                        quarantined.insert(record.key, record);
                    }
                    Err(_) => skipped += 1,
                }
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        // A kill mid-append can leave a torn final line with no
        // newline. Appending straight after it would splice the next
        // record onto the torn bytes and corrupt it too — start on a
        // fresh line so only the torn line is lost.
        if !ends_with_newline(&path)? {
            writeln!(file)?;
        }
        if !has_header {
            let header = Value::obj(vec![
                ("kind", Value::Str("header".into())),
                ("version", Value::UInt(CHECKPOINT_VERSION)),
            ]);
            writeln!(file, "{}", header.to_json())?;
            file.flush()?;
        }
        Ok(Checkpoint {
            path,
            file,
            cells,
            quarantined,
            skipped_lines: skipped,
        })
    }

    fn load_line(line: &str) -> Result<Line, DecodeError> {
        let v = json::parse(line).map_err(|_| DecodeError("parse"))?;
        match need_str(&v, "kind")?.as_str() {
            "header" => {
                if need_u64(&v, "version")? == CHECKPOINT_VERSION {
                    Ok(Line::Header)
                } else {
                    Err(DecodeError("version"))
                }
            }
            "cell" => {
                let key = parse_key(&need_str(&v, "key")?)?;
                let result = decode_result(need(&v, "result")?)?;
                Ok(Line::Cell(key, Box::new(result)))
            }
            "quarantine" => Ok(Line::Quarantine(QuarantineRecord {
                key: parse_key(&need_str(&v, "key")?)?,
                governor: need_str(&v, "governor")?,
                error: need_str(&v, "error")?,
                attempts: u32::try_from(need_u64(&v, "attempts")?)
                    .map_err(|_| DecodeError("attempts"))?,
            })),
            _ => Err(DecodeError("kind")),
        }
    }

    /// The checkpoint's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines skipped while loading (torn tail, corruption).
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Completed cells loaded or appended so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no completed cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The stored result for `cfg`, if this exact config finished in
    /// an earlier invocation. Trace-collecting cells never hit.
    pub fn lookup(&self, cfg: &RunConfig) -> Option<&RunResult> {
        if cfg.collect_traces {
            return None;
        }
        self.cells.get(&cell_key(cfg))
    }

    /// The quarantine record for `cfg`, if it was given up on.
    pub fn lookup_quarantine(&self, cfg: &RunConfig) -> Option<&QuarantineRecord> {
        self.quarantined.get(&cell_key(cfg))
    }

    /// All quarantine records, key-ascending.
    pub fn quarantined(&self) -> Vec<&QuarantineRecord> {
        let mut records: Vec<_> = self.quarantined.values().collect();
        records.sort_by_key(|r| r.key);
        records
    }

    /// Streams one completed cell to disk (append + flush). Cells
    /// with traces are skipped silently — they re-run on resume.
    pub fn record(&mut self, cfg: &RunConfig, result: &RunResult) -> std::io::Result<()> {
        if cfg.collect_traces {
            return Ok(());
        }
        let key = cell_key(cfg);
        let line = Value::obj(vec![
            ("kind", Value::Str("cell".into())),
            ("key", Value::Str(format!("{key:016x}"))),
            ("result", encode_result(result)),
        ]);
        writeln!(self.file, "{}", line.to_json())?;
        self.file.flush()?;
        self.cells.insert(key, result.clone());
        Ok(())
    }

    /// Streams one quarantine decision to disk (append + flush).
    pub fn record_quarantine(
        &mut self,
        cfg: &RunConfig,
        error: &str,
        attempts: u32,
    ) -> std::io::Result<()> {
        let record = QuarantineRecord {
            key: cell_key(cfg),
            governor: cfg.governor.label().to_string(),
            error: error.to_string(),
            attempts,
        };
        let line = Value::obj(vec![
            ("kind", Value::Str("quarantine".into())),
            ("key", Value::Str(format!("{:016x}", record.key))),
            ("governor", Value::Str(record.governor.clone())),
            ("error", Value::Str(record.error.clone())),
            ("attempts", Value::UInt(u64::from(record.attempts))),
        ]);
        writeln!(self.file, "{}", line.to_json())?;
        self.file.flush()?;
        self.quarantined.insert(record.key, record);
        Ok(())
    }
}

enum Line {
    Header,
    Cell(u64, Box<RunResult>),
    Quarantine(QuarantineRecord),
}

fn parse_key(hex: &str) -> Result<u64, DecodeError> {
    u64::from_str_radix(hex, 16).map_err(|_| DecodeError("key"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{self, GovernorKind, RunConfig, Scale};
    use simcore::SimDuration;
    use workload::{AppKind, LoadSpec};

    fn tiny(seed: u64) -> RunConfig {
        RunConfig {
            warmup: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(150),
            ..RunConfig::new(
                AppKind::Memcached,
                LoadSpec::custom(20_000.0, SimDuration::from_millis(100), 0.4, 0.3),
                GovernorKind::Ondemand,
                Scale::Quick,
            )
        }
        .with_seed(seed)
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nmap-ckpt-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn run_result_round_trips_exactly() {
        let result = runner::run(tiny(7));
        let decoded = decode_result(&encode_result(&result)).expect("decodes");
        assert_eq!(decoded, result, "codec must be lossless");
    }

    #[test]
    fn checkpoint_persists_and_reloads_cells() {
        let path = tmp("reload");
        let _ = std::fs::remove_file(&path);
        let cfg = tiny(11);
        let result = runner::run(cfg.clone());
        {
            let mut ck = Checkpoint::open(&path).expect("open");
            assert!(ck.lookup(&cfg).is_none());
            ck.record(&cfg, &result).expect("record");
        }
        let ck = Checkpoint::open(&path).expect("reopen");
        assert_eq!(ck.skipped_lines(), 0);
        assert_eq!(ck.lookup(&cfg), Some(&result));
        // A different seed is a different key.
        assert!(ck.lookup(&tiny(12)).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let cfg = tiny(13);
        let result = runner::run(cfg.clone());
        {
            let mut ck = Checkpoint::open(&path).expect("open");
            ck.record(&cfg, &result).expect("record");
        }
        // Simulate a crash mid-append: a second cell line cut short.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"kind\":\"cell\",\"key\":\"00000000000000ff\",\"result\":{\"gov");
        std::fs::write(&path, text).expect("write");
        let ck = Checkpoint::open(&path).expect("reopen");
        assert_eq!(ck.skipped_lines(), 1, "torn line skipped");
        assert_eq!(ck.lookup(&cfg), Some(&result), "intact prefix kept");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appending_after_a_torn_tail_does_not_corrupt_the_new_record() {
        let path = tmp("torn-append");
        let _ = std::fs::remove_file(&path);
        let (first, second) = (tiny(13), tiny(14));
        let first_result = runner::run(first.clone());
        {
            let mut ck = Checkpoint::open(&path).expect("open");
            ck.record(&first, &first_result).expect("record");
        }
        // A kill mid-append leaves torn bytes with no trailing newline.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"kind\":\"cell\",\"key\":\"00");
        std::fs::write(&path, text).expect("write");
        // The resumed process appends another cell; it must land on a
        // fresh line, not splice onto the torn bytes.
        let second_result = runner::run(second.clone());
        {
            let mut ck = Checkpoint::open(&path).expect("reopen");
            ck.record(&second, &second_result).expect("record");
        }
        let ck = Checkpoint::open(&path).expect("reopen again");
        assert_eq!(ck.skipped_lines(), 1, "only the torn line is lost");
        assert_eq!(ck.lookup(&first), Some(&first_result));
        assert_eq!(ck.lookup(&second), Some(&second_result));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantine_records_round_trip() {
        let path = tmp("quar");
        let _ = std::fs::remove_file(&path);
        let cfg = tiny(17);
        {
            let mut ck = Checkpoint::open(&path).expect("open");
            ck.record_quarantine(&cfg, "wall-clock budget exceeded", 3)
                .expect("record");
        }
        let ck = Checkpoint::open(&path).expect("reopen");
        let record = ck.lookup_quarantine(&cfg).expect("present");
        assert_eq!(record.attempts, 3);
        assert_eq!(record.governor, "ondemand");
        assert!(record.error.contains("wall-clock"));
        assert_eq!(ck.quarantined().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_cells_are_never_checkpointed() {
        let path = tmp("traces");
        let _ = std::fs::remove_file(&path);
        let cfg = tiny(19).with_traces();
        let result = runner::run(cfg.clone());
        let mut ck = Checkpoint::open(&path).expect("open");
        ck.record(&cfg, &result).expect("record is a no-op");
        assert!(ck.lookup(&cfg).is_none(), "trace cells always re-run");
        assert!(ck.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cell_key_tracks_every_field() {
        let a = cell_key(&tiny(1));
        assert_eq!(a, cell_key(&tiny(1)), "deterministic");
        assert_ne!(a, cell_key(&tiny(2)), "seed changes the key");
        assert_ne!(
            a,
            cell_key(&tiny(1).with_nic_queues(2)),
            "queue override changes the key"
        );
    }
}
